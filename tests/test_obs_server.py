"""Tests for repro.obs.server: the /metrics|/healthz|/snapshot endpoint."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.prometheus import parse_exposition
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, MetricsServer
from repro.runtime.telemetry import Telemetry


@pytest.fixture
def telemetry():
    tel = Telemetry()
    tel.incr("engine.lookups", 12)
    tel.observe("engine.match", 0.003)
    return tel


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestEndpoints:
    def test_metrics_over_http(self, telemetry):
        with MetricsServer(telemetry.snapshot) as server:
            status, headers, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        metrics = parse_exposition(body.decode("utf-8"))
        assert metrics["saxpac_engine_lookups_total"][""] == 12.0
        assert "saxpac_engine_match_latency_seconds_count" in metrics

    def test_metrics_sees_fresh_snapshot_per_scrape(self, telemetry):
        with MetricsServer(telemetry.snapshot) as server:
            _get(f"{server.url}/metrics")
            telemetry.incr("engine.lookups", 8)
            _, _, body = _get(f"{server.url}/metrics")
        metrics = parse_exposition(body.decode("utf-8"))
        assert metrics["saxpac_engine_lookups_total"][""] == 20.0

    def test_healthz_ok(self, telemetry):
        with MetricsServer(
            telemetry.snapshot,
            health_source=lambda: (True, {"status": "ok", "rules": 3}),
        ) as server:
            status, _, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok", "rules": 3}

    def test_healthz_degraded_is_503(self, telemetry):
        with MetricsServer(
            telemetry.snapshot,
            health_source=lambda: (False, {"status": "degraded"}),
        ) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read()) == {"status": "degraded"}

    def test_healthz_default_ok_without_source(self, telemetry):
        with MetricsServer(telemetry.snapshot) as server:
            status, _, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_snapshot_json(self, telemetry):
        with MetricsServer(
            telemetry.snapshot,
            gauges_source=lambda: {"runtime.generation": 2.0},
        ) as server:
            status, headers, body = _get(f"{server.url}/snapshot")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["telemetry"]["counters"]["engine.lookups"] == 12
        assert payload["gauges"]["runtime.generation"] == 2.0

    def test_gauges_appear_in_metrics(self, telemetry):
        with MetricsServer(
            telemetry.snapshot,
            gauges_source=lambda: {"runtime.degraded": 0.0},
        ) as server:
            _, _, body = _get(f"{server.url}/metrics")
        assert "saxpac_runtime_degraded 0" in body.decode("utf-8")

    def test_unknown_path_is_404(self, telemetry):
        with MetricsServer(telemetry.snapshot) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/nope")
            assert excinfo.value.code == 404
            assert "endpoints" in json.loads(excinfo.value.read())

    def test_query_strings_ignored(self, telemetry):
        with MetricsServer(telemetry.snapshot) as server:
            status, _, _ = _get(f"{server.url}/metrics?format=prom")
        assert status == 200


class TestLifecycle:
    def test_ephemeral_port_bound(self, telemetry):
        with MetricsServer(telemetry.snapshot, port=0) as server:
            assert server.port > 0
            assert server.url.startswith("http://127.0.0.1:")

    def test_close_idempotent(self, telemetry):
        server = MetricsServer(telemetry.snapshot)
        server.close()
        server.close()

    def test_closed_server_refuses_connections(self, telemetry):
        server = MetricsServer(telemetry.snapshot)
        url = server.url
        server.close()
        with pytest.raises(urllib.error.URLError):
            _get(f"{url}/metrics")


class TestServiceIntegration:
    def test_runtime_service_serve_metrics(self):
        import random

        from conftest import random_classifier
        from repro.runtime.service import RuntimeService
        from repro.workloads.traces import generate_trace

        rng = random.Random(9)
        classifier = random_classifier(rng, num_rules=30)
        trace = generate_trace(classifier, 200, seed=2)
        with RuntimeService(classifier) as service:
            server = service.serve_metrics()
            assert service.serve_metrics() is server  # idempotent
            service.match_batch(trace)
            _, _, body = _get(f"{server.url}/metrics")
            metrics = parse_exposition(body.decode("utf-8"))
            assert metrics["saxpac_runtime_packets_total"][""] == 200.0
            assert metrics["saxpac_runtime_generation"][""] >= 0.0
            status, _, health = _get(f"{server.url}/healthz")
            assert status == 200
            assert json.loads(health)["status"] == "ok"
        # close() stopped the server.
        assert service.metrics_server is None


class TestFlightRecorderEndpoint:
    def test_404_without_recorder(self, telemetry):
        with MetricsServer(telemetry.snapshot) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/flightrecorder")
            assert excinfo.value.code == 404
            assert "flight recorder" in json.loads(excinfo.value.read()).get(
                "error", ""
            )

    def test_dump_served_when_attached(self, telemetry):
        from repro.obs.flightrec import FlightRecorder

        recorder = FlightRecorder()
        recorder.note(
            7,
            0xFACE,
            "shed",
            total_s=2e-3,
            stages=lambda: {"queue_wait": 1.5e-3},
        )
        with MetricsServer(
            telemetry.snapshot, flight_source=recorder.dump
        ) as server:
            status, headers, body = _get(f"{server.url}/flightrecorder")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        dump = json.loads(body)
        assert dump["retained"] == {"shed": 1}
        assert dump["anomalous"][0]["request_id"] == 7
        assert dump["anomalous"][0]["stages_s"] == {"queue_wait": 1.5e-3}

    def test_wire_server_anomalies_reach_the_endpoint(self):
        """End to end: a request shed by the wire server must surface in
        the /flightrecorder dump that the service's metrics endpoint
        serves — the CI soak artifact depends on this path."""
        import random

        from conftest import random_classifier
        from repro.net import NetClient, NetConfig, serve_background
        from repro.runtime.service import RuntimeService
        from repro.workloads.traces import generate_trace

        classifier = random_classifier(random.Random(5), num_rules=30)
        service = RuntimeService(classifier)
        handle = serve_background(service, NetConfig(coalesce_wait_ms=0.0))
        try:
            metrics = service.serve_metrics()
            headers = generate_trace(classifier, 20, seed=3)
            with NetClient(port=handle.port) as client:
                client.match_batch(headers)
            # The normal ring samples the first request deterministically
            # (tick 1 of 1-in-128), so one served request is retained.
            status, _, body = _get(f"{metrics.url}/flightrecorder")
            assert status == 200
            dump = json.loads(body)
            assert dump["seen"] >= 1
            assert dump["retained"].get("ok", 0) >= 1
            entry = dump["normal"][0]
            assert entry["stages_s"]  # waterfall rode along
        finally:
            handle.stop()
