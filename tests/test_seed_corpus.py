"""Seed-corpus regression tests: frozen classifiers, frozen traces,
exact digests.

``tests/data/`` holds three small classifiers (acl/fw/ipc styles, JSON
via :mod:`repro.saxpac.serialization`) plus a frozen 500-packet trace
each, and the SHA-256 digest of the winning rule indices the linear
reference produced when the corpus was frozen.  Any engine or reference
change that alters a single answer — or a serialization change that
alters how the corpus loads — moves a digest and fails loudly here,
independent of the hypothesis-driven suites whose inputs move between
runs.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.runtime.batch import linear_match_batch
from repro.saxpac.engine import SaxPacEngine
from repro.saxpac.serialization import load_classifier

DATA = os.path.join(os.path.dirname(__file__), "data")
STYLES = ("acl", "fw", "ipc")


def _digest(indices) -> str:
    return hashlib.sha256(
        ",".join(str(i) for i in indices).encode()
    ).hexdigest()


@pytest.fixture(scope="module")
def digests():
    with open(os.path.join(DATA, "seed_digests.json")) as handle:
        return json.load(handle)


@pytest.fixture(scope="module", params=STYLES)
def corpus(request):
    style = request.param
    classifier, _ = load_classifier(
        os.path.join(DATA, f"seed_{style}.json")
    )
    with open(os.path.join(DATA, f"seed_{style}_trace.json")) as handle:
        trace = [tuple(h) for h in json.load(handle)]
    return style, classifier, trace


class TestSeedCorpus:
    def test_corpus_shape_is_frozen(self, corpus, digests):
        style, classifier, trace = corpus
        assert len(classifier.body) == digests[style]["rules"]
        assert len(trace) == digests[style]["packets"]

    def test_linear_reference_digest(self, corpus, digests):
        style, classifier, trace = corpus
        indices = [classifier.match(h).index for h in trace]
        assert _digest(indices) == digests[style]["digest"]

    def test_vectorized_linear_digest(self, corpus, digests):
        style, classifier, trace = corpus
        indices = [
            r.index for r in linear_match_batch(classifier, trace)
        ]
        assert _digest(indices) == digests[style]["digest"]

    def test_engine_match_digest(self, corpus, digests):
        style, classifier, trace = corpus
        engine = SaxPacEngine(classifier)
        indices = [engine.match(h).index for h in trace]
        assert _digest(indices) == digests[style]["digest"]

    def test_engine_batch_digest(self, corpus, digests):
        style, classifier, trace = corpus
        engine = SaxPacEngine(classifier)
        indices = [r.index for r in engine.match_batch(trace)]
        assert _digest(indices) == digests[style]["digest"]

    def test_rebuilt_engine_digest(self, corpus, digests):
        style, classifier, trace = corpus
        engine = SaxPacEngine(classifier).rebuild(classifier)
        indices = [r.index for r in engine.match_batch(trace)]
        assert _digest(indices) == digests[style]["digest"]
