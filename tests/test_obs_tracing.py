"""Tests for repro.obs.tracing: spans, nesting, propagation, export."""

import json
import threading

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    chrome_trace,
)


class TestBasicSpans:
    def test_span_records_timing_and_identity(self):
        tracer = Tracer()
        with tracer.span("work", packets=7) as span:
            pass
        spans = tracer.spans()
        assert len(spans) == 1
        got = spans[0]
        assert got.name == "work"
        assert got.tags == {"packets": 7}
        assert got.duration >= 0.0
        assert got.start > 0.0
        assert got.parent_id is None
        assert got.trace_id and got.span_id

    def test_nesting_same_thread(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        # Spans land in the store innermost-first (on exit).
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_siblings_share_parent_not_each_other(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_top_level_spans_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.trace_id != second.trace_id

    def test_current_context_inside_and_outside(self):
        tracer = Tracer()
        assert tracer.current_context() is None
        with tracer.span("s") as span:
            ctx = tracer.current_context()
            assert ctx == span.context
        assert tracer.current_context() is None


class TestExplicitParent:
    def test_parent_as_span_context(self):
        tracer = Tracer()
        parent = SpanContext(trace_id=11, span_id=22)
        with tracer.span("child", parent=parent) as child:
            pass
        assert child.trace_id == 11
        assert child.parent_id == 22

    def test_parent_as_span(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            pass
        with tracer.span("child", parent=parent) as child:
            pass
        assert child.parent_id == parent.span_id

    def test_cross_thread_parenting(self):
        tracer = Tracer()
        seen = {}

        def worker(ctx):
            with tracer.span("worker", parent=ctx) as span:
                seen["span"] = span

        with tracer.span("batch") as batch:
            ctx = tracer.current_context()
            thread = threading.Thread(target=worker, args=(ctx,))
            thread.start()
            thread.join()
        assert seen["span"].parent_id == batch.span_id
        assert seen["span"].trace_id == batch.trace_id

    def test_context_is_picklable_and_tiny(self):
        import pickle

        ctx = SpanContext(trace_id=5, span_id=9)
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestStore:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_drain_empties_store(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [s.name for s in drained] == ["a"]
        assert len(tracer) == 0

    def test_ingest_merges_foreign_spans(self):
        worker, parent = Tracer(), Tracer()
        with worker.span("remote"):
            pass
        parent.ingest(worker.drain())
        assert [s.name for s in parent.spans()] == ["remote"]

    def test_ingest_respects_capacity(self):
        parent = Tracer(capacity=2)
        worker = Tracer()
        for i in range(4):
            with worker.span(f"w{i}"):
                pass
        parent.ingest(worker.drain())
        assert len(parent) == 2
        assert parent.dropped == 2

    def test_distinct_tracers_produce_distinct_ids(self):
        # Worker tracers merge into one store; ids must not collide.
        ids = set()
        for _ in range(5):
            tracer = Tracer()
            with tracer.span("s") as span:
                pass
            ids.add(span.span_id)
        assert len(ids) == 5


class TestChromeExport:
    def test_chrome_trace_document(self):
        tracer = Tracer()
        with tracer.span("outer", batch=4):
            with tracer.span("inner"):
                pass
        doc = chrome_trace(tracer.spans())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 2
        by_name = {e["name"]: e for e in events}
        outer, inner = by_name["outer"], by_name["inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["batch"] == 4
        assert outer["cat"] == "outer"

    def test_export_chrome_writes_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = str(tmp_path / "trace.json")
        text = tracer.export_chrome(path)
        with open(path) as handle:
            doc = json.load(handle)
        assert doc == json.loads(text)
        assert doc["traceEvents"][0]["name"] == "s"

    def test_span_as_dict_round_trips_json(self):
        span = Span(
            trace_id=1, span_id=2, parent_id=None, name="n",
            start=1.5, duration=0.25, pid=10, tid=20, tags={"k": "v"},
        )
        data = json.loads(json.dumps(span.as_dict()))
        assert data["name"] == "n"
        assert data["duration_s"] == 0.25
        assert data["tags"] == {"k": "v"}


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", parent=None, x=1):
            pass
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.current_context() is None
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.drain() == []
        assert len(NULL_TRACER) == 0

    def test_null_tracer_shares_one_context_manager(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")
