"""Tests for the TCAM simulator and its classifier facade."""

import random

import pytest

from repro.core import Classifier, make_rule, uniform_schema
from repro.tcam.encoding import BinaryRangeEncoder, SrgeRangeEncoder
from repro.tcam.entry import entry_from_pattern
from repro.tcam.tcam import Tcam, build_tcam
from conftest import random_classifier


class TestTcamBasics:
    def test_first_match_priority(self):
        tcam = Tcam(width=4)
        r = make_rule([(0, 15)])
        tcam.program(entry_from_pattern("1***"), 0, r)
        tcam.program(entry_from_pattern("10**"), 1, r)
        record = tcam.lookup(0b1000)
        assert record.rule_index == 0  # earlier row wins

    def test_miss_returns_none(self):
        tcam = Tcam(width=4)
        r = make_rule([(0, 15)])
        tcam.program(entry_from_pattern("11**"), 0, r)
        assert tcam.lookup(0b0000) is None

    def test_width_mismatch_rejected(self):
        tcam = Tcam(width=4)
        with pytest.raises(ValueError):
            tcam.program(entry_from_pattern("1"), 0, make_rule([(0, 1)]))

    def test_capacity_enforced(self):
        tcam = Tcam(width=4, capacity=1)
        r = make_rule([(0, 15)])
        tcam.program(entry_from_pattern("1***"), 0, r)
        assert tcam.is_full()
        with pytest.raises(MemoryError):
            tcam.program(entry_from_pattern("0***"), 1, r)

    def test_remove_rule_frees_rows(self):
        tcam = Tcam(width=4)
        r = make_rule([(0, 15)])
        tcam.program(entry_from_pattern("1***"), 0, r)
        tcam.program(entry_from_pattern("01**"), 0, r)
        tcam.program(entry_from_pattern("00**"), 1, r)
        assert tcam.remove_rule(0) == 2
        assert len(tcam) == 1

    def test_lookup_counter(self):
        tcam = Tcam(width=4)
        tcam.lookup(0)
        tcam.lookup(1)
        assert tcam.lookups == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Tcam(width=0)


class TestBuildTcam:
    @pytest.mark.parametrize("encoder_cls", [BinaryRangeEncoder, SrgeRangeEncoder])
    @pytest.mark.parametrize("seed", range(4))
    def test_semantic_equivalence_with_linear_scan(self, encoder_cls, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=15, num_fields=3, width=5)
        tcam, view = build_tcam(k, encoder=encoder_cls())
        for header in k.sample_headers(150, rng):
            expected = k.match(header)
            got = view.match_index(header)
            if expected.rule is k.catch_all:
                assert got is None
            else:
                assert got == expected.index

    def test_rule_subset_only_programs_those(self):
        rng = random.Random(9)
        k = random_classifier(rng, num_rules=10)
        tcam, view = build_tcam(k, rule_indices=[2, 5])
        programmed = {r.rule_index for r in tcam.rows}
        assert programmed <= {2, 5}

    def test_field_subset_lookup(self, example2_classifier):
        # Theorem 2: a TCAM holding only field 0 still selects the right
        # candidate (false positives to be checked by the caller).
        tcam, view = build_tcam(example2_classifier, fields=[0])
        assert tcam.width == 5
        # Packet (2, 5, 5) -> field 0 value 2 -> candidate R1 (index 0).
        assert view.match_index((2, 5, 5)) == 0

    def test_include_catch_all(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(2, 3)])])
        _tcam, view = build_tcam(k, include_catch_all=True)
        assert view.match_index((9,)) == 1  # catch-all row

    def test_capacity_propagates(self):
        rng = random.Random(10)
        k = random_classifier(rng, num_rules=20)
        with pytest.raises(MemoryError):
            build_tcam(k, capacity=1)

    @pytest.mark.parametrize("seed", range(3))
    def test_srge_view_encodes_keys(self, seed):
        # With the SRGE encoder the raw TCAM sees Gray-coded keys; the
        # facade must still answer in plain header space.
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=12, num_fields=2, width=6)
        _tcam, view = build_tcam(k, encoder=SrgeRangeEncoder())
        for header in k.sample_headers(100, rng):
            expected = k.match(header)
            got = view.match_index(header)
            if expected.rule is k.catch_all:
                assert got is None
            else:
                assert got == expected.index
