"""Tests for repro.runtime.swap: rebuilds, atomic swaps, degradation."""

import random

import pytest

from conftest import random_classifier
from repro.core import make_rule
from repro.runtime.swap import HotSwapRuntime, LinearFallback, UpdateRecord
from repro.runtime.telemetry import Telemetry
from repro.saxpac.engine import SaxPacEngine
from repro.saxpac.updates import DynamicSaxPac
from repro.workloads.traces import generate_trace


@pytest.fixture
def setup():
    rng = random.Random(99)
    classifier = random_classifier(rng, num_rules=30)
    trace = generate_trace(classifier, 200, seed=3)
    return classifier, trace


def _reference(runtime, trace):
    """Linear-scan ground truth against the runtime's current snapshot."""
    snapshot = runtime.snapshot_classifier()
    return [snapshot.match(h).index for h in trace]


class TestConstruction:
    def test_from_classifier(self, setup):
        classifier, trace = setup
        runtime = HotSwapRuntime(classifier)
        assert len(runtime) == len(classifier.body)
        assert not runtime.degraded
        assert runtime.generation == 1  # the initial build counts

    def test_from_dynamic_state(self, setup):
        classifier, trace = setup
        dyn = DynamicSaxPac(classifier.schema)
        for rule in classifier.body:
            dyn.insert(rule)
        runtime = HotSwapRuntime(dyn)
        got = [r.index for r in runtime.match_batch(trace)]
        assert got == _reference(runtime, trace)

    def test_rejects_other_sources(self):
        with pytest.raises(TypeError):
            HotSwapRuntime(["not", "a", "classifier"])


class TestServing:
    def test_matches_linear_reference(self, setup):
        classifier, trace = setup
        runtime = HotSwapRuntime(classifier)
        got = [r.index for r in runtime.match_batch(trace)]
        assert got == _reference(runtime, trace)
        # Single-packet path agrees with the batch path.
        singles = [runtime.match(h).index for h in trace[:50]]
        assert singles == got[:50]

    def test_classify_batch_returns_actions(self, setup):
        classifier, trace = setup
        runtime = HotSwapRuntime(classifier)
        actions = runtime.classify_batch(trace[:20])
        snapshot = runtime.snapshot_classifier()
        assert actions == [
            snapshot.match(h).rule.action for h in trace[:20]
        ]


class TestUpdates:
    def test_insert_serves_after_swap(self, setup):
        classifier, trace = setup
        runtime = HotSwapRuntime(classifier)
        before_gen = runtime.generation
        width = classifier.schema[0].width
        top = (1 << width) - 1
        report = runtime.insert(
            make_rule([(0, top)] * classifier.num_fields, name="new")
        )
        assert report.accepted
        assert runtime.generation > before_gen
        assert len(runtime) == len(classifier.body) + 1
        got = [r.index for r in runtime.match_batch(trace)]
        assert got == _reference(runtime, trace)

    def test_remove_and_modify(self, setup):
        classifier, trace = setup
        runtime = HotSwapRuntime(classifier)
        victim = runtime.update_log  # empty so far
        assert victim == []
        # Remove the first dynamic rule (ids assigned in insert order).
        runtime.remove(0)
        assert len(runtime) == len(classifier.body) - 1
        replacement = classifier.body[5]
        runtime.modify(1, replacement)
        got = [r.index for r in runtime.match_batch(trace)]
        assert got == _reference(runtime, trace)
        kinds = [record.kind for record in runtime.update_log]
        assert kinds == ["remove", "modify"]
        assert all(isinstance(r, UpdateRecord) for r in runtime.update_log)

    def test_update_log_records_inserts(self, setup):
        classifier, trace = setup
        runtime = HotSwapRuntime(classifier)
        rule = make_rule([(0, 1)] * classifier.num_fields)
        runtime.insert(rule)
        assert runtime.update_log[-1].kind == "insert"
        assert runtime.update_log[-1].rule is rule


class TestDegradation:
    def test_failed_rebuild_swaps_in_fallback(self, setup):
        classifier, trace = setup

        def broken_builder(snapshot):
            raise RuntimeError("no memory for you")

        tel = Telemetry()
        runtime = HotSwapRuntime(
            classifier, builder=broken_builder, recorder=tel
        )
        assert runtime.degraded
        assert isinstance(runtime.engine, LinearFallback)
        assert tel.counter("swap.rebuild_failures") == 1
        assert tel.counter("swap.fallback_swaps") == 1
        # Correctness survives degradation.
        got = [r.index for r in runtime.match_batch(trace)]
        assert got == _reference(runtime, trace)
        singles = [runtime.match(h).index for h in trace[:30]]
        assert singles == got[:30]

    def test_recovers_on_next_good_rebuild(self, setup):
        classifier, trace = setup
        fail_first = {"remaining": 1}

        def flaky_builder(snapshot):
            if fail_first["remaining"]:
                fail_first["remaining"] -= 1
                raise RuntimeError("transient")
            return SaxPacEngine(snapshot)

        runtime = HotSwapRuntime(classifier, builder=flaky_builder)
        assert runtime.degraded
        runtime.rebuild(wait=True)
        assert not runtime.degraded
        got = [r.index for r in runtime.match_batch(trace)]
        assert got == _reference(runtime, trace)


class TestBackgroundRebuild:
    def test_flush_drains_pending_swap(self, setup):
        classifier, trace = setup
        runtime = HotSwapRuntime(classifier, background=True)
        gen = runtime.generation
        rule = make_rule([(0, 2)] * classifier.num_fields)
        runtime.insert(rule)
        runtime.flush()
        assert runtime.generation > gen
        got = [r.index for r in runtime.match_batch(trace)]
        assert got == _reference(runtime, trace)

    def test_coalesces_many_updates(self, setup):
        classifier, trace = setup
        runtime = HotSwapRuntime(classifier, background=True)
        for i in range(10):
            runtime.insert(make_rule([(i, i + 1)] * classifier.num_fields))
        runtime.flush()
        # Coalescing means at most one swap per update, usually far fewer,
        # but the final state must reflect every insert.
        assert len(runtime) == len(classifier.body) + 10
        got = [r.index for r in runtime.match_batch(trace)]
        assert got == _reference(runtime, trace)
