"""Tests for the MRCC classification cache (Section 4.3)."""

import random

import pytest

from repro.saxpac.cache import ClassificationCache
from conftest import random_classifier


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_cache_matches_linear_scan(self, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=30)
        cache = ClassificationCache(k)
        for header in k.sample_headers(200, rng):
            assert cache.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(4))
    def test_capacity_limited_cache_still_correct(self, seed):
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=30)
        cache = ClassificationCache(k, capacity=10)
        assert cache.cached_rules <= 10
        for header in k.sample_headers(200, rng):
            assert cache.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(4))
    def test_group_budget_respected(self, seed):
        rng = random.Random(200 + seed)
        k = random_classifier(rng, num_rules=30)
        cache = ClassificationCache(k, max_groups=2)
        assert len(cache.grouping.groups) <= 2
        for header in k.sample_headers(150, rng):
            assert cache.match(header).index == k.match(header).index


class TestCapacityEnforcement:
    """Regression tests for the capacity bound (see _trim_to_capacity):
    the bound must hold exactly, reject nonsense, and not waste budget by
    spilling whole groups when a prefix would fit."""

    def test_negative_capacity_rejected(self):
        k = random_classifier(random.Random(1), num_rules=10)
        with pytest.raises(ValueError):
            ClassificationCache(k, capacity=-1)

    def test_zero_capacity_caches_nothing(self):
        rng = random.Random(2)
        k = random_classifier(rng, num_rules=20)
        cache = ClassificationCache(k, capacity=0)
        assert cache.cached_rules == 0
        for header in k.sample_headers(100, rng):
            assert cache.match(header).index == k.match(header).index
        assert cache.stats.hits == 0  # everything fell through

    @pytest.mark.parametrize("capacity", [1, 3, 7, 15])
    def test_bound_holds_across_seeds(self, capacity):
        for seed in range(10):
            rng = random.Random(300 + seed)
            k = random_classifier(rng, num_rules=30)
            cache = ClassificationCache(k, capacity=capacity)
            assert cache.cached_rules <= capacity
            for header in k.sample_headers(60, rng):
                assert cache.match(header).index == k.match(header).index

    def test_partial_group_fills_budget(self, example2_classifier):
        """A capacity smaller than the only group must truncate the group
        rather than spill it whole (a subset of an order-independent group
        is still order-independent)."""
        full = ClassificationCache(example2_classifier)
        assert full.cached_rules == 3
        trimmed = ClassificationCache(example2_classifier, capacity=2)
        assert trimmed.cached_rules == 2  # not 0
        rng = random.Random(4)
        for header in example2_classifier.sample_headers(100, rng):
            assert (
                trimmed.match(header).index
                == example2_classifier.match(header).index
            )

    def test_truncation_keeps_highest_priority_members(
        self, example2_classifier
    ):
        trimmed = ClassificationCache(example2_classifier, capacity=2)
        kept = sorted(
            i for g in trimmed.grouping.groups for i in g.rule_indices
        )
        assert kept == [0, 1]  # R1, R2 — the highest-priority prefix


class TestCachePropertySemantics:
    def test_hit_never_needs_backing_store(self):
        """The MRCC guarantee, checked directly: whenever the cache engine
        returns a rule, that rule IS the overall first match."""
        rng = random.Random(7)
        for seed in range(8):
            k = random_classifier(random.Random(seed), num_rules=25)
            cache = ClassificationCache(k)
            for header in k.sample_headers(100, rng):
                cached = cache._engine.lookup(header)
                if cached is not None:
                    assert k.match(header).index == cached

    def test_stats_track_hits(self):
        rng = random.Random(8)
        k = random_classifier(rng, num_rules=25)
        cache = ClassificationCache(k)
        for header in k.sample_headers(100, rng):
            cache.match(header)
        assert cache.stats.lookups == 100
        assert 0 <= cache.stats.hits <= 100
        assert cache.stats.hit_rate == cache.stats.hits / 100

    def test_empty_stats(self):
        rng = random.Random(9)
        k = random_classifier(rng, num_rules=10)
        cache = ClassificationCache(k)
        assert cache.stats.hit_rate == 0.0

    def test_order_independent_classifier_hits_everything_matched(
        self, example2_classifier
    ):
        cache = ClassificationCache(example2_classifier)
        # Every body rule of a fully order-independent classifier can live
        # in the cache.
        assert cache.cached_rules == 3
        assert cache.match((2, 5, 5)).index == 0
        assert cache.stats.hits == 1
