"""Tests for the MRCC classification cache (Section 4.3)."""

import random

import pytest

from repro.core import Classifier, make_rule, uniform_schema
from repro.saxpac.cache import ClassificationCache
from conftest import random_classifier


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_cache_matches_linear_scan(self, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=30)
        cache = ClassificationCache(k)
        for header in k.sample_headers(200, rng):
            assert cache.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(4))
    def test_capacity_limited_cache_still_correct(self, seed):
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=30)
        cache = ClassificationCache(k, capacity=10)
        assert cache.cached_rules <= 10
        for header in k.sample_headers(200, rng):
            assert cache.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(4))
    def test_group_budget_respected(self, seed):
        rng = random.Random(200 + seed)
        k = random_classifier(rng, num_rules=30)
        cache = ClassificationCache(k, max_groups=2)
        assert len(cache.grouping.groups) <= 2
        for header in k.sample_headers(150, rng):
            assert cache.match(header).index == k.match(header).index


class TestCachePropertySemantics:
    def test_hit_never_needs_backing_store(self):
        """The MRCC guarantee, checked directly: whenever the cache engine
        returns a rule, that rule IS the overall first match."""
        rng = random.Random(7)
        for seed in range(8):
            k = random_classifier(random.Random(seed), num_rules=25)
            cache = ClassificationCache(k)
            for header in k.sample_headers(100, rng):
                cached = cache._engine.lookup(header)
                if cached is not None:
                    assert k.match(header).index == cached

    def test_stats_track_hits(self):
        rng = random.Random(8)
        k = random_classifier(rng, num_rules=25)
        cache = ClassificationCache(k)
        for header in k.sample_headers(100, rng):
            cache.match(header)
        assert cache.stats.lookups == 100
        assert 0 <= cache.stats.hits <= 100
        assert cache.stats.hit_rate == cache.stats.hits / 100

    def test_empty_stats(self):
        rng = random.Random(9)
        k = random_classifier(rng, num_rules=10)
        cache = ClassificationCache(k)
        assert cache.stats.hit_rate == 0.0

    def test_order_independent_classifier_hits_everything_matched(
        self, example2_classifier
    ):
        cache = ClassificationCache(example2_classifier)
        # Every body rule of a fully order-independent classifier can live
        # in the cache.
        assert cache.cached_rules == 3
        assert cache.match((2, 5, 5)).index == 0
        assert cache.stats.hits == 1
