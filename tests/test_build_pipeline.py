"""Compile-pipeline properties: the vectorized build must match the
reference scans bit for bit, and incremental rebuilds must be
semantically indistinguishable from from-scratch builds."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.columnar import (
    ColumnarRules,
    candidate_subsets,
    pack_disjoint_masks,
    subset_bitmasks,
    subset_fail_table,
)
from repro.analysis.mgr import l_mgr, l_mgr_reference
from repro.analysis.mrc import (
    _fields_or_all,
    _greedy_independent_scan,
    greedy_independent_set,
)
from repro.core import Classifier
from repro.saxpac.config import EngineConfig
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.generator import generate_classifier
from strategies import classifiers, headers_for


# ---------------------------------------------------------------------------
# Columnar primitives
# ---------------------------------------------------------------------------
class TestColumnar:
    def test_columnar_view_reuses_cached_bounds(self):
        classifier = generate_classifier("acl", 50, 3)
        cols = ColumnarRules.from_classifier(classifier)
        lows, highs = classifier.bounds_arrays()
        assert cols.lows is lows and cols.highs is highs
        assert cols.num_rules == len(classifier.body)
        assert cols.num_fields == classifier.num_fields
        assert cols.vectorizable

    def test_fail_table_matches_definition(self):
        subsets = candidate_subsets(4, 2)
        masks = subset_bitmasks(subsets)
        table = subset_fail_table(subsets, 4)
        for value in range(1 << 4):
            expected = sum(
                1 << s
                for s, mask in enumerate(masks)
                if value & mask == 0
            )
            assert int(table[value]) == expected

    def test_pack_disjoint_masks_round_trips(self):
        rng = np.random.default_rng(11)
        cube = rng.integers(0, 2, size=(5, 7, 9), dtype=np.uint8).astype(bool)
        packed = pack_disjoint_masks(cube)
        assert packed.shape == (5, 7)
        for i in range(5):
            for j in range(7):
                expected = sum(1 << f for f in range(9) if cube[i, j, f])
                assert int(packed[i, j]) == expected

    def test_fail_table_limits_enforced(self):
        with pytest.raises(ValueError):
            subset_fail_table([(0,)], 17)


# ---------------------------------------------------------------------------
# Vectorized == reference
# ---------------------------------------------------------------------------
class TestVectorizedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(classifiers(max_rules=40), st.integers(1, 3), st.data())
    def test_l_mgr_matches_reference(self, classifier, l, data):
        n = len(classifier.body)
        beta = data.draw(
            st.one_of(st.none(), st.integers(1, 4)), label="beta"
        )
        order = None
        if n and data.draw(st.booleans(), label="shuffle"):
            order = list(range(n))
            data.draw(st.randoms(), label="rng").shuffle(order)
        fast = l_mgr(classifier, l, beta=beta, order=order)
        reference = l_mgr_reference(classifier, l, beta=beta, order=order)
        assert fast.ungrouped == reference.ungrouped
        assert [g.rule_indices for g in fast.groups] == [
            g.rule_indices for g in reference.groups
        ]
        assert [g.fields for g in fast.groups] == [
            g.fields for g in reference.groups
        ]

    @settings(max_examples=60, deadline=None)
    @given(classifiers(max_rules=60), st.data())
    def test_greedy_independent_set_matches_scan(self, classifier, data):
        fields = None
        if classifier.num_fields > 1 and data.draw(st.booleans()):
            fields = data.draw(
                st.lists(
                    st.integers(0, classifier.num_fields - 1),
                    min_size=1,
                    unique=True,
                )
            )
        chosen = _fields_or_all(classifier, fields)
        lows, highs = classifier.bounds_arrays()
        reference = _greedy_independent_scan(
            lows[:, chosen],
            highs[:, chosen],
            range(lows.shape[0]),
            chosen,
        )
        assert greedy_independent_set(classifier, fields) == reference

    def test_l_mgr_rule_subset_matches_reference(self):
        classifier = generate_classifier("acl", 400, 21)
        rng = random.Random(5)
        subset = rng.sample(range(len(classifier.body)), 150)
        fast = l_mgr(classifier, 2, rule_subset=subset)
        reference = l_mgr_reference(classifier, 2, rule_subset=subset)
        assert [g.rule_indices for g in fast.groups] == [
            g.rule_indices for g in reference.groups
        ]
        assert fast.ungrouped == reference.ungrouped


# ---------------------------------------------------------------------------
# Incremental rebuild semantics
# ---------------------------------------------------------------------------
def _mutate(classifier, rng, removals, insertions, donor_seed):
    body = list(classifier.body)
    removals = min(removals, len(body))
    for index in sorted(
        rng.sample(range(len(body)), removals), reverse=True
    ):
        del body[index]
    donor = generate_classifier("acl", max(32, insertions * 3), donor_seed)
    for rule in list(donor.body)[:insertions]:
        body.insert(rng.randint(0, len(body)), rule)
    return Classifier(classifier.schema, body)


class TestIncrementalRebuild:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_rebuild_path_equivalent_to_fresh_build(self, seed):
        classifier = generate_classifier("acl", 1200, seed)
        engine = SaxPacEngine(classifier)
        rng = random.Random(seed + 100)
        changed = _mutate(classifier, rng, removals=8, insertions=8,
                          donor_seed=seed + 200)
        rebuilt = engine.rebuild(changed)
        assert rebuilt.build_incremental
        fresh = SaxPacEngine(changed)
        headers = np.stack(
            [
                np.random.default_rng(seed).integers(0, 1 << w, size=600)
                for w in classifier.schema.widths
            ],
            axis=1,
        ).tolist()
        got = [m.index for m in rebuilt.match_batch(headers)]
        want = [m.index for m in fresh.match_batch(headers)]
        reference = [m.index for m in changed.match_batch(headers)]
        assert got == want == reference

    def test_rebuild_single_headers_match_linear(self):
        classifier = generate_classifier("fw", 600, 3)
        engine = SaxPacEngine(classifier)
        rng = random.Random(33)
        changed = _mutate(classifier, rng, removals=4, insertions=4,
                          donor_seed=17)
        rebuilt = engine.rebuild(changed)
        for _ in range(200):
            header = tuple(
                rng.randint(0, (1 << w) - 1)
                for w in classifier.schema.widths
            )
            assert rebuilt.match(header).index == changed.match(header).index

    def test_rebuild_does_not_mutate_serving_engine(self):
        classifier = generate_classifier("acl", 800, 9)
        engine = SaxPacEngine(classifier)
        before = engine.report()
        rng = random.Random(1)
        changed = _mutate(classifier, rng, removals=5, insertions=5,
                          donor_seed=2)
        engine.rebuild(changed)
        assert engine.report() == before
        headers = np.stack(
            [
                np.random.default_rng(4).integers(0, 1 << w, size=300)
                for w in classifier.schema.widths
            ],
            axis=1,
        ).tolist()
        got = [m.index for m in engine.match_batch(headers)]
        want = [m.index for m in classifier.match_batch(headers)]
        assert got == want

    def test_chained_rebuilds_stay_equivalent(self):
        classifier = generate_classifier("acl", 900, 13)
        engine = SaxPacEngine(classifier)
        rng = random.Random(77)
        current = classifier
        for round_number in range(4):
            current = _mutate(current, rng, removals=3, insertions=3,
                              donor_seed=500 + round_number)
            engine = engine.rebuild(current)
            headers = np.stack(
                [
                    np.random.default_rng(round_number).integers(
                        0, 1 << w, size=250
                    )
                    for w in current.schema.widths
                ],
                axis=1,
            ).tolist()
            got = [m.index for m in engine.match_batch(headers)]
            want = [m.index for m in current.match_batch(headers)]
            assert got == want

    def test_large_churn_falls_back_to_full_build(self):
        classifier = generate_classifier("acl", 300, 5)
        engine = SaxPacEngine(classifier)
        rng = random.Random(8)
        changed = _mutate(classifier, rng, removals=120, insertions=120,
                          donor_seed=6)
        rebuilt = engine.rebuild(changed)
        assert not rebuilt.build_incremental
        headers = [
            tuple(rng.randint(0, (1 << w) - 1)
                  for w in classifier.schema.widths)
            for _ in range(200)
        ]
        got = [m.index for m in rebuilt.match_batch(headers)]
        want = [m.index for m in changed.match_batch(headers)]
        assert got == want

    def test_enforce_cache_always_full_build(self):
        classifier = generate_classifier("acl", 300, 5)
        engine = SaxPacEngine(classifier, EngineConfig(enforce_cache=True))
        rng = random.Random(8)
        changed = _mutate(classifier, rng, removals=2, insertions=2,
                          donor_seed=6)
        rebuilt = engine.rebuild(changed)
        assert not rebuilt.build_incremental

    def test_priority_only_shift_reuses_everything(self):
        classifier = generate_classifier("acl", 500, 19)
        engine = SaxPacEngine(classifier)
        body = list(classifier.body)
        moved = body.pop(250)
        body.insert(10, moved)
        shifted = Classifier(classifier.schema, body)
        rebuilt = engine.rebuild(shifted)
        assert rebuilt.build_incremental
        rng = random.Random(2)
        headers = [
            tuple(rng.randint(0, (1 << w) - 1)
                  for w in classifier.schema.widths)
            for _ in range(300)
        ]
        got = [m.index for m in rebuilt.match_batch(headers)]
        want = [m.index for m in shifted.match_batch(headers)]
        assert got == want

    @settings(max_examples=25, deadline=None)
    @given(classifiers(max_rules=25), st.data())
    def test_rebuild_property_random_classifiers(self, classifier, data):
        engine = SaxPacEngine(classifier)
        body = list(classifier.body)
        if body and data.draw(st.booleans(), label="remove"):
            del body[data.draw(
                st.integers(0, len(body) - 1), label="victim"
            )]
        if data.draw(st.booleans(), label="insert"):
            from strategies import rules

            new_rule = data.draw(
                rules(classifier.num_fields, 5), label="new_rule"
            )
            body.insert(
                data.draw(st.integers(0, len(body)), label="position"),
                new_rule,
            )
        changed = Classifier(classifier.schema, body)
        rebuilt = engine.rebuild(changed)
        for _ in range(20):
            header = data.draw(headers_for(changed))
            assert rebuilt.match(header).index == changed.match(header).index


# ---------------------------------------------------------------------------
# Stage breakdown plumbing
# ---------------------------------------------------------------------------
class TestBuildStages:
    def test_full_build_stage_breakdown(self):
        classifier = generate_classifier("acl", 400, 4)
        engine = SaxPacEngine(classifier)
        report = engine.report()
        names = [name for name, _ in report.build_stages]
        assert names == ["disjointness", "grouping", "lookup", "tcam"]
        assert all(seconds >= 0.0 for _, seconds in report.build_stages)
        assert report.build_seconds == pytest.approx(
            sum(seconds for _, seconds in report.build_stages)
        )
        assert not report.build_incremental

    def test_rebuild_stage_breakdown(self):
        classifier = generate_classifier("acl", 400, 4)
        engine = SaxPacEngine(classifier)
        body = list(classifier.body)
        del body[100]
        rebuilt = engine.rebuild(Classifier(classifier.schema, body))
        names = [name for name, _ in rebuilt.build_stages]
        assert names == ["diff", "grouping", "lookup", "tcam"]
        assert rebuilt.build_incremental

    def test_reports_with_different_timings_compare_equal(self):
        classifier = generate_classifier("acl", 300, 2)
        assert (
            SaxPacEngine(classifier).report()
            == SaxPacEngine(classifier).report()
        )

    def test_gauges_expose_build_breakdown(self):
        from repro.runtime.service import RuntimeService

        classifier = generate_classifier("acl", 200, 6)
        with RuntimeService(classifier) as service:
            gauges = service.gauges()
            assert gauges["build.seconds"] > 0.0
            assert gauges["build.incremental"] == 0.0
            for stage in ("disjointness", "grouping", "lookup", "tcam"):
                assert f"build.stage.{stage}" in gauges

    def test_swap_uses_incremental_rebuild(self):
        from repro.runtime.swap import HotSwapRuntime
        from repro.runtime.telemetry import Telemetry

        classifier = generate_classifier("acl", 300, 12)
        telemetry = Telemetry()
        runtime = HotSwapRuntime(classifier, recorder=telemetry)
        # A fresh Rule object: re-inserting an object already serving
        # would (correctly) defeat the identity diff and force a full
        # build.
        donor = generate_classifier("acl", 8, 99)
        runtime.insert(donor.body[0])
        snapshot = telemetry.snapshot()
        assert snapshot.counters.get("swap.incremental_rebuilds", 0) >= 1
        reference = runtime.snapshot_classifier()
        rng = random.Random(3)
        headers = [
            tuple(rng.randint(0, (1 << w) - 1)
                  for w in classifier.schema.widths)
            for _ in range(200)
        ]
        got = [m.index for m in runtime.match_batch(headers)]
        want = [m.index for m in reference.match_batch(headers)]
        assert got == want
