"""Differential check over the wire: whatever the serving stack does —
framing, zero-copy decode, coalescing, pipelining, hot swaps — the
answers must stay byte-identical to `Classifier.match_batch`.

Three workload styles, >= 10k packets each, a mix of single and
pipelined requests, with a hot rule insert landing mid-stream.
"""

import random
import threading

import numpy as np
import pytest

from repro.core import make_rule
from repro.net import NetClient, NetConfig, serve_background
from repro.runtime import RuntimeService
from repro.workloads import generate_classifier, generate_trace

PACKETS = 10_000
STYLES = ("acl", "fw", "ipc")


def reference_bytes(classifier, block):
    """The oracle answer as raw bytes, exactly as the wire carries it."""
    results = classifier.match_batch(block)
    return np.fromiter(
        (r.index for r in results), dtype="<u4", count=len(results)
    ).tobytes()


def as_blocks(trace, sizes, seed):
    """Cut the trace into blocks with a deterministic size mix."""
    rng = random.Random(seed)
    blocks = []
    i = 0
    while i < len(trace):
        size = rng.choice(sizes)
        blocks.append(
            np.asarray(trace[i : i + size], dtype=np.uint32)
        )
        i += size
    return [b for b in blocks if len(b)]


@pytest.mark.parametrize("style", STYLES)
def test_wire_answers_match_classifier(style):
    seed = {"acl": 101, "fw": 102, "ipc": 103}[style]
    classifier = generate_classifier(style, num_rules=60, seed=seed)
    service = RuntimeService(classifier)
    handle = serve_background(service, NetConfig(coalesce_wait_ms=0.2))
    try:
        trace = generate_trace(classifier, PACKETS, seed + 1)
        blocks = as_blocks(trace, sizes=(1, 7, 32, 190), seed=seed + 2)
        with NetClient(port=handle.port, retries=4) as client:
            # Half singles, half pipelined, interleaved.
            half = len(blocks) // 2
            pre = service.serving_classifier()
            for block in blocks[:6]:
                got = client.match_batch(block)
                assert got.tobytes() == reference_bytes(pre, block)
            answers = client.match_many(blocks[6:half], window=24)
            for block, got in zip(blocks[6:half], answers):
                assert got.tobytes() == reference_bytes(pre, block)

            # Hot-swap mid-stream: insert a high-priority rule while a
            # pipelined burst is on the wire.  During the race every
            # packet must match either the pre- or post-swap oracle;
            # after the flush the post-swap oracle is authoritative.
            rule = make_rule(
                [(0, (1 << f.width) // 2) for f in pre.schema],
                name="hot-insert",
            )
            racing = blocks[half : half + 8]
            swapper = threading.Thread(
                target=lambda: (
                    service.insert(rule),
                    service.swap.flush(),
                )
            )
            swapper.start()
            race_answers = client.match_many(racing, window=8)
            swapper.join(30.0)
            assert not swapper.is_alive()
            post = service.serving_classifier()
            assert len(post.rules) == len(pre.rules) + 1
            for block, got in zip(racing, race_answers):
                old = reference_bytes(pre, block)
                new = reference_bytes(post, block)
                old_idx = np.frombuffer(old, dtype="<u4")
                new_idx = np.frombuffer(new, dtype="<u4")
                ok = (got == old_idx) | (got == new_idx)
                assert ok.all()

            # Steady state after the swap: byte-identical again.
            rest = blocks[half + 8 :]
            answers = client.match_many(rest, window=24)
            for block, got in zip(rest, answers):
                assert got.tobytes() == reference_bytes(post, block)
    finally:
        assert handle.stop(), "drain was not clean"

    telemetry = service.telemetry
    assert telemetry.counter("net.request_packets") >= PACKETS
    assert telemetry.counter("net.lookups") <= telemetry.counter(
        "net.requests"
    )
