"""Tests for TCAM space accounting."""


from repro.core import Classifier, make_rule, uniform_schema
from repro.tcam.cost import (
    SpaceReport,
    classifier_entry_count,
    classifier_space,
    snapped_width,
)
from repro.tcam.encoding import BinaryRangeEncoder, SrgeRangeEncoder


class TestSnappedWidth:
    def test_standard_steps(self):
        assert snapped_width(64) == 72
        assert snapped_width(72) == 72
        assert snapped_width(73) == 144
        assert snapped_width(150) == 288

    def test_beyond_largest(self):
        assert snapped_width(1000) == 1000


class TestSpaceReport:
    def test_kilobits_math(self):
        report = SpaceReport(entries=1024, width_bits=120)
        assert report.total_bits == 1024 * 120
        assert report.kilobits == 120.0

    def test_snapped_uses_row_format(self):
        report = SpaceReport(entries=10, width_bits=100, snapped=True)
        assert report.effective_width == 144


class TestClassifierAccounting:
    def test_example2_totals(self, example2_classifier):
        assert (
            classifier_entry_count(example2_classifier, BinaryRangeEncoder())
            == 120
        )
        assert (
            classifier_entry_count(example2_classifier, SrgeRangeEncoder())
            == 64
        )

    def test_reduced_fields_example2(self, example2_classifier):
        # Binary encoding of K^-{1,2}: [1,3] -> 2, [4,4] -> 1, [7,9] -> 2
        # prefixes.  (The paper's prose says "2 + 1 + 1 = 4", but [7,9]
        # spans 0111/100* and cannot be a single prefix; 5 is the exact
        # minimal count.)
        assert (
            classifier_entry_count(
                example2_classifier, BinaryRangeEncoder(), fields=[0]
            )
            == 5
        )

    def test_rule_subset(self, example2_classifier):
        full = classifier_entry_count(example2_classifier, BinaryRangeEncoder())
        partial = classifier_entry_count(
            example2_classifier, BinaryRangeEncoder(), rule_indices=[0]
        )
        assert partial == 42
        assert partial < full

    def test_catch_all_excluded_by_default(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(0, 14)])])
        assert classifier_entry_count(k, BinaryRangeEncoder()) == 4
        assert (
            classifier_entry_count(
                k, BinaryRangeEncoder(), include_catch_all=True
            )
            == 5
        )

    def test_classifier_space_width(self, example2_classifier):
        report = classifier_space(
            example2_classifier, BinaryRangeEncoder(), fields=[0, 1]
        )
        assert report.width_bits == 10
        assert report.kilobits == report.entries * 10 / 1024
