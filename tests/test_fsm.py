"""Tests for FSM (Problem 1) — exact and greedy solvers."""

import random

import pytest

from repro.analysis.fsm import fsm, fsm_exact, fsm_greedy
from repro.analysis.order_independence import is_order_independent
from repro.core import Classifier, make_rule, uniform_schema


def _independent_classifier(rng, num_rules=15, num_fields=4, width=8):
    """Random order-independent classifier: distinct exact values in field
    0 guarantee pairwise disjointness; other fields are random ranges."""
    schema = uniform_schema(num_fields, width)
    max_value = (1 << width) - 1
    values = rng.sample(range(max_value + 1), num_rules)
    rules = []
    for v in values:
        ranges = [(v, v)]
        for _ in range(num_fields - 1):
            lo = rng.randint(0, max_value)
            hi = min(max_value, lo + rng.randint(0, 6))
            ranges.append((lo, hi))
        rules.append(make_rule(ranges))
    return Classifier(schema, rules)


class TestExact:
    def test_example2_keeps_field0(self, example2_classifier):
        result = fsm_exact(example2_classifier)
        assert result.kept_fields == (0,)
        assert result.removed_fields == (1, 2)
        assert result.lookup_width == 5

    def test_example1_cannot_reduce_below_one(self, example1_classifier):
        result = fsm_exact(example1_classifier)
        assert len(result.kept_fields) >= 1
        assert is_order_independent(example1_classifier, result.kept_fields)

    def test_rejects_order_dependent(self, example3_classifier):
        with pytest.raises(ValueError):
            fsm_exact(example3_classifier)

    def test_result_is_order_independent(self):
        rng = random.Random(1)
        for _ in range(5):
            k = _independent_classifier(rng)
            result = fsm_exact(k)
            assert is_order_independent(k, result.kept_fields)

    def test_result_is_minimum_size(self):
        # No field subset strictly smaller than the exact result keeps the
        # classifier order-independent.
        import itertools

        rng = random.Random(2)
        for _ in range(5):
            k = _independent_classifier(rng, num_rules=10)
            result = fsm_exact(k)
            smaller = len(result.kept_fields) - 1
            if smaller >= 1:
                for subset in itertools.combinations(
                    range(k.num_fields), smaller
                ):
                    assert not is_order_independent(k, subset)

    def test_exact_is_optimal_vs_bruteforce(self):
        import itertools

        rng = random.Random(3)
        for _ in range(6):
            k = _independent_classifier(rng, num_rules=8, num_fields=4)
            result = fsm_exact(k)
            best = None
            for size in range(1, k.num_fields + 1):
                for subset in itertools.combinations(range(k.num_fields), size):
                    if is_order_independent(k, subset):
                        best = size
                        break
                if best is not None:
                    break
            assert len(result.kept_fields) == best

    def test_single_rule_classifier(self):
        schema = uniform_schema(3, 4)
        k = Classifier(schema, [make_rule([(1, 2), (3, 4), (5, 6)])])
        result = fsm_exact(k)
        assert len(result.kept_fields) == 1


class TestGreedy:
    def test_example2_keeps_field0(self, example2_classifier):
        result = fsm_greedy(example2_classifier)
        assert result.kept_fields == (0,)

    def test_rejects_order_dependent(self, example3_classifier):
        with pytest.raises(ValueError):
            fsm_greedy(example3_classifier)

    def test_result_is_order_independent(self):
        rng = random.Random(4)
        for _ in range(6):
            k = _independent_classifier(rng)
            result = fsm_greedy(k)
            assert is_order_independent(k, result.kept_fields)

    def test_greedy_within_approximation_of_exact(self):
        import math

        rng = random.Random(5)
        for _ in range(6):
            k = _independent_classifier(rng, num_rules=10)
            exact = fsm_exact(k)
            greedy = fsm_greedy(k)
            n = len(k.body)
            bound = (2 * math.log(n) + 1) * max(1, len(exact.kept_fields))
            assert len(greedy.kept_fields) <= bound

    def test_empty_body(self):
        schema = uniform_schema(3, 4)
        k = Classifier(schema, [])
        result = fsm_greedy(k)
        assert len(result.kept_fields) == 1


class TestDispatcher:
    def test_small_uses_exact(self, example2_classifier):
        assert fsm(example2_classifier).method == "exact"

    def test_large_field_count_uses_greedy(self):
        rng = random.Random(6)
        schema = uniform_schema(12, 6)
        values = rng.sample(range(64), 10)
        rules = [
            make_rule([(v, v)] + [(0, 63)] * 11) for v in values
        ]
        k = Classifier(schema, rules)
        assert fsm(k).method == "greedy"

    def test_width_reported(self, example2_classifier):
        result = fsm(example2_classifier)
        assert result.lookup_width == sum(
            example2_classifier.schema.widths[f] for f in result.kept_fields
        )
