"""Tests for the shared benchmark harness utilities."""


from repro.bench.harness import (
    bench_rules,
    cached_suite,
    classbench_names,
    cisco_names,
    format_kb,
    format_table,
)


class TestBenchRules:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_RULES", raising=False)
        assert bench_rules() == 2000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RULES", "123")
        assert bench_rules() == 123

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RULES", "not-a-number")
        assert bench_rules() == 2000

    def test_non_positive_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RULES", "-5")
        assert bench_rules() == 2000


class TestCachedSuite:
    def test_caching_returns_same_object(self):
        a = cached_suite(rules=60)
        b = cached_suite(rules=60)
        assert a is b

    def test_names_partition(self):
        names = set(classbench_names()) | set(cisco_names())
        suite = cached_suite(rules=60)
        assert names == set(suite)
        assert not set(classbench_names()) & set(cisco_names())


class TestFormatting:
    def test_format_kb_scales(self):
        assert format_kb(0.5) == "0.50"
        assert format_kb(12.34) == "12.3"
        assert format_kb(512.0) == "512"
        assert format_kb(123456.0) == "123,456"

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 22]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        # All rows share the same width.
        assert len(set(len(l) for l in lines[1:])) <= 2

    def test_format_table_empty_rows(self):
        text = format_table(["only"], [])
        assert "only" in text
