"""Tests for the exact classifier-equivalence decision procedure."""

import random

import pytest

from repro.analysis.equivalence import (
    BudgetExceeded,
    are_equivalent,
    find_difference,
)
from repro.analysis.redundancy import remove_redundant
from repro.core import (
    Classifier,
    DENY,
    PERMIT,
    make_rule,
    uniform_schema,
)
from conftest import random_classifier


class TestBasics:
    def test_identical_classifiers(self, example3_classifier):
        assert are_equivalent(example3_classifier, example3_classifier)

    def test_schema_mismatch_rejected(self, example1_classifier,
                                      example2_classifier):
        with pytest.raises(ValueError):
            are_equivalent(example1_classifier, example2_classifier)

    def test_detects_action_difference(self):
        schema = uniform_schema(2, 5)
        a = Classifier(schema, [make_rule([(1, 3), (4, 8)], PERMIT)])
        b = Classifier(schema, [make_rule([(1, 3), (4, 8)], DENY)])
        witness = find_difference(a, b)
        assert witness is not None
        assert a.classify(witness) != b.classify(witness)

    def test_detects_boundary_difference(self):
        schema = uniform_schema(1, 6)
        a = Classifier(schema, [make_rule([(10, 20)], DENY)])
        b = Classifier(schema, [make_rule([(10, 21)], DENY)])
        witness = find_difference(a, b)
        assert witness == (21,)

    def test_same_behavior_different_rules(self):
        # Two rules vs their merged equivalent.
        schema = uniform_schema(1, 6)
        a = Classifier(
            schema,
            [make_rule([(0, 9)], DENY), make_rule([(10, 20)], DENY)],
        )
        b = Classifier(schema, [make_rule([(0, 20)], DENY)])
        assert are_equivalent(a, b)

    def test_budget_enforced(self):
        rng = random.Random(0)
        a = random_classifier(rng, num_rules=15, num_fields=3)
        b = random_classifier(rng, num_rules=15, num_fields=3)
        with pytest.raises(BudgetExceeded):
            find_difference(a, b, budget=3)


class TestOrderIndependencePermutation:
    def test_permuting_independent_rules_is_equivalent(
        self, example2_classifier
    ):
        """The definitional property: an order-independent classifier is
        insensitive to rule order — verified exactly."""
        permuted = example2_classifier.subset([2, 0, 1])
        assert are_equivalent(example2_classifier, permuted)

    def test_permuting_dependent_rules_is_detected(self):
        schema = uniform_schema(1, 5)
        a = Classifier(
            schema,
            [make_rule([(0, 10)], PERMIT), make_rule([(5, 15)], DENY)],
        )
        b = a.subset([1, 0])
        witness = find_difference(a, b)
        assert witness is not None
        assert 5 <= witness[0] <= 10  # the overlap region


class TestPipelineVerification:
    @pytest.mark.parametrize("seed", range(6))
    def test_redundancy_removal_exactly_equivalent(self, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=12, num_fields=2, width=5)
        cleaned, _removed = remove_redundant(k)
        assert are_equivalent(k, cleaned)

    def test_serialization_roundtrip_exactly_equivalent(self):
        from repro.saxpac.serialization import (
            classifier_from_dict,
            classifier_to_dict,
        )

        rng = random.Random(9)
        k = random_classifier(rng, num_rules=10, num_fields=2, width=5)
        restored = classifier_from_dict(classifier_to_dict(k))
        assert are_equivalent(k, restored)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_mutation_detected(self, seed):
        """Perturbing one rule's action (on a reachable rule) must be
        caught."""
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=8, num_fields=2, width=5)
        # Mutate the highest-priority rule: always reachable.
        from dataclasses import replace

        target = k.rules[0]
        flipped = replace(
            target, action=DENY if target.action != DENY else PERMIT
        )
        mutated = Classifier(
            k.schema,
            [flipped] + list(k.body[1:]),
            ensure_catch_all=True,
        )
        assert find_difference(k, mutated) is not None
