"""End-to-end walkthroughs of the paper's worked examples and figures.

Each test reproduces the exact rules and packets of Examples 1-3, 5, 6 and
10 (Figures 2-5 and 7) and checks the behaviour the paper describes.
"""


from repro.analysis.fsm import fsm_exact
from repro.analysis.mgr import l_mgr
from repro.analysis.mrc import greedy_independent_set
from repro.analysis.order_independence import is_order_independent
from repro.core import Classifier, FieldSpec, Interval, make_rule, uniform_schema
from repro.lookup.group_engine import MultiGroupEngine
from repro.saxpac.engine import SaxPacEngine
from repro.saxpac.updates import DynamicSaxPac, InsertOutcome
from repro.tcam.encoding import (
    BinaryRangeEncoder,
    SrgeRangeEncoder,
)
from repro.tcam.cost import classifier_entry_count


class TestExample1Figure2:
    """Theorem 1: classify on the original fields, verify the new ones."""

    def test_expansion_lookup(self, example1_classifier):
        extra_specs = [FieldSpec("new", 5)]
        expanded = example1_classifier.extend(
            extra_specs,
            [[Interval(1, 28)], [Interval(4, 27)], [Interval(3, 18)]],
        )
        assert is_order_independent(expanded)
        # Packet (4, 2, 2): matches R2 on the original fields, but fails
        # the false-positive check on the added field -> catch-all.
        header = (4, 2, 2)
        original = header[:2]
        candidate = example1_classifier.match(original)
        assert candidate.rule.name == "R2"
        assert not expanded.rules[candidate.index].matches(header)
        assert expanded.match(header).rule is expanded.catch_all

    def test_entry_counts_shrink(self, example1_classifier):
        """Example 1's space claim: encoding K instead of K+1 is far
        cheaper under both encodings."""
        extra_specs = [FieldSpec("new", 5)]
        expanded = example1_classifier.extend(
            extra_specs,
            [[Interval(1, 28)], [Interval(4, 27)], [Interval(3, 18)]],
        )
        for encoder in (BinaryRangeEncoder(), SrgeRangeEncoder()):
            small = classifier_entry_count(example1_classifier, encoder)
            large = classifier_entry_count(expanded, encoder)
            assert small < large

    def test_paper_entry_counts_binary(self, example1_classifier):
        """The binary encoding of K+1 requires 42 + 28 + 50 = 120 entries
        (paper); K itself needs far fewer."""
        extra_specs = [FieldSpec("new", 5)]
        expanded = example1_classifier.extend(
            extra_specs,
            [[Interval(1, 28)], [Interval(4, 27)], [Interval(3, 18)]],
        )
        counts = [
            classifier_entry_count(
                expanded, BinaryRangeEncoder(), rule_indices=[i]
            )
            for i in range(3)
        ]
        assert counts == [42, 28, 50]


class TestExample2Figure3:
    def test_field0_reduction(self, example2_classifier):
        result = fsm_exact(example2_classifier)
        assert result.kept_fields == (0,)

    def test_false_positive_check(self, example2_classifier):
        # Packet (4, 2, 2) matches R2 on field 0 but fails the check on
        # the removed fields -> catch-all.
        header = (4, 2, 2)
        reduced = example2_classifier.restrict([0])
        candidate = reduced.match((header[0],))
        assert candidate.rule.name == "R2"
        assert not example2_classifier.rules[candidate.index].matches(header)
        assert (
            example2_classifier.match(header).rule
            is example2_classifier.catch_all
        )

    def test_paper_entry_totals(self, example2_classifier):
        assert (
            classifier_entry_count(example2_classifier, BinaryRangeEncoder())
            == 120
        )
        assert (
            classifier_entry_count(example2_classifier, SrgeRangeEncoder())
            == 64
        )


class TestExample3Figure4:
    def test_grouping_matches_paper(self, example3_classifier):
        result = l_mgr(example3_classifier, l=2)
        assert [g.rule_indices for g in result.groups] == [(0, 1, 2), (3, 4)]

    def test_lookup_walkthrough(self, example3_classifier):
        result = l_mgr(example3_classifier, l=2)
        engine = MultiGroupEngine(example3_classifier, result.groups)
        # Packet (2, 4, 5): group 1 returns R2, group 2 returns R5; both
        # survive the false-positive test; R2 wins by priority.
        g1 = engine.groups[0].probe((2, 4, 5))
        g2 = engine.groups[1].probe((2, 4, 5))
        assert example3_classifier.rules[g1].name == "R2"
        assert example3_classifier.rules[g2].name == "R5"
        assert example3_classifier.rules[engine.lookup((2, 4, 5))].name == "R2"


class TestExample5Figure5:
    def test_compact_representation(self, example5_classifier):
        """Moving R3 (and R5) to D leaves {R1, R2, R4} order-independent
        on the third field alone."""
        rules = example5_classifier.rules
        from repro.analysis.order_independence import rules_order_independent

        assert rules_order_independent([rules[0], rules[1], rules[3]], [2])
        # And the four-rule maximal independent set needs two groups.
        result = l_mgr(
            example5_classifier, l=2, rule_subset=[0, 1, 2, 3]
        )
        assert result.num_groups == 2

    def test_greedy_independent_set_matches_paper(self, example5_classifier):
        result = greedy_independent_set(example5_classifier)
        assert result.rule_indices == (0, 1, 2, 3)

    def test_hybrid_engine_on_example5(self, example5_classifier):
        engine = SaxPacEngine(example5_classifier)
        import random

        rng = random.Random(0)
        for header in example5_classifier.sample_headers(300, rng):
            assert (
                engine.match(header).index
                == example5_classifier.match(header).index
            )


class TestExample6:
    def test_field_level_fsm(self):
        """Treating the 8 bits as two 4-bit fields, FSM keeps field 0."""
        schema = uniform_schema(2, 4)
        k = Classifier(
            schema,
            [
                make_rule([(0b1000, 0b1001), (0b0010, 0b0011)]),
                make_rule([(0b1010, 0b1010), (0b0001, 0b0001)]),
                make_rule([(0b0000, 0b0001), (0b0000, 0b1111)]),
                make_rule([(0b0010, 0b0011), (0b0000, 0b1111)]),
            ],
        )
        result = fsm_exact(k)
        assert result.kept_fields == (0,)
        assert result.lookup_width == 4


class TestExample9:
    def test_mindnf_vs_fsm_on_example6_classifier(self):
        """Example 9: on Example 6's rules the only MinDNF move is the
        resolution of R3 and R4 into (00**, ****); width stays 8 (7 after
        dropping the constant column), while FSM reaches 4 bits at field
        resolution and 2 at bit resolution."""
        from repro.boolean.dnf import minimize_terms
        from repro.boolean.ternary import word_from_pattern
        from repro.boolean.width import (
            pure_width,
            same_value_reduced_width,
            virtual_field_fsm,
        )

        terms = [
            word_from_pattern("100*001*"),
            word_from_pattern("10100001"),
            word_from_pattern("000*****"),
            word_from_pattern("001*****"),
        ]
        minimized = minimize_terms(terms)
        # The only resolution merges R3 and R4 into 00******.
        patterns = sorted(t.pattern() for t in minimized)
        assert "00******" in patterns
        assert len(minimized) == 3
        # MinDNF width stays near 8; paper notes 7 after dropping the
        # constant column (bit 1 is 0 in every remaining term).
        assert pure_width(minimized, 8) == 8
        assert same_value_reduced_width(minimized, 8) == 7
        # Bit-level FSM gets to 2 bits.
        result = virtual_field_fsm(terms, 8, 1)
        assert result.reduced_width == 2


class TestExample10Figure7:
    def test_insertion_flow(self, example10_classifier):
        dyn = DynamicSaxPac(
            uniform_schema(3, 4),
            max_group_fields=1,
            max_groups=1,
            fp_budget=2,
        )
        ids = {}
        for rule in example10_classifier.body:
            report = dyn.insert(rule)
            ids[rule.name] = report.rule_id
        # First field suffices for order-independence of R1..R3.
        assert dyn._groups[0].fields == (0,)
        r4 = make_rule([(2, 4), (2, 2), (3, 3)], name="R4")
        report = dyn.insert(r4)
        assert report.outcome is InsertOutcome.SHADOW
        # R4 is tested when R1 or R3 matches, not when R2 matches.
        host_names = {dyn.rule(h).name for h in report.hosts}
        assert host_names == {"R1", "R3"}
        # Packets: inside R4 -> R4; inside R2 -> R2 untouched.
        assert dyn.rule(dyn.match_id((3, 2, 3))).name == "R4"
        assert dyn.rule(dyn.match_id((7, 4, 4))).name == "R2"


class TestSection6LowerBoundExample:
    def test_mrc_field_selection_counterexample(self):
        """Section 6.2.2's instance where the best-covering field is not
        the best MRC field: field 0 separates 4 pairs, field 1 only 3, yet
        field 1 admits the 3-rule independent set."""
        schema = uniform_schema(2, 3)
        k = Classifier(
            schema,
            [
                make_rule([(0, 1), (0, 0)]),
                make_rule([(2, 3), (1, 1)]),
                make_rule([(0, 1), (2, 2)]),
                make_rule([(2, 3), (0, 3)]),
            ],
        )
        from repro.analysis.order_independence import pair_separation_bitsets
        import numpy as np

        universe, bitsets = pair_separation_bitsets(k)
        counts = [int(np.unpackbits(b)[: universe.num_pairs].sum())
                  for b in bitsets]
        assert counts == [4, 3]
        from repro.analysis.mrc import exact_independent_set_small

        assert exact_independent_set_small(k, fields=[0]).size == 2
        assert exact_independent_set_small(k, fields=[1]).size == 3
