"""Unit and property tests for repro.core.intervals."""

import pytest
from hypothesis import given, strategies as st

from repro.core.intervals import (
    Interval,
    full_interval,
    interval_from_prefix,
    interval_from_value_mask,
    merge_intervals,
    prefix_for_interval,
    split_into_prefixes,
)


class TestIntervalBasics:
    def test_point_interval(self):
        iv = Interval(5, 5)
        assert iv.size == 1
        assert iv.is_exact()
        assert 5 in iv
        assert 4 not in iv

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Interval(-1, 2)

    def test_len_matches_size(self):
        iv = Interval(2, 9)
        assert len(iv) == iv.size == 8

    def test_ordering_is_lexicographic(self):
        assert Interval(1, 5) < Interval(2, 3)
        assert Interval(1, 3) < Interval(1, 5)

    def test_hashable(self):
        assert len({Interval(1, 2), Interval(1, 2), Interval(1, 3)}) == 2


class TestOverlapDisjoint:
    def test_overlapping(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))
        assert not Interval(1, 5).disjoint(Interval(5, 9))

    def test_disjoint(self):
        assert Interval(1, 4).disjoint(Interval(5, 9))
        assert Interval(5, 9).disjoint(Interval(1, 4))

    def test_nested_overlap(self):
        assert Interval(0, 10).overlaps(Interval(3, 4))

    def test_paper_order_independence_example(self):
        # Section 2: [1,3] vs [5,6] disjoint; [1,3] vs [2,4] overlap.
        assert Interval(1, 3).disjoint(Interval(5, 6))
        assert Interval(1, 3).overlaps(Interval(2, 4))

    def test_covers(self):
        assert Interval(0, 10).covers(Interval(3, 7))
        assert Interval(0, 10).covers(Interval(0, 10))
        assert not Interval(1, 10).covers(Interval(0, 5))

    def test_intersection(self):
        assert Interval(1, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(1, 2).intersection(Interval(5, 6)) is None


class TestPrefixConversions:
    def test_full_interval(self):
        assert full_interval(4) == Interval(0, 15)

    def test_full_interval_rejects_zero_width(self):
        with pytest.raises(ValueError):
            full_interval(0)

    def test_prefix_roundtrip_exact(self):
        iv = interval_from_prefix(0b1010, 4, 4)
        assert iv == Interval(10, 10)
        assert prefix_for_interval(iv, 4) == (10, 4)

    def test_prefix_roundtrip_wildcard(self):
        iv = interval_from_prefix(0, 0, 4)
        assert iv == Interval(0, 15)
        assert prefix_for_interval(iv, 4) == (0, 0)

    def test_prefix_partial(self):
        # 10?? on 4 bits -> [8, 11]
        iv = interval_from_prefix(0b1000, 2, 4)
        assert iv == Interval(8, 11)

    def test_non_prefix_interval(self):
        assert prefix_for_interval(Interval(1, 2), 4) is None  # unaligned
        assert prefix_for_interval(Interval(0, 2), 4) is None  # size 3

    def test_value_mask_prefix(self):
        iv = interval_from_value_mask(0b1100, 0b1100, 4)
        assert iv == Interval(12, 15)

    def test_value_mask_rejects_noncontiguous(self):
        with pytest.raises(ValueError):
            interval_from_value_mask(0b1010, 0b1010, 4)

    @given(st.integers(1, 12), st.data())
    def test_prefix_roundtrip_property(self, width, data):
        plen = data.draw(st.integers(0, width))
        value = data.draw(st.integers(0, (1 << width) - 1))
        iv = interval_from_prefix(value, plen, width)
        got = prefix_for_interval(iv, width)
        assert got is not None
        # Re-expanding the detected prefix gives the same interval.
        assert interval_from_prefix(got[0] << (width - got[1]), got[1], width) == iv


class TestSplitIntoPrefixes:
    def test_single_point(self):
        assert list(split_into_prefixes(Interval(5, 5), 4)) == [(5, 4)]

    def test_full_range(self):
        assert list(split_into_prefixes(Interval(0, 15), 4)) == [(0, 0)]

    def test_worst_case_bound(self):
        # [1, 2^W - 2] needs exactly 2W - 2 prefixes.
        for width in (3, 5, 8):
            parts = list(
                split_into_prefixes(Interval(1, (1 << width) - 2), width)
            )
            assert len(parts) == 2 * width - 2

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            list(split_into_prefixes(Interval(0, 16), 4))

    @given(st.integers(1, 10), st.data())
    def test_exact_cover_property(self, width, data):
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        interval = Interval(low, high)
        covered = set()
        for value, plen in split_into_prefixes(interval, width):
            span = width - plen
            start = value << span
            block = set(range(start, start + (1 << span)))
            assert not block & covered, "prefixes must not overlap"
            covered |= block
        assert covered == set(range(low, high + 1))

    @given(st.integers(1, 16), st.data())
    def test_count_bound_property(self, width, data):
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        count = sum(1 for _ in split_into_prefixes(Interval(low, high), width))
        assert count <= max(1, 2 * width - 2)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_adjacent_merge(self):
        assert merge_intervals([Interval(1, 3), Interval(4, 6)]) == [
            Interval(1, 6)
        ]

    def test_overlapping_merge(self):
        assert merge_intervals([Interval(1, 5), Interval(3, 9)]) == [
            Interval(1, 9)
        ]

    def test_disjoint_stay_apart(self):
        out = merge_intervals([Interval(8, 9), Interval(1, 3)])
        assert out == [Interval(1, 3), Interval(8, 9)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 20)), max_size=15
        )
    )
    def test_merge_preserves_points(self, raw):
        intervals = [Interval(lo, lo + span) for lo, span in raw]
        merged = merge_intervals(intervals)
        points = set()
        for iv in intervals:
            points |= set(range(iv.low, iv.high + 1))
        merged_points = set()
        for iv in merged:
            merged_points |= set(range(iv.low, iv.high + 1))
        assert merged_points == points
        # Result is sorted and strictly separated.
        for a, b in zip(merged, merged[1:]):
            assert a.high + 1 < b.low
