"""Tests for the deny-entry range encoding (after [29])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Interval
from repro.tcam.encoding import binary_expand
from repro.tcam.negative import (
    DecisionList,
    negative_range_encode,
)


def _semantics(interval, width):
    dl = DecisionList(negative_range_encode(interval, width))
    return {v for v in range(1 << width) if dl.matches(v)}


class TestExactCover:
    def test_point(self):
        assert _semantics(Interval(5, 5), 4) == {5}

    def test_full(self):
        entries = negative_range_encode(Interval(0, 15), 4)
        assert len(entries) == 1
        assert _semantics(Interval(0, 15), 4) == set(range(16))

    def test_classic_worst_case_for_prefixes(self):
        # [1, 2^W - 2] costs 2W-2 positive prefixes but only a handful of
        # signed entries.
        width = 8
        interval = Interval(1, 254)
        entries = negative_range_encode(interval, width)
        assert _semantics(interval, width) == set(range(1, 255))
        assert len(entries) < len(binary_expand(interval, width))

    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 6])
    def test_exhaustive_small_widths(self, width):
        top = (1 << width) - 1
        for low in range(top + 1):
            for high in range(low, top + 1):
                expected = set(range(low, high + 1))
                assert _semantics(Interval(low, high), width) == expected

    @given(st.integers(7, 14), st.data())
    @settings(max_examples=150)
    def test_cover_property(self, width, data):
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        dl = DecisionList(negative_range_encode(Interval(low, high), width))
        probe = data.draw(st.integers(0, max_value))
        assert dl.matches(probe) == (low <= probe <= high)
        for boundary in (low, high, max(0, low - 1), min(max_value, high + 1)):
            assert dl.matches(boundary) == (low <= boundary <= high)


class TestEntryCounts:
    @given(st.integers(1, 16), st.data())
    def test_linear_bound(self, width, data):
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        entries = negative_range_encode(Interval(low, high), width)
        # Run-based construction: at most 2 * width signed entries.
        assert len(entries) <= 2 * width

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            negative_range_encode(Interval(0, 16), 4)

    def test_never_worse_than_binary(self):
        import random

        width = 16
        rng = random.Random(3)
        for _ in range(200):
            low = rng.randint(0, (1 << width) - 1)
            high = rng.randint(low, (1 << width) - 1)
            iv = Interval(low, high)
            assert len(negative_range_encode(iv, width)) <= len(
                binary_expand(iv, width)
            )

    def test_worst_case_far_below_binary(self):
        # The prefix-expansion worst case [1, 2^W-2] needs 2W-2 positive
        # entries; signed entries cap it near W.
        for width in (8, 12, 16):
            iv = Interval(1, (1 << width) - 2)
            signed = negative_range_encode(iv, width)
            assert len(binary_expand(iv, width)) == 2 * width - 2
            assert len(signed) <= width + 2


class TestDecisionList:
    def test_default_reject(self):
        dl = DecisionList([])
        assert not dl.matches(0)

    def test_first_match_polarity(self):
        from repro.tcam.entry import entry_from_pattern
        from repro.tcam.negative import SignedEntry

        dl = DecisionList(
            [
                SignedEntry(entry_from_pattern("11"), False),
                SignedEntry(entry_from_pattern("1*"), True),
            ]
        )
        assert not dl.matches(0b11)
        assert dl.matches(0b10)
        assert not dl.matches(0b01)
