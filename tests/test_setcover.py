"""Tests for greedy set cover / max coverage, both backends."""

import numpy as np
from hypothesis import given, strategies as st

from repro.analysis.setcover import (
    greedy_max_coverage,
    greedy_max_coverage_bits,
    greedy_set_cover,
    greedy_set_cover_bits,
)


def _to_bitset(elements, num_elements):
    flat = np.zeros(num_elements, dtype=bool)
    for e in elements:
        flat[e] = True
    return np.packbits(flat)


class TestSetBackend:
    def test_simple_cover(self):
        universe = {0, 1, 2, 3}
        sets = [{0, 1}, {2}, {3}, {2, 3}]
        chosen = greedy_set_cover(universe, sets)
        covered = set()
        for i in chosen:
            covered |= sets[i]
        assert covered >= universe

    def test_greedy_picks_biggest_first(self):
        universe = {0, 1, 2, 3, 4}
        sets = [{0, 1, 2}, {3}, {4}, {3, 4}]
        chosen = greedy_set_cover(universe, sets)
        assert chosen[0] == 0
        assert set(chosen) == {0, 3}

    def test_uncoverable_returns_none(self):
        assert greedy_set_cover({0, 1, 9}, [{0}, {1}]) is None

    def test_empty_universe(self):
        assert greedy_set_cover(set(), [{1}]) == []

    def test_max_coverage_budget(self):
        universe = set(range(6))
        sets = [{0, 1, 2}, {3, 4}, {5}, {0, 5}]
        chosen, covered = greedy_max_coverage(universe, sets, budget=2)
        assert len(chosen) == 2
        assert len(covered) == 5  # {0,1,2} then {3,4}

    def test_max_coverage_stops_when_nothing_gains(self):
        universe = {0, 1}
        sets = [{0, 1}, {0}, {1}]
        chosen, covered = greedy_max_coverage(universe, sets, budget=3)
        assert chosen == [0]
        assert covered == universe


class TestBitsBackend:
    def test_matches_set_backend_simple(self):
        universe = set(range(10))
        sets = [{0, 1, 2, 3}, {4, 5, 6}, {7, 8}, {9}, {0, 9}]
        bitsets = [_to_bitset(s, 10) for s in sets]
        chosen_sets = greedy_set_cover(universe, sets)
        chosen_bits = greedy_set_cover_bits(10, bitsets)
        assert chosen_sets == chosen_bits

    def test_uncoverable_returns_none(self):
        bitsets = [_to_bitset({0}, 3), _to_bitset({1}, 3)]
        assert greedy_set_cover_bits(3, bitsets) is None

    def test_zero_elements(self):
        assert greedy_set_cover_bits(0, []) == []

    def test_padding_bits_ignored(self):
        # 9 elements needs 2 bytes; padding must not count as coverage.
        bitsets = [np.full(2, 0xFF, dtype=np.uint8)]
        chosen = greedy_set_cover_bits(9, bitsets)
        assert chosen == [0]

    @given(
        st.integers(1, 40),
        st.lists(
            st.sets(st.integers(0, 39), max_size=20), min_size=1, max_size=8
        ),
    )
    def test_backends_agree_property(self, num_elements, raw_sets):
        sets = [{e for e in s if e < num_elements} for s in raw_sets]
        universe = set(range(num_elements))
        bitsets = [_to_bitset(s, num_elements) for s in sets]
        set_result = greedy_set_cover(universe, sets)
        bits_result = greedy_set_cover_bits(num_elements, bitsets)
        assert (set_result is None) == (bits_result is None)
        if set_result is not None:
            assert set_result == bits_result

    @given(
        st.integers(1, 30),
        st.lists(
            st.sets(st.integers(0, 29), max_size=15), min_size=1, max_size=6
        ),
        st.integers(1, 4),
    )
    def test_max_coverage_backends_agree(self, num_elements, raw_sets, budget):
        sets = [{e for e in s if e < num_elements} for s in raw_sets]
        universe = set(range(num_elements))
        bitsets = [_to_bitset(s, num_elements) for s in sets]
        chosen_sets, covered_sets = greedy_max_coverage(universe, sets, budget)
        chosen_bits, covered_bits = greedy_max_coverage_bits(
            num_elements, bitsets, budget
        )
        assert chosen_sets == chosen_bits
        covered_from_bits = {
            i
            for i, bit in enumerate(np.unpackbits(covered_bits)[:num_elements])
            if bit
        }
        assert covered_from_bits == covered_sets
