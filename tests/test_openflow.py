"""Tests for OpenFlow flow-table rendering/parsing."""

import pytest

from repro.core import (
    Classifier,
    DENY,
    PERMIT,
    make_rule,
    classbench_schema,
    uniform_schema,
)
from repro.core.actions import Action, ActionKind
from repro.workloads.generator import generate_classifier
from repro.workloads.openflow import (
    flow_count,
    from_flow_table,
    to_flow_table,
)


def _rule(src=(0, 0xFFFFFFFF), dst=(0, 0xFFFFFFFF), sport=(0, 65535),
          dport=(0, 65535), proto=(0, 255), flags=(0, 0xFFFF),
          action=PERMIT):
    return make_rule([src, dst, sport, dport, proto, flags], action)


class TestRendering:
    def test_simple_rule(self):
        k = Classifier(
            classbench_schema(),
            [
                _rule(
                    src=(0x0A000000, 0x0AFFFFFF),
                    dport=(80, 80),
                    proto=(6, 6),
                )
            ],
        )
        text = to_flow_table(k)
        assert "nw_src=10.0.0.0/8" in text
        assert "tp_dst=80" in text
        assert "nw_proto=6" in text
        assert "actions=NORMAL" in text

    def test_priorities_descend(self):
        k = Classifier(
            classbench_schema(),
            [_rule(dport=(80, 80)), _rule(dport=(443, 443), action=DENY)],
        )
        lines = to_flow_table(k).splitlines()
        priorities = [int(l.split(",")[0].split("=")[1]) for l in lines]
        assert priorities == sorted(priorities, reverse=True)

    def test_range_expansion_counts(self):
        k = Classifier(
            classbench_schema(), [_rule(dport=(1, 14))]  # 6 prefixes on 16 bits? no: [1,14] on 16 bits
        )
        assert flow_count(k) == len(to_flow_table(k).splitlines())

    def test_deny_renders_drop(self):
        k = Classifier(
            classbench_schema(), [_rule(proto=(6, 6), action=DENY)]
        )
        assert "actions=drop" in to_flow_table(k)

    def test_mark_renders_queue(self):
        # Needs a non-wildcard match somewhere: a fully-wildcard body rule
        # would be absorbed as the catch-all.
        k = Classifier(
            classbench_schema(),
            [_rule(dport=(80, 80),
                   action=Action(ActionKind.MARK, payload=3))],
        )
        assert "set_queue:3" in to_flow_table(k)

    def test_exact_flags_rendered(self):
        k = Classifier(classbench_schema(), [_rule(flags=(0x12, 0x12))])
        assert "tcp_flags=0x0012" in to_flow_table(k)

    def test_non_exact_flags_rejected(self):
        k = Classifier(classbench_schema(), [_rule(flags=(0, 7))])
        with pytest.raises(ValueError):
            to_flow_table(k)

    def test_wrong_schema_rejected(self):
        k = Classifier(uniform_schema(2, 4), [make_rule([(1, 2), (3, 4)])])
        with pytest.raises(ValueError):
            to_flow_table(k)


class TestRoundTrip:
    def test_single_rule_roundtrip(self):
        k = Classifier(
            classbench_schema(),
            [
                _rule(
                    src=(0x0A000000, 0x0AFFFFFF),
                    dst=(0xC0A80000, 0xC0A8FFFF),
                    sport=(1024, 65535),
                    dport=(53, 53),
                    proto=(17, 17),
                    action=DENY,
                )
            ],
        )
        restored = from_flow_table(to_flow_table(k))
        assert len(restored.body) == 1
        assert restored.body[0].intervals == k.body[0].intervals
        assert restored.body[0].action == k.body[0].action

    def test_generated_classifier_roundtrip(self):
        k = generate_classifier("acl", 60, seed=8)
        restored = from_flow_table(to_flow_table(k))
        assert len(restored.body) == len(k.body)
        for original, back in zip(k.body, restored.body):
            assert original.intervals == back.intervals
            assert original.action.kind == back.action.kind

    def test_roundtrip_preserves_semantics(self):
        import random

        k = generate_classifier("ipc", 80, seed=9)
        restored = from_flow_table(to_flow_table(k))
        rng = random.Random(1)
        for header in k.sample_headers(300, rng):
            assert restored.classify(header) == k.classify(header)

    def test_foreign_flow_table_rejected(self):
        # Flows that cannot merge back into range rules.
        text = (
            "priority=100,tp_dst=80,actions=NORMAL\n"
            "priority=100,tp_dst=443,actions=NORMAL\n"
        )
        with pytest.raises(ValueError):
            from_flow_table(text)

    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\npriority=5,tp_dst=80,actions=drop\n"
        k = from_flow_table(text)
        assert len(k.body) == 1
        assert k.body[0].action == DENY


class TestFlowCount:
    def test_port_ranges_multiply(self):
        single = Classifier(classbench_schema(), [_rule(proto=(6, 6))])
        ranged = Classifier(
            classbench_schema(),
            [_rule(sport=(1, 65534), dport=(1, 65534))],
        )
        assert flow_count(single) == 1
        assert flow_count(ranged) == 30 * 30  # (2*16-2)^2
