"""Tests for classifier structural statistics."""


from repro.analysis.statistics import classifier_statistics
from repro.core import Classifier, make_rule, uniform_schema
from repro.workloads.generator import generate_classifier


class TestFieldStatistics:
    def test_wildcard_and_exact_fractions(self):
        schema = uniform_schema(2, 4)
        k = Classifier(
            schema,
            [
                make_rule([(0, 15), (3, 3)]),
                make_rule([(0, 15), (5, 5)]),
                make_rule([(2, 3), (0, 15)]),
                make_rule([(4, 4), (1, 6)]),
            ],
        )
        stats = classifier_statistics(k)
        f0, f1 = stats.fields
        assert f0.wildcard_fraction == 0.5
        assert f0.exact_fraction == 0.25
        assert f1.exact_fraction == 0.5
        assert f1.wildcard_fraction == 0.25

    def test_prefix_and_range_fractions(self):
        schema = uniform_schema(1, 4)
        k = Classifier(
            schema,
            [
                make_rule([(8, 11)]),   # prefix 10**
                make_rule([(1, 6)]),    # true range
            ],
        )
        (f0,) = classifier_statistics(k).fields
        assert f0.prefix_fraction == 0.5
        assert f0.range_fraction == 0.5

    def test_separation_fraction(self):
        schema = uniform_schema(2, 5)
        k = Classifier(
            schema,
            [
                make_rule([(0, 3), (0, 31)]),
                make_rule([(10, 13), (0, 31)]),
            ],
        )
        stats = classifier_statistics(k)
        assert stats.fields[0].separation_fraction == 1.0
        assert stats.fields[1].separation_fraction == 0.0

    def test_distinct_intervals(self):
        schema = uniform_schema(1, 4)
        k = Classifier(
            schema,
            [make_rule([(1, 2)]), make_rule([(1, 2)]), make_rule([(3, 4)])],
        )
        assert classifier_statistics(k).fields[0].distinct_intervals == 2


class TestWholeClassifier:
    def test_most_separating_fields(self):
        k = generate_classifier("acl", 200, seed=3)
        stats = classifier_statistics(k)
        top = stats.most_separating_fields(2)
        # ACLs separate overwhelmingly on addresses / ports, never flags.
        assert "flags" not in top

    def test_specificity_positive(self):
        k = generate_classifier("cisco", 100, seed=4)
        stats = classifier_statistics(k)
        assert 0 < stats.mean_specificity_bits <= stats.total_width

    def test_prefix_length_histogram(self):
        k = generate_classifier("acl", 300, seed=5)
        stats = classifier_statistics(k)
        histogram = stats.prefix_length_histogram["src_ip"]
        assert sum(histogram.values()) <= 300
        assert all(0 <= length <= 32 for length in histogram)

    def test_empty_classifier(self):
        schema = uniform_schema(2, 4)
        stats = classifier_statistics(Classifier(schema, []))
        assert stats.num_rules == 0
        assert stats.mean_specificity_bits == 0.0

    def test_generator_styles_have_expected_shape(self):
        """The acl style must be more specific than fw (its whole point)."""
        acl = classifier_statistics(generate_classifier("acl", 400, seed=6))
        fw = classifier_statistics(generate_classifier("fw", 400, seed=6))
        assert acl.mean_specificity_bits > fw.mean_specificity_bits
