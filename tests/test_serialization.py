"""Tests for the JSON interchange format (Section 7.1 artifacts)."""

import io
import json

import pytest

from repro.saxpac.config import profile_classifier
from repro.saxpac.serialization import (
    classifier_from_dict,
    classifier_to_dict,
    load_classifier,
    profile_from_dict,
    profile_to_dict,
    save_classifier,
)
from repro.workloads.generator import generate_classifier
from conftest import random_classifier


class TestClassifierRoundTrip:
    def test_roundtrip_preserves_rules(self, example3_classifier):
        data = classifier_to_dict(example3_classifier)
        restored = classifier_from_dict(data)
        assert len(restored) == len(example3_classifier)
        for a, b in zip(example3_classifier.rules, restored.rules):
            assert a.intervals == b.intervals
            assert a.action == b.action
            assert a.name == b.name

    def test_roundtrip_preserves_schema(self):
        k = generate_classifier("acl", 30, seed=1)
        restored = classifier_from_dict(classifier_to_dict(k))
        assert restored.schema == k.schema

    def test_roundtrip_preserves_semantics(self, rng):
        k = random_classifier(rng, num_rules=20)
        restored = classifier_from_dict(classifier_to_dict(k))
        for header in k.sample_headers(150, rng):
            assert restored.match(header).index == k.match(header).index

    def test_document_is_json_serializable(self, example3_classifier):
        text = json.dumps(classifier_to_dict(example3_classifier))
        assert "saxpac-classifier" in text

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            classifier_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, example3_classifier):
        data = classifier_to_dict(example3_classifier)
        data["version"] = 99
        with pytest.raises(ValueError):
            classifier_from_dict(data)


class TestProfileRoundTrip:
    def test_profile_roundtrip(self, example3_classifier):
        profile = profile_classifier(example3_classifier, betas=(1, 2))
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored.num_rules == profile.num_rules
        assert (
            restored.max_order_independent == profile.max_order_independent
        )
        assert restored.fsm_on_independent == profile.fsm_on_independent
        assert (
            restored.min_groups_two_fields == profile.min_groups_two_fields
        )
        assert set(restored.group_assignments) == {1, 2}
        for beta in (1, 2):
            assert (
                restored.group_assignments[beta]
                == profile.group_assignments[beta]
            )

    def test_empty_profile_fsm(self):
        from repro.core import Classifier, uniform_schema

        k = Classifier(uniform_schema(2, 4), [])
        profile = profile_classifier(k)
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored.fsm_on_independent is None


class TestFileHelpers:
    def test_save_load_path(self, tmp_path, example3_classifier):
        path = str(tmp_path / "classifier.json")
        profile = profile_classifier(example3_classifier)
        save_classifier(example3_classifier, path, profile)
        restored, restored_profile = load_classifier(path)
        assert len(restored) == len(example3_classifier)
        assert restored_profile is not None
        assert restored_profile.num_rules == profile.num_rules

    def test_save_load_file_object(self, example3_classifier):
        buffer = io.StringIO()
        save_classifier(example3_classifier, buffer)
        buffer.seek(0)
        restored, profile = load_classifier(buffer)
        assert profile is None
        assert len(restored) == len(example3_classifier)
