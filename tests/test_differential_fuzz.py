"""Differential fuzzing: the hybrid engine vs the linear reference.

Theorems 1-2 make :class:`SaxPacEngine` *equivalent* to the first-match
linear scan, never an approximation — so any disagreement is a bug, and
the cheapest place to find one is on adversarial **corner-point**
packets: headers whose field values sit exactly on some rule's interval
endpoints (or one past them), where off-by-one errors in containment,
projection and TCAM expansion live.

Three axes of coverage:

* random small classifiers with arbitrary overlap (hypothesis-built);
* ClassBench-style acl/fw/ipc classifiers from the workload generator;
* engines that have been through :meth:`SaxPacEngine.rebuild` (the
  incremental path the hot-swap runtime exercises);
* every registered lookup backend, forced engine-wide — including after
  a rebuild — since backends promise byte-identical decisions;
* the shared-memory shard transport (``shard_mode=shm``), whose workers
  classify slab views in other processes yet must answer identically.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.classifier import Classifier
from repro.runtime.shard import ShardedRuntime
from repro.saxpac.config import EngineConfig
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.generator import generate_classifier
from strategies import classifiers, corner_headers_for

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_HEADERS_PER_EXAMPLE = 12

STYLES = ("acl", "fw", "ipc")

BACKENDS = ("auto", "interval", "segment", "linear", "learned")


def _assert_agrees(engine, reference: Classifier, headers) -> None:
    """Single-packet and batched answers must equal the linear scan."""
    want = [reference.match(h).index for h in headers]
    got_single = [engine.match(h).index for h in headers]
    assert got_single == want
    got_batch = [r.index for r in engine.match_batch(headers)]
    assert got_batch == want


class TestRandomClassifiers:
    @given(st.data())
    @_SETTINGS
    def test_corner_points_agree(self, data):
        k = data.draw(classifiers(max_rules=16))
        engine = SaxPacEngine(k)
        headers = [
            data.draw(corner_headers_for(k))
            for _ in range(_HEADERS_PER_EXAMPLE)
        ]
        _assert_agrees(engine, k, headers)


# Built once per module: the generator and the engine build dominate the
# runtime, the hypothesis examples only pick corner headers.
@pytest.fixture(scope="module", params=STYLES)
def styled_engine(request):
    classifier = generate_classifier(request.param, 90, seed=97)
    return classifier, SaxPacEngine(classifier)


@pytest.fixture(scope="module", params=STYLES)
def rebuilt_engine(request):
    """An engine that served a truncated rule set, then went through
    ``rebuild`` to the full one — the hot-swap incremental path."""
    classifier = generate_classifier(request.param, 90, seed=131)
    truncated = Classifier(classifier.schema, classifier.body[:60])
    engine = SaxPacEngine(truncated).rebuild(classifier)
    return classifier, engine


class TestClassBenchStyles:
    @given(st.data())
    @_SETTINGS
    def test_corner_points_agree(self, styled_engine, data):
        classifier, engine = styled_engine
        headers = [
            data.draw(corner_headers_for(classifier))
            for _ in range(_HEADERS_PER_EXAMPLE)
        ]
        _assert_agrees(engine, classifier, headers)


@pytest.fixture(scope="module", params=BACKENDS)
def backend_engine(request):
    """An engine with one lookup backend forced on every group."""
    classifier = generate_classifier("acl", 120, seed=211)
    config = EngineConfig(lookup_backend=request.param)
    return classifier, SaxPacEngine(classifier, config)


@pytest.fixture(scope="module", params=BACKENDS)
def backend_rebuilt_engine(request):
    """Per-backend engine that went through the incremental rebuild
    path (reindexed/tombstoned group views + delta groups)."""
    classifier = generate_classifier("fw", 120, seed=223)
    truncated = Classifier(classifier.schema, classifier.body[:80])
    config = EngineConfig(lookup_backend=request.param)
    engine = SaxPacEngine(truncated, config).rebuild(classifier)
    return classifier, engine


class TestPerBackend:
    @given(st.data())
    @_SETTINGS
    def test_corner_points_agree(self, backend_engine, data):
        classifier, engine = backend_engine
        headers = [
            data.draw(corner_headers_for(classifier))
            for _ in range(_HEADERS_PER_EXAMPLE)
        ]
        _assert_agrees(engine, classifier, headers)

    @given(st.data())
    @_SETTINGS
    def test_corner_points_agree_after_rebuild(
        self, backend_rebuilt_engine, data
    ):
        classifier, engine = backend_rebuilt_engine
        headers = [
            data.draw(corner_headers_for(classifier))
            for _ in range(_HEADERS_PER_EXAMPLE)
        ]
        _assert_agrees(engine, classifier, headers)


@pytest.fixture(scope="module")
def shm_runtime():
    """The shared-memory shard transport over a ClassBench-style
    classifier; worker processes classify slab views in place, so any
    disagreement with the linear scan is a transport bug, not float
    noise."""
    classifier = generate_classifier("acl", 90, seed=97)
    runtime = ShardedRuntime(
        classifier=classifier, num_shards=2, mode="shm"
    )
    yield classifier, runtime
    runtime.close()


class TestShmShards:
    @given(st.data())
    @_SETTINGS
    def test_corner_points_agree(self, shm_runtime, data):
        classifier, runtime = shm_runtime
        headers = [
            data.draw(corner_headers_for(classifier))
            for _ in range(_HEADERS_PER_EXAMPLE)
        ]
        want = [classifier.match(h).index for h in headers]
        assert list(runtime.match_indices(headers)) == want


class TestPostRebuild:
    @given(st.data())
    @_SETTINGS
    def test_corner_points_agree_after_rebuild(self, rebuilt_engine, data):
        classifier, engine = rebuilt_engine
        headers = [
            data.draw(corner_headers_for(classifier))
            for _ in range(_HEADERS_PER_EXAMPLE)
        ]
        _assert_agrees(engine, classifier, headers)

    @given(st.data())
    @_SETTINGS
    def test_rebuild_of_random_classifier(self, data):
        before = data.draw(classifiers(max_rules=12))
        after = data.draw(classifiers(max_rules=12))
        # Rebuild across schemas is undefined; pin both to one schema.
        after = Classifier(before.schema, after.body)
        engine = SaxPacEngine(before).rebuild(after)
        headers = [
            data.draw(corner_headers_for(after))
            for _ in range(_HEADERS_PER_EXAMPLE)
        ]
        _assert_agrees(engine, after, headers)
