"""Smoke + invariant tests for the experiment drivers on a tiny suite."""

import pytest

from repro.bench.experiments import (
    render_figure1,
    render_figure6,
    render_table1,
    render_table2,
    render_table3,
    run_figure1,
    run_figure6,
    run_table1,
    run_table2,
    run_table3,
)
from repro.workloads.generator import benchmark_suite


@pytest.fixture(scope="module")
def tiny_suite():
    full = benchmark_suite(classbench_rules=120, seed=5)
    # One classifier per style keeps this fast while covering the code.
    return {
        name: full[name] for name in ("acl1", "fw1", "ipc1", "cisco3")
    }


class TestTable1:
    def test_rows_and_invariants(self, tiny_suite):
        rows = run_table1(tiny_suite)
        assert len(rows) == len(tiny_suite)
        for row in rows:
            # Independent subset is large but bounded by the rule count.
            assert 0 < row.independent_rules <= row.rules
            # SRGE never exceeds binary.
            assert row.orig_srge_kb <= row.orig_binary_kb
            assert row.ext_srge_kb <= row.ext_binary_kb
            # Theorem 2 reduction never costs more than the original.
            assert row.red_binary_kb <= row.orig_binary_kb + 1e-9
            # Theorem 1 keeps the extended classifier far below the
            # regular extended encoding.
            assert row.ext_red_binary_kb < row.ext_binary_kb
            # Reduced widths are subsets of the full width.
            assert row.red_width <= row.orig_width
            assert row.ext_width == row.orig_width + 32

    def test_render(self, tiny_suite):
        text = render_table1(run_table1(tiny_suite))
        assert "Table 1" in text
        assert "acl1" in text


class TestFigure1:
    def test_growth_shape(self, tiny_suite):
        points = run_figure1(tiny_suite, field_counts=(0, 2))
        by_panel = {}
        for p in points:
            by_panel.setdefault(p.panel, []).append(p)
        for panel_points in by_panel.values():
            panel_points.sort(key=lambda p: p.extra_fields)
            # Regular space explodes with added range fields...
            assert (
                panel_points[-1].regular_binary_kb
                > 10 * panel_points[0].regular_binary_kb
            )
            # ...and grows strictly faster than the Theorem 1 scheme.
            regular_growth = (
                panel_points[-1].regular_binary_kb
                / panel_points[0].regular_binary_kb
            )
            reduced_growth = (
                panel_points[-1].theorem1_binary_kb
                / panel_points[0].theorem1_binary_kb
            )
            assert reduced_growth < regular_growth

    def test_render(self, tiny_suite):
        text = render_figure1(run_figure1(tiny_suite, field_counts=(0, 2)))
        assert "Figure 1" in text


class TestTable2:
    def test_invariants(self, tiny_suite):
        rows = run_table2(tiny_suite)
        for row in rows:
            # Expansion cannot shrink the rule count below the OI subset.
            assert row.binary_terms >= row.independent_rules
            assert row.srge_terms <= row.binary_terms
            # Minimization never grows the term count.
            assert row.mindnf_binary_terms <= row.binary_terms
            assert row.mindnf_srge_terms <= row.srge_terms
            # Width chain: reduced <= pure <= total.
            assert (
                row.mindnf_binary_red_width
                <= row.mindnf_binary_width
                <= row.width
            )
            # The paper's headline: FSM beats MinDNF on width.
            assert row.fsm_width <= row.mindnf_binary_red_width

    def test_render(self, tiny_suite):
        assert "Table 2" in render_table2(run_table2(tiny_suite))


class TestTable3:
    def test_invariants(self, tiny_suite):
        rows = run_table3(tiny_suite)
        for row in rows:
            assert 0 < row.kmrc_size <= row.rules
            assert row.fsm_fields  # non-empty field subset
            # MGR restricted to the k-MRC subset never needs more groups.
            assert row.mgr1_on_kmrc.num_groups <= row.mgr1.num_groups
            assert row.mgr2_on_kmrc.num_groups <= row.mgr2.num_groups
            # Coverage columns are monotone.
            assert row.mgr1.groups_for_95 <= row.mgr1.groups_for_99
            assert row.mgr1.groups_for_99 <= row.mgr1.num_groups
            # Whole-classifier MGR covers everything (no beta).
            assert row.mgr1.covered_rules == row.rules
            assert row.mgr2.covered_rules == row.rules

    def test_render(self, tiny_suite):
        assert "Table 3" in render_table3(run_table3(tiny_suite))


class TestFigure6:
    def test_shape(self, tiny_suite):
        points = run_figure6(
            tiny_suite, field_widths=(1, 4, 16), rule_cap=80
        )
        by_panel = {}
        for p in points:
            by_panel.setdefault(p.panel, []).append(p)
        for panel_points in by_panel.values():
            panel_points.sort(key=lambda p: p.virtual_field_width)
            widths = [p.fsm_width for p in panel_points]
            # Finer resolution never needs more bits (the Figure 6 trend).
            assert widths == sorted(widths)
            for p in panel_points:
                assert p.fsm_width <= p.original_width
                assert p.mindnf_width <= p.original_width

    def test_render(self, tiny_suite):
        text = render_figure6(run_figure6(tiny_suite, field_widths=(4,)))
        assert "Figure 6" in text
