"""Tests for truth-table MinDNF (Quine-McCluskey + greedy cover)."""

import itertools
import random

import pytest

from repro.boolean.mindnf import mindnf_greedy, minterms_of, prime_implicants
from repro.boolean.ternary import word_from_pattern


def _on_set(terms, width):
    return {v for v in range(1 << width) if any(t.matches(v) for t in terms)}


class TestMinterms:
    def test_minterms_of_single_term(self):
        terms = [word_from_pattern("1*0")]
        assert minterms_of(terms, 3) == {0b100, 0b110}

    def test_minterms_of_overlapping_terms(self):
        terms = [word_from_pattern("1*"), word_from_pattern("*1")]
        assert minterms_of(terms, 2) == {0b01, 0b10, 0b11}

    def test_width_guard(self):
        with pytest.raises(ValueError):
            minterms_of([], 25)


class TestPrimeImplicants:
    def test_classic_example(self):
        # f = x'y + xy = y  (single prime implicant *1).
        minterms = {0b01, 0b11}
        primes = prime_implicants(minterms, 2)
        assert [p.pattern() for p in primes] == ["*1"]

    def test_primes_cover_exactly_the_on_set(self):
        rng = random.Random(0)
        for _ in range(15):
            width = rng.randint(1, 6)
            on = {
                v
                for v in range(1 << width)
                if rng.random() < 0.4
            }
            if not on:
                continue
            primes = prime_implicants(on, width)
            assert _on_set(primes, width) == on

    def test_primes_are_maximal(self):
        # Growing any prime implicant (removing a literal) must leave the
        # ON-set.
        rng = random.Random(1)
        for _ in range(10):
            width = 4
            on = {v for v in range(16) if rng.random() < 0.5}
            if not on:
                continue
            primes = prime_implicants(on, width)
            for p in primes:
                for bit in range(width):
                    if not (p.care >> bit) & 1:
                        continue
                    from repro.boolean.ternary import TernaryWord

                    widened = TernaryWord(
                        p.value & ~(1 << bit), p.care & ~(1 << bit), width
                    )
                    covered = {
                        v for v in range(1 << width) if widened.matches(v)
                    }
                    assert not covered <= on, "prime implicant was not maximal"


class TestGreedyMinDnf:
    def test_covers_exactly(self):
        rng = random.Random(2)
        for _ in range(15):
            width = rng.randint(1, 6)
            on = {v for v in range(1 << width) if rng.random() < 0.35}
            chosen = mindnf_greedy(on, width)
            assert _on_set(chosen, width) == on

    def test_empty_function(self):
        assert mindnf_greedy(set(), 4) == []

    def test_constant_true(self):
        chosen = mindnf_greedy(set(range(16)), 4)
        assert len(chosen) == 1
        assert chosen[0].pattern() == "****"

    def test_example7_reduces_to_one_term(self):
        # Example 7's function is f = x2 (bit index 3 of 5, MSB first).
        terms = [
            word_from_pattern(p)
            for p in ("01***", "*10**", "*11*0", "*11*1")
        ]
        on = minterms_of(terms, 5)
        chosen = mindnf_greedy(on, 5)
        assert len(chosen) == 1
        assert chosen[0].pattern() == "*1***"

    def test_greedy_not_larger_than_input_terms(self):
        rng = random.Random(3)
        for _ in range(10):
            width = 5
            patterns = [
                "".join(rng.choice("01*") for _ in range(width))
                for _ in range(6)
            ]
            terms = [word_from_pattern(p) for p in patterns]
            on = minterms_of(terms, width)
            chosen = mindnf_greedy(on, width)
            assert len(chosen) <= len(set(terms))

    def test_optimal_on_small_functions(self):
        # Exhaustive check against brute-force minimal DNF size for 3-bit
        # functions (greedy achieves the optimum on these tiny inputs
        # except for rare pathological covers; allow +1 slack).
        width = 3
        all_words = [
            word_from_pattern("".join(p))
            for p in itertools.product("01*", repeat=width)
        ]
        rng = random.Random(4)
        for _ in range(20):
            on = {v for v in range(8) if rng.random() < 0.5}
            if not on:
                continue
            chosen = mindnf_greedy(on, width)
            best = None
            for size in range(1, len(on) + 1):
                for combo in itertools.combinations(all_words, size):
                    if _on_set(list(combo), width) == on:
                        best = size
                        break
                if best:
                    break
            assert len(chosen) <= best + 1
