"""Tests for redundancy removal."""

import random


from repro.analysis.redundancy import (
    downward_redundant_rules,
    remove_redundant,
    shadowed_rules,
)
from repro.core import Classifier, DENY, PERMIT, make_rule, uniform_schema
from conftest import random_classifier


class TestShadowed:
    def test_single_cover_detected(self):
        schema = uniform_schema(2, 5)
        k = Classifier(
            schema,
            [
                make_rule([(0, 10), (0, 10)], PERMIT),
                make_rule([(2, 5), (3, 7)], DENY),  # inside the first
            ],
        )
        assert shadowed_rules(k) == (1,)

    def test_union_cover_on_one_field(self):
        schema = uniform_schema(2, 5)
        k = Classifier(
            schema,
            [
                make_rule([(0, 7), (4, 6)], PERMIT),
                make_rule([(8, 15), (4, 6)], PERMIT),
                make_rule([(3, 12), (4, 6)], DENY),  # covered by the union
            ],
        )
        assert shadowed_rules(k) == (2,)

    def test_partial_overlap_not_shadowed(self):
        schema = uniform_schema(2, 5)
        k = Classifier(
            schema,
            [
                make_rule([(0, 10), (0, 10)], PERMIT),
                make_rule([(5, 15), (3, 7)], DENY),
            ],
        )
        assert shadowed_rules(k) == ()

    def test_no_false_positives_on_random(self, rng):
        # Every rule reported shadowed must indeed never be the winner.
        for seed in range(5):
            k = random_classifier(random.Random(seed), num_rules=20)
            dead = set(shadowed_rules(k))
            if not dead:
                continue
            for header in k.sample_headers(300, rng):
                assert k.match(header).index not in dead


class TestDownward:
    def test_same_action_fallthrough(self):
        schema = uniform_schema(1, 5)
        k = Classifier(
            schema,
            [
                make_rule([(2, 5)], DENY),
                make_rule([(0, 10)], DENY),  # same action, covers above
            ],
        )
        assert downward_redundant_rules(k) == (0,)

    def test_different_action_kept(self):
        schema = uniform_schema(1, 5)
        k = Classifier(
            schema,
            [
                make_rule([(2, 5)], PERMIT),
                make_rule([(0, 10)], DENY),
            ],
        )
        assert downward_redundant_rules(k) == ()

    def test_interposed_rule_blocks(self):
        schema = uniform_schema(1, 6)
        k = Classifier(
            schema,
            [
                make_rule([(2, 5)], DENY),
                make_rule([(4, 8)], PERMIT),  # overlaps, different action
                make_rule([(0, 10)], DENY),
            ],
        )
        assert downward_redundant_rules(k) == ()

    def test_chain_collapses(self):
        schema = uniform_schema(1, 6)
        k = Classifier(
            schema,
            [
                make_rule([(3, 4)], DENY),
                make_rule([(2, 6)], DENY),
                make_rule([(0, 10)], DENY),
            ],
        )
        assert set(downward_redundant_rules(k)) == {0, 1}

    def test_transmit_body_rule_folds_into_catch_all(self):
        from repro.core import TRANSMIT

        schema = uniform_schema(1, 5)
        k = Classifier(schema, [make_rule([(2, 5)], TRANSMIT)])
        # Falls through to the catch-all, same TRANSMIT action.
        assert downward_redundant_rules(k) == (0,)


class TestRemoveRedundant:
    def test_semantics_preserved_random(self):
        for seed in range(10):
            rng = random.Random(seed)
            k = random_classifier(rng, num_rules=25)
            cleaned, removed = remove_redundant(k)
            assert len(cleaned.body) + len(removed) == len(k.body)
            for header in k.sample_headers(200, rng):
                assert cleaned.classify(header) == k.classify(header)

    def test_fixpoint_removes_chains(self):
        schema = uniform_schema(1, 6)
        k = Classifier(
            schema,
            [
                make_rule([(3, 3)], DENY),
                make_rule([(3, 4)], DENY),
                make_rule([(2, 6)], DENY),
            ],
        )
        cleaned, removed = remove_redundant(k)
        assert len(cleaned.body) == 1
        assert set(removed) == {0, 1}

    def test_reported_indices_refer_to_original(self):
        schema = uniform_schema(1, 6)
        k = Classifier(
            schema,
            [
                make_rule([(0, 10)], PERMIT),
                make_rule([(2, 5)], DENY),   # shadowed by rule 0
                make_rule([(20, 30)], DENY),
            ],
        )
        cleaned, removed = remove_redundant(k)
        assert removed == (1,)
        assert [r.intervals for r in cleaned.body] == [
            k.body[0].intervals,
            k.body[2].intervals,
        ]

    def test_nothing_to_remove(self):
        schema = uniform_schema(1, 6)
        k = Classifier(
            schema,
            [make_rule([(0, 3)], DENY), make_rule([(10, 12)], PERMIT)],
        )
        cleaned, removed = remove_redundant(k)
        assert removed == ()
        assert len(cleaned.body) == 2

    def test_benchmark_workloads_lose_little(self):
        """Generated workloads are deduplicated, so redundancy should be
        rare — a sanity property of the generator, too."""
        from repro.workloads.generator import generate_classifier

        k = generate_classifier("acl", 300, seed=5)
        cleaned, removed = remove_redundant(k)
        assert len(removed) <= len(k.body) * 0.2
        rng = random.Random(1)
        for header in k.sample_headers(200, rng):
            assert cleaned.classify(header) == k.classify(header)
