"""Tests for range encodings: binary expansion, SRGE, rule expansion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Interval, make_rule, uniform_schema
from repro.tcam.encoding import (
    BinaryRangeEncoder,
    SrgeRangeEncoder,
    binary_expand,
    expand_rule,
    gray_decode,
    gray_encode,
    rule_entry_count,
    srge_expand,
)


class TestGrayCode:
    def test_known_values(self):
        assert [gray_encode(v) for v in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    @given(st.integers(0, 1 << 32))
    def test_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(0, (1 << 16) - 2))
    def test_adjacent_values_differ_in_one_bit(self, value):
        diff = gray_encode(value) ^ gray_encode(value + 1)
        assert diff and diff & (diff - 1) == 0


def _covered_values(entries, width, transform=lambda v: v):
    return {
        v for v in range(1 << width) if any(e.matches(transform(v)) for e in entries)
    }


class TestBinaryExpand:
    @given(st.integers(1, 10), st.data())
    def test_exact_cover(self, width, data):
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        entries = binary_expand(Interval(low, high), width)
        assert _covered_values(entries, width) == set(range(low, high + 1))

    @given(st.integers(2, 16), st.data())
    def test_worst_case_bound(self, width, data):
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        entries = binary_expand(Interval(low, high), width)
        assert len(entries) <= 2 * width - 2

    def test_prefix_needs_one_entry(self):
        assert len(binary_expand(Interval(8, 15), 4)) == 1

    def test_worst_case_achieved(self):
        # [1, 2^W-2] hits the 2W-2 bound exactly.
        assert len(binary_expand(Interval(1, 14), 4)) == 6


class TestSrgeExpand:
    @given(st.integers(1, 10), st.data())
    @settings(max_examples=200)
    def test_exact_cover_in_gray_space(self, width, data):
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        entries = srge_expand(Interval(low, high), width)
        covered = _covered_values(entries, width, gray_encode)
        assert covered == set(range(low, high + 1))

    @given(st.integers(1, 16), st.data())
    def test_never_worse_than_binary(self, width, data):
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        interval = Interval(low, high)
        assert len(srge_expand(interval, width)) <= len(
            binary_expand(interval, width)
        )

    @given(st.integers(4, 16), st.data())
    def test_paper_worst_case_bound(self, width, data):
        # [3]'s bound: at most 2W - 4 entries.  It genuinely starts at
        # W = 4: for W = 3, the range [0, 6] covers 7 of 8 Gray points and
        # no two ternary words can cover 7 points, so 3 > 2W - 4 entries
        # are unavoidable.
        max_value = (1 << width) - 1
        low = data.draw(st.integers(0, max_value))
        high = data.draw(st.integers(low, max_value))
        entries = srge_expand(Interval(low, high), width)
        assert len(entries) <= 2 * width - 4

    @pytest.mark.slow
    def test_worst_case_bound_exhaustive_small_widths(self):
        # Deterministic version of the bound check: the true maximum over
        # every range at widths 4-9 stays within 2W - 4 (and W = 3 tops
        # out at 3).
        for width in range(3, 10):
            top = (1 << width) - 1
            worst = max(
                len(srge_expand(Interval(lo, hi), width))
                for lo in range(top + 1)
                for hi in range(lo, top + 1)
            )
            if width == 3:
                assert worst == 3
            else:
                assert worst <= 2 * width - 4

    def test_symmetric_range_single_entry(self):
        # [1, 2] on 2 bits is one Gray entry (*1) vs two binary prefixes.
        entries = srge_expand(Interval(1, 2), 2)
        assert len(entries) == 1
        assert entries[0].pattern() == "*1"

    def test_full_range(self):
        entries = srge_expand(Interval(0, 15), 4)
        assert len(entries) == 1
        assert entries[0].pattern() == "****"

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            srge_expand(Interval(0, 16), 4)


class TestEncoders:
    def test_binary_encoder_identity_keys(self):
        enc = BinaryRangeEncoder()
        assert enc.encode_value(37, 8) == 37
        assert enc.name == "binary"

    def test_srge_encoder_gray_keys(self):
        enc = SrgeRangeEncoder()
        assert enc.encode_value(2, 8) == 3
        assert enc.name == "srge"

    def test_binary_count_matches_expand(self):
        enc = BinaryRangeEncoder()
        iv = Interval(1, 14)
        assert enc.count(iv, 4) == len(enc.expand(iv, 4))

    def test_example2_paper_counts(self, example2_classifier):
        # Example 2: binary needs 42 + 28 + 50 = 120 entries, SRGE
        # 24 + 8 + 32 = 64.
        schema = example2_classifier.schema
        binary = [
            rule_entry_count(r, schema, BinaryRangeEncoder())
            for r in example2_classifier.body
        ]
        srge = [
            rule_entry_count(r, schema, SrgeRangeEncoder())
            for r in example2_classifier.body
        ]
        assert binary == [42, 28, 50]
        assert srge == [24, 8, 32]


class TestExpandRule:
    def test_cross_product_count(self):
        schema = uniform_schema(2, 4)
        rule = make_rule([(1, 14), (0, 15)])
        entries = expand_rule(rule, schema, BinaryRangeEncoder())
        assert len(entries) == 6 * 1
        assert len(entries) == rule_entry_count(
            rule, schema, BinaryRangeEncoder()
        )

    def test_field_subset_expansion(self):
        schema = uniform_schema(3, 4)
        rule = make_rule([(1, 14), (1, 14), (0, 15)])
        entries = expand_rule(rule, schema, BinaryRangeEncoder(), fields=[2])
        assert len(entries) == 1
        assert entries[0].width == 4

    @given(st.data())
    @settings(max_examples=60)
    def test_expanded_entries_match_iff_rule_matches(self, data):
        width = 5
        schema = uniform_schema(2, width)
        max_value = (1 << width) - 1
        ranges = []
        for _ in range(2):
            lo = data.draw(st.integers(0, max_value))
            hi = data.draw(st.integers(lo, max_value))
            ranges.append((lo, hi))
        rule = make_rule(ranges)
        for encoder in (BinaryRangeEncoder(), SrgeRangeEncoder()):
            entries = expand_rule(rule, schema, encoder)
            header = tuple(
                data.draw(st.integers(0, max_value)) for _ in range(2)
            )
            key = 0
            for v in header:
                key = (key << width) | encoder.encode_value(v, width)
            hit = any(e.matches(key) for e in entries)
            assert hit == rule.matches(header)
