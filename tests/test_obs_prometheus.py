"""Tests for repro.obs.prometheus: exposition format and round-trips."""

import pytest

from repro.obs.prometheus import (
    parse_exposition,
    render_prometheus,
    sanitize_metric_name,
)
from repro.runtime.telemetry import HistogramStats, Telemetry


def _snapshot(**observations):
    tel = Telemetry()
    tel.incr("engine.lookups", 42)
    tel.incr("shard.chunks", 7)
    for stage, seconds in observations.items():
        for value in seconds:
            tel.observe(stage, value)
    return tel.snapshot()


class TestNames:
    def test_counter_name(self):
        assert (
            sanitize_metric_name("engine.group_probes", "_total")
            == "saxpac_engine_group_probes_total"
        )

    def test_strips_illegal_characters(self):
        name = sanitize_metric_name("engine.match-batch (v2)")
        assert name == "saxpac_engine_match_batch_v2"

    def test_collapses_runs_of_underscores(self):
        assert sanitize_metric_name("a..b") == "saxpac_a_b"


class TestCounters:
    def test_counter_lines_with_help_and_type(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE saxpac_engine_lookups_total counter" in text
        assert "saxpac_engine_lookups_total 42" in text
        assert "saxpac_shard_chunks_total 7" in text

    def test_labels_ride_on_every_sample(self):
        text = render_prometheus(_snapshot(), labels={"instance": "s0"})
        assert 'saxpac_engine_lookups_total{instance="s0"} 42' in text

    def test_label_values_escaped(self):
        text = render_prometheus(
            _snapshot(), labels={"path": 'a"b\\c'}
        )
        assert '{path="a\\"b\\\\c"}' in text

    def test_gauges_rendered(self):
        text = render_prometheus(
            _snapshot(), extra_gauges={"runtime.generation": 3.0}
        )
        assert "# TYPE saxpac_runtime_generation gauge" in text
        assert "saxpac_runtime_generation 3" in text


class TestHistograms:
    def test_buckets_cumulative_and_monotonic(self):
        # Observations across several log2 buckets.
        snap = _snapshot(**{"engine.match": [1e-6, 3e-6, 3e-6, 1e-4, 0.01]})
        metrics = parse_exposition(render_prometheus(snap))
        buckets = metrics["saxpac_engine_match_latency_seconds_bucket"]
        # Sort bucket samples by their le bound (with +Inf last).
        def bound(label):
            le = label.split('le="', 1)[1].rstrip('"}')
            return float("inf") if le == "+Inf" else float(le)

        ordered = [buckets[k] for k in sorted(buckets, key=bound)]
        assert ordered == sorted(ordered), "cumulative buckets must be monotonic"
        assert ordered[-1] == 5  # +Inf bucket counts everything

    def test_inf_bucket_equals_count(self):
        snap = _snapshot(**{"s": [0.001] * 9})
        metrics = parse_exposition(render_prometheus(snap))
        buckets = metrics["saxpac_s_latency_seconds_bucket"]
        inf = [v for k, v in buckets.items() if 'le="+Inf"' in k]
        assert inf == [9.0]
        assert metrics["saxpac_s_latency_seconds_count"][""] == 9.0

    def test_count_and_sum_consistent_with_snapshot(self):
        values = [0.002, 0.004, 0.032]
        snap = _snapshot(**{"s": values})
        metrics = parse_exposition(render_prometheus(snap))
        assert metrics["saxpac_s_latency_seconds_count"][""] == len(values)
        assert metrics["saxpac_s_latency_seconds_sum"][""] == pytest.approx(
            sum(values)
        )

    def test_bucket_bounds_follow_log2_scheme(self):
        # One 3us observation lands in bucket 2 ([2us, 4us)); every
        # rendered bound at or past 4e-06 must already include it.
        snap = _snapshot(**{"s": [3e-6]})
        text = render_prometheus(snap)
        for line in text.splitlines():
            if "_bucket" not in line or "+Inf" in line:
                continue
            le = float(line.split('le="')[1].split('"')[0])
            value = float(line.rsplit(" ", 1)[1])
            assert value == (1.0 if le >= 4e-6 else 0.0)

    def test_bucket_upper_bound_helper(self):
        assert HistogramStats.bucket_upper_bound(0) == 1e-6
        assert HistogramStats.bucket_upper_bound(10) == 1024e-6

    def test_histogram_type_line(self):
        text = render_prometheus(_snapshot(**{"s": [0.001]}))
        assert "# TYPE saxpac_s_latency_seconds histogram" in text


class TestRoundTrip:
    def test_full_round_trip_counters(self):
        snap = _snapshot(**{"engine.match": [0.001, 0.002]})
        metrics = parse_exposition(render_prometheus(snap))
        assert metrics["saxpac_engine_lookups_total"][""] == 42.0
        assert metrics["saxpac_shard_chunks_total"][""] == 7.0

    def test_exposition_ends_with_newline(self):
        assert render_prometheus(_snapshot()).endswith("\n")

    def test_empty_snapshot_renders(self):
        text = render_prometheus(Telemetry().snapshot())
        assert isinstance(text, str)


class TestHelpCoverage:
    """Every exported family must carry HELP/TYPE, and the serving-path
    families must carry *curated* (non-generic) HELP — dashboards alert
    on them, so the exposition has to say what each one means."""

    @staticmethod
    def _families(text):
        """{family: help_text} from HELP lines, plus the set of sample
        family names (histogram suffixes folded onto their family)."""
        helped = {}
        typed = set()
        samples = set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                _, _, rest = line.partition("# HELP ")
                name, _, help_text = rest.partition(" ")
                helped[name] = help_text
            elif line.startswith("# TYPE "):
                typed.add(line.split()[2])
            elif line and not line.startswith("#"):
                name = line.split("{", 1)[0].split(" ", 1)[0]
                for suffix in ("_bucket", "_count", "_sum"):
                    if name.endswith(suffix):
                        name = name[: -len(suffix)]
                        break
                samples.add(name)
        return helped, typed, samples

    def _full_exposition(self):
        tel = Telemetry()
        for counter in (
            "net.requests",
            "net.lookups",
            "net.shed",
            "net.coalesced_requests",
            "lookup.backend.interval.probes",
            "lookup.backend.learned.candidates",
            "engine.group_probes",
        ):
            tel.incr(counter, 3)
        tel.observe("net.request", 0.002)
        stage_stats = {
            "lookup": {
                "count": 1,
                "sum_s": 1e-3,
                "buckets": tuple(
                    1 if i == 10 else 0 for i in range(40)
                ),
                "exemplars": {10: 0xBEEF},
            }
        }
        gauges = {
            "net.inflight": 2.0,
            "slo.serve.availability_burn_5m": 0.5,
            "slo.serve.fast_burn": 0.0,
        }
        return render_prometheus(
            tel.snapshot(), extra_gauges=gauges, stage_stats=stage_stats
        )

    def test_every_family_has_help_and_type(self):
        helped, typed, samples = self._families(self._full_exposition())
        assert samples  # the exposition is not empty
        missing_help = samples - set(helped)
        missing_type = samples - typed
        assert not missing_help, f"families without HELP: {missing_help}"
        assert not missing_type, f"families without TYPE: {missing_type}"

    def test_serving_families_have_curated_help(self):
        helped, _, _ = self._families(self._full_exposition())
        curated = {
            "saxpac_net_requests_total",
            "saxpac_net_lookups_total",
            "saxpac_net_shed_total",
            "saxpac_net_coalesced_requests_total",
            "saxpac_lookup_backend_interval_probes_total",
            "saxpac_lookup_backend_learned_candidates_total",
            "saxpac_net_request_latency_seconds",
            "saxpac_stage_lookup_seconds",
            "saxpac_net_inflight",
            "saxpac_slo_serve_availability_burn_5m",
            "saxpac_slo_serve_fast_burn",
        }
        for family in curated:
            help_text = helped[family]
            assert not help_text.startswith(
                ("Pipeline counter", "Runtime gauge", "Latency of pipeline")
            ), f"{family} fell back to generic HELP: {help_text!r}"

    def test_stage_histogram_carries_exemplar_trace_id(self):
        text = self._full_exposition()
        exemplar_lines = [
            line
            for line in text.splitlines()
            if line.startswith("saxpac_stage_lookup_seconds_bucket")
            and "# {trace_id=" in line
        ]
        assert len(exemplar_lines) == 1
        assert f'trace_id="{0xBEEF:x}"' in exemplar_lines[0]
        # Exemplars must not confuse the parser.
        parsed = parse_exposition(text)
        assert parsed["saxpac_stage_lookup_seconds_count"][""] == 1.0
