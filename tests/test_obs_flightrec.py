"""FlightRecorder retention policy: anomalies always kept, normals
sampled, slow upgrades self-calibrating, lazy harvest on the happy
path."""

import pytest

from repro.obs.flightrec import ANOMALOUS_VERDICTS, FlightRecorder


def test_constructor_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(normal_capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(normal_sample=0)
    with pytest.raises(ValueError):
        FlightRecorder(slow_quantile=1.0)


def test_unknown_verdict_rejected():
    with pytest.raises(ValueError, match="unknown verdict"):
        FlightRecorder().note(1, 0, "weird")


class TestRetention:
    def test_every_anomalous_verdict_always_retained(self):
        recorder = FlightRecorder()
        for i, verdict in enumerate(sorted(ANOMALOUS_VERDICTS)):
            assert recorder.note(i, 0, verdict) == verdict
        verdicts = {e.verdict for e in recorder.entries()}
        assert verdicts == ANOMALOUS_VERDICTS
        assert len(recorder) == len(ANOMALOUS_VERDICTS)

    def test_normals_trickle_at_sample_rate(self):
        recorder = FlightRecorder(normal_sample=4)
        retained = [
            recorder.note(i, 0, "ok", total_s=1e-3) for i in range(12)
        ]
        # 1-in-4: requests 0, 4, 8.
        assert [v is not None for v in retained] == [
            i % 4 == 0 for i in range(12)
        ]
        assert all(e.verdict == "ok" for e in recorder.entries())

    def test_normal_flood_cannot_evict_anomalies(self):
        """The rings are separate: any volume of healthy traffic leaves
        the anomaly you are hunting in place."""
        recorder = FlightRecorder(
            capacity=4, normal_capacity=2, normal_sample=1
        )
        recorder.note(1, 0, "shed")
        recorder.note(2, 0, "error")
        for i in range(100):
            recorder.note(100 + i, 0, "ok", total_s=1e-3)
        verdicts = [e.verdict for e in recorder.entries()]
        assert verdicts.count("shed") == 1
        assert verdicts.count("error") == 1
        assert verdicts.count("ok") == 2  # bounded by normal_capacity

    def test_anomalous_ring_bounded_newest_kept(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.note(i, 0, "shed")
        anomalous = [
            e.request_id for e in recorder.entries() if e.verdict == "shed"
        ]
        assert anomalous == [4, 3, 2]  # newest first, oldest evicted


class TestSlowUpgrade:
    def test_ok_upgrades_to_slow_after_warmup(self):
        recorder = FlightRecorder(warmup=50, normal_sample=1000)
        for i in range(60):
            recorder.note(i, 0, "ok", total_s=1e-3)
        threshold = recorder.slow_threshold_s()
        assert threshold is not None and threshold < 0.1
        # 100x the steady-state latency: retained as "slow" even though
        # the caller said "ok".
        assert recorder.note(999, 0, "ok", total_s=0.1) == "slow"
        assert any(
            e.verdict == "slow" and e.request_id == 999
            for e in recorder.entries()
        )

    def test_no_slow_verdicts_during_warmup(self):
        recorder = FlightRecorder(warmup=100, normal_sample=1000)
        assert recorder.slow_threshold_s() is None
        # Far slower than anything else, but the threshold is not armed.
        assert recorder.note(1, 0, "ok", total_s=10.0) == "ok"


class TestLazyHarvest:
    def test_callables_invoked_only_on_retention(self):
        recorder = FlightRecorder(normal_sample=2)
        calls = []

        def harvest(name):
            def inner():
                calls.append(name)
                return {name: True}

            return inner

        # Sampled in (tick 1) then sampled out (tick 2).
        assert (
            recorder.note(
                1,
                0,
                "ok",
                stages=harvest("stages"),
                spans=harvest("spans"),
                state=harvest("state"),
            )
            == "ok"
        )
        assert calls == ["stages", "spans", "state"]
        calls.clear()
        assert (
            recorder.note(
                2,
                0,
                "ok",
                stages=harvest("stages"),
                spans=harvest("spans"),
                state=harvest("state"),
            )
            is None
        )
        assert calls == []  # unretained happy path harvests nothing

    def test_harvested_values_land_on_the_entry(self):
        recorder = FlightRecorder()
        recorder.note(
            7,
            0xFACE,
            "error",
            total_s=2e-3,
            stages=lambda: {"lookup": 1e-3},
            spans=lambda: [{"name": "net.request"}],
            state=lambda: {"health": "degraded"},
            reason="boom",
        )
        entry = recorder.entries()[0]
        assert entry.trace_id == 0xFACE
        assert entry.stages == {"lookup": 1e-3}
        assert entry.spans == [{"name": "net.request"}]
        assert entry.state == {"health": "degraded"}
        assert entry.tags == {"reason": "boom"}


class TestDump:
    def test_dump_shape(self):
        recorder = FlightRecorder(normal_sample=1)
        recorder.note(1, 0, "shed")
        recorder.note(2, 0, "ok", total_s=1e-3)
        dump = recorder.dump()
        assert dump["seen"] == 2
        assert dump["retained"] == {"shed": 1, "ok": 1}
        assert dump["capacity"] == recorder.capacity
        assert [e["verdict"] for e in dump["anomalous"]] == ["shed"]
        assert [e["verdict"] for e in dump["normal"]] == ["ok"]
        entry = dump["anomalous"][0]
        assert set(entry) == {
            "request_id",
            "trace_id",
            "verdict",
            "wall_time",
            "total_s",
            "stages_s",
            "spans",
            "state",
            "tags",
        }
