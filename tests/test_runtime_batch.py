"""Tests for repro.runtime.batch: dispatch, linear scan, BatchRunner."""

import random

import pytest

from conftest import random_classifier
from repro.runtime.batch import (
    BatchRunner,
    iter_batches,
    linear_match_batch,
    match_batch,
)
from repro.runtime.telemetry import Telemetry
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.traces import generate_trace


@pytest.fixture
def setup():
    rng = random.Random(7)
    classifier = random_classifier(rng, num_rules=40)
    engine = SaxPacEngine(classifier)
    trace = generate_trace(classifier, 300, seed=11)
    return classifier, engine, trace


class _MatchOnly:
    """Engine with only a single-packet interface (no match_batch)."""

    def __init__(self, classifier):
        self.classifier = classifier
        # Not a method, so getattr(engine, "match_batch") misses.

    def match(self, header):
        return self.classifier.match(header)


class TestDispatch:
    def test_native_batch_path(self, setup):
        classifier, engine, trace = setup
        got = match_batch(engine, trace)
        want = [classifier.match(h) for h in trace]
        assert [r.index for r in got] == [r.index for r in want]

    def test_fallback_loop_path(self, setup):
        classifier, _, trace = setup
        got = match_batch(_MatchOnly(classifier), trace)
        want = [classifier.match(h) for h in trace]
        assert [r.index for r in got] == [r.index for r in want]


class TestLinearMatchBatch:
    def test_matches_reference(self, setup):
        classifier, _, trace = setup
        got = linear_match_batch(classifier, trace)
        want = classifier.match_batch(trace)
        assert [r.index for r in got] == [r.index for r in want]

    def test_empty_headers(self, setup):
        classifier, _, _ = setup
        assert linear_match_batch(classifier, []) == []

    def test_empty_body_hits_catch_all(self):
        from repro.core import Classifier, uniform_schema

        classifier = Classifier(uniform_schema(2, 4), [])
        results = linear_match_batch(classifier, [(0, 0), (15, 15)])
        assert all(r.index == 0 for r in results)


class TestIterBatches:
    def test_partitions_preserve_order(self):
        trace = list(range(10))
        batches = list(iter_batches(trace, 3))
        assert batches == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_batch_larger_than_trace(self):
        assert list(iter_batches([1, 2], 100)) == [[1, 2]]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_batches([1], 0))


class TestBatchRunner:
    def test_matches_single_path(self, setup):
        classifier, engine, trace = setup
        runner = BatchRunner(engine=engine, batch_size=64)
        got = runner.run(trace)
        want = [classifier.match(h) for h in trace]
        assert [r.index for r in got] == [r.index for r in want]

    def test_engine_source_reread_per_batch(self, setup):
        classifier, engine, trace = setup
        calls = []

        def source():
            calls.append(1)
            return engine

        runner = BatchRunner(engine_source=source, batch_size=100)
        runner.run(trace)  # 300 packets -> 3 batches
        assert len(calls) == 3

    def test_requires_exactly_one_source(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            BatchRunner()
        with pytest.raises(ValueError):
            BatchRunner(engine=engine, engine_source=lambda: engine)

    def test_invalid_batch_size(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            BatchRunner(engine=engine, batch_size=0)

    def test_telemetry_counters(self, setup):
        _, engine, trace = setup
        tel = Telemetry()
        BatchRunner(engine=engine, batch_size=100, recorder=tel).run(trace)
        snap = tel.snapshot()
        assert snap.counter("runtime.batches") == 3
        assert snap.counter("runtime.packets") == len(trace)
        assert snap.latencies["runtime.batch"].count == 3
