"""Tests for Boolean ternary words."""

import pytest
from hypothesis import given, strategies as st

from repro.boolean.ternary import TernaryWord, word_from_entry, word_from_pattern
from repro.tcam.entry import entry_from_pattern


class TestBasics:
    def test_pattern_roundtrip(self):
        for pattern in ("0", "1", "*", "10*1", "****"):
            assert word_from_pattern(pattern).pattern() == pattern

    def test_matches(self):
        word = word_from_pattern("1*0")
        assert word.matches(0b100)
        assert word.matches(0b110)
        assert not word.matches(0b101)

    def test_literals_and_matches_count(self):
        word = word_from_pattern("1*0*")
        assert word.num_literals == 2
        assert word.num_matches == 4

    def test_normalization(self):
        assert TernaryWord(0b11, 0b10, 2) == TernaryWord(0b10, 0b10, 2)

    def test_from_entry(self):
        entry = entry_from_pattern("1*01")
        assert word_from_entry(entry).pattern() == "1*01"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            TernaryWord(0, 0b100, 2)


class TestPredicates:
    def test_intersects(self):
        assert word_from_pattern("1*").intersects(word_from_pattern("*0"))
        assert not word_from_pattern("1*").intersects(word_from_pattern("0*"))

    def test_covers(self):
        assert word_from_pattern("1*").covers(word_from_pattern("10"))
        assert word_from_pattern("**").covers(word_from_pattern("1*"))
        assert not word_from_pattern("10").covers(word_from_pattern("1*"))

    def test_covers_implies_intersects(self):
        a, b = word_from_pattern("1**"), word_from_pattern("1*0")
        assert a.covers(b)
        assert a.intersects(b)

    @given(st.text(alphabet="01*", min_size=1, max_size=8),
           st.text(alphabet="01*", min_size=1, max_size=8))
    def test_intersects_semantics(self, p1, p2):
        if len(p1) != len(p2):
            return
        w1, w2 = word_from_pattern(p1), word_from_pattern(p2)
        width = len(p1)
        shares_key = any(
            w1.matches(v) and w2.matches(v) for v in range(1 << width)
        )
        assert w1.intersects(w2) == shares_key

    @given(st.text(alphabet="01*", min_size=1, max_size=8),
           st.text(alphabet="01*", min_size=1, max_size=8))
    def test_covers_semantics(self, p1, p2):
        if len(p1) != len(p2):
            return
        w1, w2 = word_from_pattern(p1), word_from_pattern(p2)
        width = len(p1)
        subset = all(
            w1.matches(v) for v in range(1 << width) if w2.matches(v)
        )
        assert w1.covers(w2) == subset


class TestResolution:
    def test_resolvable_single_bit(self):
        a = word_from_pattern("10*")
        b = word_from_pattern("11*")
        assert a.resolvable_with(b)
        assert a.resolve(b).pattern() == "1**"

    def test_not_resolvable_different_cares(self):
        assert not word_from_pattern("10*").resolvable_with(
            word_from_pattern("1*0")
        )

    def test_not_resolvable_two_bits(self):
        assert not word_from_pattern("10").resolvable_with(
            word_from_pattern("01")
        )

    def test_resolve_rejects_invalid(self):
        with pytest.raises(ValueError):
            word_from_pattern("10").resolve(word_from_pattern("01"))

    def test_resolution_preserves_semantics(self):
        a = word_from_pattern("010")
        b = word_from_pattern("011")
        merged = a.resolve(b)
        for v in range(8):
            assert merged.matches(v) == (a.matches(v) or b.matches(v))


class TestProject:
    def test_projection_masks_out(self):
        word = word_from_pattern("101")
        projected = word.project(0b110)
        assert projected.pattern() == "10*"

    def test_projection_of_wildcards(self):
        word = word_from_pattern("1**")
        assert word.project(0b011).pattern() == "***"
