"""Tests for repro.analysis.order_independence."""

import random

import numpy as np
import pytest

from repro.analysis.order_independence import (
    PairUniverse,
    conflict_matrix,
    find_dependent_pair,
    is_order_independent,
    is_order_independent_pairwise,
    pair_separation_bitsets,
    rules_order_independent,
    separating_fields_matrix,
)
from repro.core import Classifier, make_rule, uniform_schema
from conftest import random_classifier


class TestPaperExamples:
    def test_section2_order_independent_pair(self):
        schema = uniform_schema(2, 4)
        k = Classifier(
            schema, [make_rule([(1, 3), (4, 5)]), make_rule([(5, 6), (4, 5)])]
        )
        assert is_order_independent(k)
        assert is_order_independent_pairwise(k)

    def test_section2_order_dependent_pair(self):
        schema = uniform_schema(2, 4)
        k = Classifier(
            schema, [make_rule([(1, 3), (4, 5)]), make_rule([(2, 4), (4, 5)])]
        )
        assert not is_order_independent(k)
        assert not is_order_independent_pairwise(k)

    def test_example1_is_order_independent(self, example1_classifier):
        assert is_order_independent(example1_classifier)

    def test_example2_field0_suffices(self, example2_classifier):
        assert is_order_independent(example2_classifier, [0])
        assert is_order_independent(example2_classifier)

    def test_example3_is_order_dependent(self, example3_classifier):
        assert not is_order_independent(example3_classifier)

    def test_example3_dependent_pair_is_r1_r5(self, example3_classifier):
        pair = find_dependent_pair(example3_classifier)
        assert pair is not None
        i, j = pair
        body = example3_classifier.body
        assert body[i].intersects(body[j])


class TestVectorizedMatchesPairwise:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_classifiers_agree(self, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=25)
        assert is_order_independent(k) == is_order_independent_pairwise(k)

    @pytest.mark.parametrize("seed", range(4))
    def test_subset_agreement(self, seed):
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=20, num_fields=4)
        for subset in ([0], [1, 2], [0, 3], [0, 1, 2, 3]):
            assert is_order_independent(k, subset) == (
                is_order_independent_pairwise(k, subset)
            )

    def test_block_boundary(self):
        # More rules than one processing block, all disjoint in field 0.
        schema = uniform_schema(1, 12)
        rules = [make_rule([(i * 4, i * 4 + 3)]) for i in range(600)]
        k = Classifier(schema, rules)
        assert is_order_independent(k)

    def test_block_boundary_with_conflict_at_end(self):
        schema = uniform_schema(1, 12)
        rules = [make_rule([(i * 4, i * 4 + 3)]) for i in range(600)]
        rules.append(make_rule([(0, 5)]))  # conflicts with the first rules
        k = Classifier(schema, rules)
        assert not is_order_independent(k)
        pair = find_dependent_pair(k)
        assert pair == (0, 600)


class TestHelpers:
    def test_rules_order_independent_bare_list(self):
        r1 = make_rule([(1, 3), (4, 5)])
        r2 = make_rule([(5, 6), (4, 5)])
        assert rules_order_independent([r1, r2])
        assert not rules_order_independent([r1, r1])
        assert rules_order_independent([])

    def test_empty_subset_rejected(self, example1_classifier):
        with pytest.raises(ValueError):
            is_order_independent(example1_classifier, [])

    def test_out_of_range_subset_rejected(self, example1_classifier):
        with pytest.raises(ValueError):
            is_order_independent(example1_classifier, [5])

    def test_conflict_matrix_symmetric(self):
        rng = random.Random(3)
        k = random_classifier(rng, num_rules=15)
        m = conflict_matrix(k)
        assert (m == m.T).all()
        assert not m.diagonal().any()

    def test_conflict_matrix_matches_rule_intersects(self):
        rng = random.Random(4)
        k = random_classifier(rng, num_rules=12)
        m = conflict_matrix(k)
        body = k.body
        for i in range(len(body)):
            for j in range(len(body)):
                if i != j:
                    assert m[i, j] == body[i].intersects(body[j])


class TestSeparatingFieldsMatrix:
    def test_bits_are_witnesses(self):
        rng = random.Random(5)
        k = random_classifier(rng, num_rules=12, num_fields=3)
        m = separating_fields_matrix(k)
        body = k.body
        for i in range(len(body)):
            for j in range(len(body)):
                witnesses = body[i].disjoint_fields(body[j])
                expected = 0
                for f in witnesses:
                    expected |= 1 << f
                assert int(m[i, j]) == expected


class TestPairUniverse:
    def test_index_pair_roundtrip(self):
        universe = PairUniverse(7)
        seen = set()
        for i in range(6):
            for j in range(i + 1, 7):
                idx = universe.index(i, j)
                assert universe.pair(idx) == (i, j)
                seen.add(idx)
        assert seen == set(range(universe.num_pairs))

    def test_invalid_pairs_rejected(self):
        universe = PairUniverse(5)
        with pytest.raises(ValueError):
            universe.index(3, 3)
        with pytest.raises(ValueError):
            universe.index(4, 2)
        with pytest.raises(ValueError):
            universe.pair(universe.num_pairs)


class TestPairSeparationBitsets:
    def test_bitsets_match_pairwise_disjointness(self):
        rng = random.Random(6)
        k = random_classifier(rng, num_rules=14, num_fields=3)
        universe, bitsets = pair_separation_bitsets(k)
        body = k.body
        for f in range(3):
            bits = np.unpackbits(bitsets[f])
            for i in range(len(body) - 1):
                for j in range(i + 1, len(body)):
                    expected = body[i].intervals[f].disjoint(
                        body[j].intervals[f]
                    )
                    assert bool(bits[universe.index(i, j)]) == expected

    def test_union_of_fields_covers_iff_order_independent(
        self, example1_classifier, example3_classifier
    ):
        for k, expected in (
            (example1_classifier, True),
            (example3_classifier, False),
        ):
            universe, bitsets = pair_separation_bitsets(k)
            combined = np.zeros_like(bitsets[0])
            for b in bitsets:
                combined |= b
            covered = int(np.unpackbits(combined)[: universe.num_pairs].sum())
            assert (covered == universe.num_pairs) == expected
