"""Property tests across the encoding and baseline layers.

Complements test_properties.py with the TCAM-facing invariants: every
encoding of a rule matches exactly the headers the rule matches, and every
baseline classifier agrees with the linear scan.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lookup.decision_tree import DecisionTreeClassifier
from repro.lookup.tuple_space import TupleSpaceClassifier
from repro.tcam.encoding import (
    BinaryRangeEncoder,
    SrgeRangeEncoder,
    expand_rule,
)
from repro.tcam.negative import DecisionList, negative_range_encode
from strategies import classifiers, headers_for, intervals

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEncodingAgreement:
    @given(st.integers(1, 12), st.data())
    @_SETTINGS
    def test_three_encodings_same_membership(self, width, data):
        """binary, SRGE and signed decision lists encode the same set."""
        from repro.tcam.encoding import binary_expand, gray_encode, srge_expand

        interval = data.draw(intervals(width))
        binary = binary_expand(interval, width)
        srge = srge_expand(interval, width)
        signed = DecisionList(negative_range_encode(interval, width))
        for _ in range(20):
            key = data.draw(st.integers(0, (1 << width) - 1))
            expected = interval.contains(key)
            assert any(e.matches(key) for e in binary) == expected
            assert any(e.matches(gray_encode(key)) for e in srge) == expected
            assert signed.matches(key) == expected

    @given(st.data())
    @_SETTINGS
    def test_rule_expansion_membership(self, data):
        k = data.draw(classifiers(max_rules=4, num_fields=2, width=5))
        if not k.body:
            return
        rule = k.body[0]
        for encoder in (BinaryRangeEncoder(), SrgeRangeEncoder()):
            entries = expand_rule(rule, k.schema, encoder)
            for _ in range(15):
                header = data.draw(headers_for(k))
                key = 0
                for value, spec in zip(header, k.schema):
                    key = (key << spec.width) | encoder.encode_value(
                        value, spec.width
                    )
                hit = any(e.matches(key) for e in entries)
                assert hit == rule.matches(header)


class TestBaselineAgreement:
    @given(st.data())
    @_SETTINGS
    def test_tuple_space_is_drop_in(self, data):
        k = data.draw(classifiers(max_rules=12, num_fields=2, width=5))
        tss = TupleSpaceClassifier(k)
        for _ in range(15):
            header = data.draw(headers_for(k))
            assert tss.match(header).index == k.match(header).index

    @given(st.data())
    @_SETTINGS
    def test_decision_tree_is_drop_in(self, data):
        k = data.draw(classifiers(max_rules=12, num_fields=2, width=5))
        tree = DecisionTreeClassifier(k, binth=3)
        for _ in range(15):
            header = data.draw(headers_for(k))
            assert tree.match(header).index == k.match(header).index


class TestRedundancyProperty:
    @given(st.data())
    @_SETTINGS
    def test_removal_preserves_actions(self, data):
        from repro.analysis.redundancy import remove_redundant

        k = data.draw(classifiers(max_rules=12))
        cleaned, _removed = remove_redundant(k)
        for _ in range(15):
            header = data.draw(headers_for(k))
            assert cleaned.classify(header) == k.classify(header)
