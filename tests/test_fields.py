"""Tests for repro.core.fields."""

import pytest

from repro.core.fields import (
    FieldKind,
    FieldSchema,
    FieldSpec,
    classbench_schema,
    ipv4_5tuple_schema,
    uniform_schema,
)
from repro.core.fields import synthetic_range_fields


class TestFieldSpec:
    def test_max_value(self):
        assert FieldSpec("p", 8).max_value == 255

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            FieldSpec("bad", 0)


class TestFieldSchema:
    def test_total_width_five_tuple(self):
        assert ipv4_5tuple_schema().total_width == 104

    def test_classbench_is_120_bits(self):
        # The "Width, bits" column of Table 1.
        assert classbench_schema().total_width == 120

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FieldSchema((FieldSpec("a", 4), FieldSpec("a", 4)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FieldSchema(())

    def test_index_of(self):
        schema = classbench_schema()
        assert schema.index_of("dst_port") == 3
        with pytest.raises(KeyError):
            schema.index_of("nope")

    def test_subset_width(self):
        schema = classbench_schema()
        assert schema.subset_width([0, 1]) == 64
        assert schema.subset_width([4]) == 8

    def test_keep_drop_are_complementary(self):
        schema = classbench_schema()
        kept = schema.keep([0, 2, 4])
        dropped = schema.drop([1, 3, 5])
        assert kept.names == dropped.names

    def test_extend(self):
        schema = uniform_schema(2, 4)
        extended = schema.extend([FieldSpec("x", 16)])
        assert extended.total_width == 24
        assert extended.names[-1] == "x"

    def test_iteration_and_len(self):
        schema = uniform_schema(3, 5)
        assert len(schema) == 3
        assert [f.width for f in schema] == [5, 5, 5]

    def test_uniform_schema_names_unique(self):
        schema = uniform_schema(4, 2)
        assert len(set(schema.names)) == 4


class TestSyntheticRangeFields:
    def test_count_and_width(self):
        specs = synthetic_range_fields(3)
        assert len(specs) == 3
        assert all(s.width == 16 for s in specs)
        assert all(s.kind is FieldKind.RANGE for s in specs)
