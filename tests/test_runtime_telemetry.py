"""Tests for repro.runtime.telemetry: counters, histograms, renderers."""

import copy
import json
import pickle
import threading

import pytest

from repro.runtime.telemetry import (
    NULL_RECORDER,
    LatencyHistogram,
    NullRecorder,
    Telemetry,
    render_text,
)


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False
        assert NullRecorder().enabled is False

    def test_noop_methods(self):
        rec = NullRecorder()
        rec.incr("x")
        rec.incr("x", 5)
        rec.observe("stage", 0.25)  # no state, no error

    def test_no_observability_sinks(self):
        assert NULL_RECORDER.tracer is None
        assert NULL_RECORDER.heat is None

    def test_span_is_shared_noop(self):
        rec = NullRecorder()
        with rec.span("anything", parent=None, batch=3):
            pass
        assert rec.span("a") is rec.span("b")  # one shared nullcontext


class TestLatencyHistogram:
    def test_empty_stats(self):
        stats = LatencyHistogram().stats()
        assert stats.count == 0
        assert stats.p50 == 0.0
        assert stats.p99 == 0.0
        assert stats.minimum == 0.0
        assert stats.mean == 0.0

    def test_observe_and_percentiles(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(0.001)  # 1 ms
        stats = hist.stats()
        assert stats.count == 100
        assert stats.minimum <= 0.001 <= stats.maximum
        # log2 buckets answer quantiles to within a factor of two.
        assert 0.0005 <= stats.p50 <= 0.002
        assert 0.0005 <= stats.p99 <= 0.002
        assert stats.mean == pytest.approx(0.001)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.001)
        b.observe(0.010)
        a.merge(b)
        stats = a.stats()
        assert stats.count == 2
        assert stats.maximum >= 0.010
        assert stats.minimum <= 0.001

    def test_extreme_values_clamped(self):
        hist = LatencyHistogram()
        hist.observe(0.0)
        hist.observe(1e9)
        assert hist.stats().count == 2

    def test_quantiles_clamped_to_observed_maximum(self):
        # 33us lands in the (32us, 64us] bucket whose upper bound is
        # 64us; the quantile must not exceed what was actually seen.
        hist = LatencyHistogram()
        for _ in range(10):
            hist.observe(33e-6)
        stats = hist.stats()
        assert stats.p50 == pytest.approx(33e-6)
        assert stats.p99 == pytest.approx(33e-6)
        assert stats.p50 <= stats.maximum

    def test_quantile_uses_bucket_bound_below_maximum(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.observe(3e-6)  # bucket ending at 4us
        hist.observe(1.0)  # pushes maximum way up
        stats = hist.stats()
        assert stats.p50 == pytest.approx(4e-6)
        assert stats.maximum == pytest.approx(1.0)

    def test_stats_expose_trimmed_buckets(self):
        hist = LatencyHistogram()
        hist.observe(3e-6)   # bucket 2
        hist.observe(0.5e-6)  # bucket 0
        buckets = hist.stats().buckets
        assert list(buckets) == [1, 0, 1]  # trailing zeros trimmed
        assert sum(buckets) == hist.count


class TestTelemetry:
    def test_incr_and_counter(self):
        tel = Telemetry()
        tel.incr("engine.lookups")
        tel.incr("engine.lookups", 4)
        assert tel.counter("engine.lookups") == 5
        assert tel.counter("missing") == 0

    def test_enabled_flag(self):
        assert Telemetry().enabled is True

    def test_snapshot_is_frozen_view(self):
        tel = Telemetry()
        tel.incr("a", 2)
        snap = tel.snapshot()
        tel.incr("a", 10)
        assert snap.counter("a") == 2  # snapshot unaffected by later incr
        assert tel.counter("a") == 12

    def test_observe_appears_in_snapshot(self):
        tel = Telemetry()
        tel.observe("engine.match", 0.002)
        tel.observe("engine.match", 0.004)
        snap = tel.snapshot()
        assert "engine.match" in snap.latencies
        assert snap.latencies["engine.match"].count == 2

    def test_reset(self):
        tel = Telemetry()
        tel.incr("a")
        tel.observe("s", 0.1)
        tel.reset()
        snap = tel.snapshot()
        assert dict(snap.counters) == {}
        assert dict(snap.latencies) == {}

    def test_merge_other_telemetry(self):
        a, b = Telemetry(), Telemetry()
        a.incr("x", 1)
        b.incr("x", 2)
        b.observe("s", 0.01)
        a.merge(b)
        assert a.counter("x") == 3
        assert a.snapshot().latencies["s"].count == 1

    def test_thread_safety_smoke(self):
        tel = Telemetry()

        def worker():
            for _ in range(1000):
                tel.incr("n")
                tel.observe("s", 0.0001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tel.counter("n") == 4000
        assert tel.snapshot().latencies["s"].count == 4000

    def test_concurrent_writers_and_snapshotters(self):
        # Stress: writers hammer incr/observe while readers snapshot and
        # drain concurrently; nothing may be lost or double-counted.
        tel = Telemetry()
        sink = Telemetry()
        stop = threading.Event()
        per_writer, writers = 2000, 4

        def writer():
            for i in range(per_writer):
                tel.incr("n")
                tel.observe("s", 1e-5 * (i % 7 + 1))

        def reader():
            while not stop.is_set():
                snap = tel.snapshot()
                assert snap.counter("n") >= 0
                for stats in snap.latencies.values():
                    assert sum(stats.buckets) == stats.count
                sink.absorb(tel.drain())

        threads = [threading.Thread(target=writer) for _ in range(writers)]
        drainer = threading.Thread(target=reader)
        drainer.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        drainer.join()
        sink.absorb(tel.drain())
        total = per_writer * writers
        assert sink.counter("n") == total
        assert sink.snapshot().latencies["s"].count == total

    def test_span_without_tracer_is_noop(self):
        tel = Telemetry()
        with tel.span("stage", batch=1):
            pass
        assert tel.span("a") is tel.span("b")

    def test_span_delegates_to_tracer(self):
        class FakeTracer:
            def __init__(self):
                self.calls = []

            def span(self, name, parent=None, **tags):
                self.calls.append((name, parent, tags))
                import contextlib

                return contextlib.nullcontext()

        tracer = FakeTracer()
        tel = Telemetry(tracer=tracer)
        with tel.span("stage", parent="ctx", shard=2):
            pass
        assert tracer.calls == [("stage", "ctx", {"shard": 2})]

    def test_drain_returns_everything_and_empties(self):
        tel = Telemetry()
        tel.incr("a", 3)
        tel.observe("s", 0.001)
        delta = tel.drain()
        assert delta.counters == {"a": 3}
        assert delta.histograms["s"].count == 1
        assert not delta.is_empty()
        assert tel.counter("a") == 0
        assert tel.drain().is_empty()

    def test_absorb_folds_delta_back(self):
        a, b = Telemetry(), Telemetry()
        a.incr("x", 2)
        a.observe("s", 0.001)
        b.incr("x", 5)
        b.observe("s", 0.002)
        a.absorb(b.drain())
        assert a.counter("x") == 7
        stats = a.snapshot().latencies["s"]
        assert stats.count == 2
        assert stats.total == pytest.approx(0.003)

    def test_delta_is_picklable(self):
        tel = Telemetry()
        tel.incr("a")
        tel.observe("s", 0.001)
        delta = pickle.loads(pickle.dumps(tel.drain()))
        sink = Telemetry()
        sink.absorb(delta)
        assert sink.counter("a") == 1

    def test_deepcopy_keeps_data_drops_sinks(self):
        tel = Telemetry(tracer=object(), heat=object())
        tel.incr("a", 4)
        tel.observe("s", 0.001)
        clone = copy.deepcopy(tel)
        assert clone.counter("a") == 4
        assert clone.snapshot().latencies["s"].count == 1
        assert clone.tracer is None and clone.heat is None
        clone.incr("a")  # fresh lock works
        assert tel.counter("a") == 4  # original untouched


class TestRenderers:
    def test_to_json_round_trip(self):
        tel = Telemetry()
        tel.incr("engine.lookups", 7)
        tel.observe("engine.match", 0.003)
        data = json.loads(tel.snapshot().to_json())
        assert data["counters"]["engine.lookups"] == 7
        assert data["latencies"]["engine.match"]["count"] == 1
        assert data["latencies"]["engine.match"]["mean_s"] == pytest.approx(
            0.003
        )

    def test_as_dict_exposes_buckets(self):
        tel = Telemetry()
        tel.observe("s", 3e-6)
        tel.observe("s", 3e-6)
        data = tel.snapshot().as_dict()
        buckets = data["latencies"]["s"]["buckets"]
        assert buckets == [0, 0, 2]
        assert sum(buckets) == data["latencies"]["s"]["count"]

    def test_render_text_groups_by_prefix(self):
        tel = Telemetry()
        tel.incr("engine.lookups", 3)
        tel.incr("cache.hits", 1)
        tel.observe("engine.match", 0.001)
        text = render_text(tel.snapshot())
        assert "engine:" in text
        assert "cache:" in text
        assert "lookups" in text
        assert "engine.match" in text

    def test_render_text_empty(self):
        assert isinstance(render_text(Telemetry().snapshot()), str)
