"""Tests for repro.runtime.telemetry: counters, histograms, renderers."""

import json
import threading

import pytest

from repro.runtime.telemetry import (
    NULL_RECORDER,
    LatencyHistogram,
    NullRecorder,
    Telemetry,
    render_text,
)


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False
        assert NullRecorder().enabled is False

    def test_noop_methods(self):
        rec = NullRecorder()
        rec.incr("x")
        rec.incr("x", 5)
        rec.observe("stage", 0.25)  # no state, no error


class TestLatencyHistogram:
    def test_empty_stats(self):
        stats = LatencyHistogram().stats()
        assert stats.count == 0
        assert stats.p50 == 0.0
        assert stats.p99 == 0.0
        assert stats.minimum == 0.0
        assert stats.mean == 0.0

    def test_observe_and_percentiles(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(0.001)  # 1 ms
        stats = hist.stats()
        assert stats.count == 100
        assert stats.minimum <= 0.001 <= stats.maximum
        # log2 buckets answer quantiles to within a factor of two.
        assert 0.0005 <= stats.p50 <= 0.002
        assert 0.0005 <= stats.p99 <= 0.002
        assert stats.mean == pytest.approx(0.001)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.001)
        b.observe(0.010)
        a.merge(b)
        stats = a.stats()
        assert stats.count == 2
        assert stats.maximum >= 0.010
        assert stats.minimum <= 0.001

    def test_extreme_values_clamped(self):
        hist = LatencyHistogram()
        hist.observe(0.0)
        hist.observe(1e9)
        assert hist.stats().count == 2


class TestTelemetry:
    def test_incr_and_counter(self):
        tel = Telemetry()
        tel.incr("engine.lookups")
        tel.incr("engine.lookups", 4)
        assert tel.counter("engine.lookups") == 5
        assert tel.counter("missing") == 0

    def test_enabled_flag(self):
        assert Telemetry().enabled is True

    def test_snapshot_is_frozen_view(self):
        tel = Telemetry()
        tel.incr("a", 2)
        snap = tel.snapshot()
        tel.incr("a", 10)
        assert snap.counter("a") == 2  # snapshot unaffected by later incr
        assert tel.counter("a") == 12

    def test_observe_appears_in_snapshot(self):
        tel = Telemetry()
        tel.observe("engine.match", 0.002)
        tel.observe("engine.match", 0.004)
        snap = tel.snapshot()
        assert "engine.match" in snap.latencies
        assert snap.latencies["engine.match"].count == 2

    def test_reset(self):
        tel = Telemetry()
        tel.incr("a")
        tel.observe("s", 0.1)
        tel.reset()
        snap = tel.snapshot()
        assert dict(snap.counters) == {}
        assert dict(snap.latencies) == {}

    def test_merge_other_telemetry(self):
        a, b = Telemetry(), Telemetry()
        a.incr("x", 1)
        b.incr("x", 2)
        b.observe("s", 0.01)
        a.merge(b)
        assert a.counter("x") == 3
        assert a.snapshot().latencies["s"].count == 1

    def test_thread_safety_smoke(self):
        tel = Telemetry()

        def worker():
            for _ in range(1000):
                tel.incr("n")
                tel.observe("s", 0.0001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tel.counter("n") == 4000
        assert tel.snapshot().latencies["s"].count == 4000


class TestRenderers:
    def test_to_json_round_trip(self):
        tel = Telemetry()
        tel.incr("engine.lookups", 7)
        tel.observe("engine.match", 0.003)
        data = json.loads(tel.snapshot().to_json())
        assert data["counters"]["engine.lookups"] == 7
        assert data["latencies"]["engine.match"]["count"] == 1
        assert data["latencies"]["engine.match"]["mean_s"] == pytest.approx(
            0.003
        )

    def test_render_text_groups_by_prefix(self):
        tel = Telemetry()
        tel.incr("engine.lookups", 3)
        tel.incr("cache.hits", 1)
        tel.observe("engine.match", 0.001)
        text = render_text(tel.snapshot())
        assert "engine:" in text
        assert "cache:" in text
        assert "lookups" in text
        assert "engine.match" in text

    def test_render_text_empty(self):
        assert isinstance(render_text(Telemetry().snapshot()), str)
