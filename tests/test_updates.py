"""Tests for dynamic updates (Section 7.2)."""

import random

import pytest

from repro.core import (
    make_rule,
    uniform_schema,
)
from repro.saxpac.updates import DynamicSaxPac, InsertOutcome


def _random_rule(rng, num_fields=3, width=6, max_span=8):
    max_value = (1 << width) - 1
    ranges = []
    for _ in range(num_fields):
        if rng.random() < 0.2:
            ranges.append((0, max_value))
        else:
            lo = rng.randint(0, max_value)
            ranges.append((lo, min(max_value, lo + rng.randint(0, max_span))))
    return make_rule(ranges)


def _assert_equivalent(dyn, samples):
    reference = dyn.to_classifier()
    for header in samples:
        expected = reference.match(header)
        got = dyn.match_id(header)
        if got is None:
            # Only acceptable when the winner is the implicit catch-all.
            # (A full-wildcard *body* rule is reused as the catch-all by
            # Classifier, and the dynamic engine rightly reports its id.)
            assert expected.rule is reference.catch_all
        else:
            assert dyn.rule(got) == expected.rule


class TestInsertion:
    def test_first_insert_opens_group(self):
        dyn = DynamicSaxPac(uniform_schema(2, 5))
        report = dyn.insert(make_rule([(1, 3), (4, 5)]))
        assert report.outcome is InsertOutcome.NEW_GROUP
        assert dyn.num_groups == 1

    def test_compatible_rule_joins_group(self):
        dyn = DynamicSaxPac(uniform_schema(2, 5))
        dyn.insert(make_rule([(1, 3), (4, 5)]))
        report = dyn.insert(make_rule([(5, 6), (4, 5)]))
        assert report.outcome is InsertOutcome.GROUP
        assert dyn.num_groups == 1

    def test_intersecting_rule_goes_to_d(self):
        dyn = DynamicSaxPac(uniform_schema(2, 5))
        dyn.insert(make_rule([(1, 3), (4, 5)]))
        report = dyn.insert(make_rule([(2, 4), (4, 5)]))
        assert report.outcome is InsertOutcome.ORDER_DEPENDENT
        assert dyn.d_size == 1

    def test_rejection_when_d_full(self):
        dyn = DynamicSaxPac(uniform_schema(1, 6), d_capacity=1)
        dyn.insert(make_rule([(0, 40)]))
        dyn.insert(make_rule([(0, 30)]))  # -> D
        report = dyn.insert(make_rule([(0, 20)]))  # D full, recompute fails
        assert report.outcome in (
            InsertOutcome.REJECTED,
            InsertOutcome.ORDER_DEPENDENT,
        )
        if report.outcome is InsertOutcome.REJECTED:
            assert len(dyn) == 2

    def test_recompute_counter(self):
        dyn = DynamicSaxPac(uniform_schema(1, 6), d_capacity=1)
        dyn.insert(make_rule([(0, 40)]))
        dyn.insert(make_rule([(0, 30)]))
        dyn.insert(make_rule([(0, 20)]))
        assert dyn.recomputations >= 1

    @pytest.mark.parametrize("seed", range(6))
    def test_insert_stream_equivalence(self, seed):
        rng = random.Random(seed)
        dyn = DynamicSaxPac(uniform_schema(3, 6))
        for _ in range(40):
            dyn.insert(_random_rule(rng))
        samples = dyn.to_classifier().sample_headers(200, rng)
        _assert_equivalent(dyn, samples)


class TestExample10:
    def test_insertion_with_budget(self, example10_classifier):
        """Example 10: R4 is OI with I on all fields but needs an extra
        field; with C >= 2 it can shadow R1 and R3."""
        dyn = DynamicSaxPac(
            uniform_schema(3, 4),
            max_group_fields=1,
            max_groups=1,
            fp_budget=2,
        )
        for rule in example10_classifier.body:
            report = dyn.insert(rule)
            assert report.in_software
        assert dyn.num_groups == 1
        r4 = make_rule([(2, 4), (2, 2), (3, 3)], name="R4")
        report = dyn.insert(r4)
        assert report.outcome is InsertOutcome.SHADOW
        hosts = {dyn.rule(h).name for h in report.hosts}
        assert hosts == {"R1", "R3"}
        # Classification still correct everywhere.
        rng = random.Random(5)
        samples = dyn.to_classifier().sample_headers(300, rng)
        _assert_equivalent(dyn, samples)
        # And R4 itself is reachable.
        assert dyn.rule(dyn.match_id((3, 2, 3))).name == "R4"

    def test_budget_too_small_sends_to_d(self, example10_classifier):
        dyn = DynamicSaxPac(
            uniform_schema(3, 4),
            max_group_fields=1,
            max_groups=1,
            fp_budget=0,
        )
        for rule in example10_classifier.body:
            dyn.insert(rule)
        report = dyn.insert(make_rule([(2, 4), (2, 2), (3, 3)]))
        assert report.outcome is InsertOutcome.ORDER_DEPENDENT


class TestRemoval:
    def test_remove_from_group(self):
        dyn = DynamicSaxPac(uniform_schema(2, 5))
        r1 = dyn.insert(make_rule([(1, 3), (4, 5)])).rule_id
        dyn.insert(make_rule([(5, 6), (4, 5)]))
        dyn.remove(r1)
        assert len(dyn) == 1
        assert dyn.match_id((2, 4)) is None

    def test_remove_unknown_raises(self):
        dyn = DynamicSaxPac(uniform_schema(1, 4))
        with pytest.raises(KeyError):
            dyn.remove(17)

    def test_empty_group_dropped(self):
        dyn = DynamicSaxPac(uniform_schema(1, 5))
        rid = dyn.insert(make_rule([(1, 3)])).rule_id
        assert dyn.num_groups == 1
        dyn.remove(rid)
        assert dyn.num_groups == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_interleaved_insert_remove_equivalence(self, seed):
        rng = random.Random(100 + seed)
        dyn = DynamicSaxPac(uniform_schema(3, 6))
        live = []
        for step in range(60):
            if live and rng.random() < 0.35:
                victim = live.pop(rng.randrange(len(live)))
                dyn.remove(victim)
            else:
                report = dyn.insert(_random_rule(rng))
                if report.accepted:
                    live.append(report.rule_id)
        samples = dyn.to_classifier().sample_headers(200, rng)
        _assert_equivalent(dyn, samples)


class TestModification:
    def test_in_place_outside_group_fields(self):
        dyn = DynamicSaxPac(uniform_schema(3, 5), max_group_fields=1)
        rid = dyn.insert(make_rule([(1, 3), (4, 5), (0, 9)])).rule_id
        fields = dyn._groups[0].fields
        assert fields == (0,)
        new_rule = make_rule([(1, 3), (7, 8), (2, 4)])
        report = dyn.modify(rid, new_rule)
        assert report.outcome is InsertOutcome.GROUP
        assert dyn.rule(rid) == new_rule
        assert dyn.match_id((2, 8, 3)) == rid
        assert dyn.match_id((2, 5, 3)) is None

    def test_modify_breaking_group_moves_to_d(self):
        dyn = DynamicSaxPac(uniform_schema(2, 5), max_group_fields=1)
        a = dyn.insert(make_rule([(1, 3), (0, 31)])).rule_id
        b = dyn.insert(make_rule([(5, 7), (0, 31)])).rule_id
        # Modify b so it now collides with a everywhere.
        report = dyn.modify(b, make_rule([(2, 4), (0, 31)]))
        assert report.outcome is InsertOutcome.ORDER_DEPENDENT
        # Priority preserved: b is still lower priority than a.
        assert dyn.match_id((2, 0)) == a
        assert dyn.match_id((4, 0)) == b

    def test_modify_unknown_raises(self):
        dyn = DynamicSaxPac(uniform_schema(1, 4))
        with pytest.raises(KeyError):
            dyn.modify(3, make_rule([(0, 1)]))

    def test_modify_arity_checked(self):
        dyn = DynamicSaxPac(uniform_schema(2, 4))
        rid = dyn.insert(make_rule([(0, 1), (2, 3)])).rule_id
        with pytest.raises(ValueError):
            dyn.modify(rid, make_rule([(0, 1)]))
        # The classifier is untouched by the failed modify.
        assert dyn.rule(rid) == make_rule([(0, 1), (2, 3)])

    def test_insert_arity_checked(self):
        dyn = DynamicSaxPac(uniform_schema(2, 4))
        with pytest.raises(ValueError):
            dyn.insert(make_rule([(0, 1)]))
        assert len(dyn) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_modify_stream_equivalence(self, seed):
        rng = random.Random(200 + seed)
        dyn = DynamicSaxPac(uniform_schema(3, 6))
        live = []
        for _ in range(30):
            report = dyn.insert(_random_rule(rng))
            if report.accepted:
                live.append(report.rule_id)
        for _ in range(20):
            victim = rng.choice(live)
            dyn.modify(victim, _random_rule(rng))
        samples = dyn.to_classifier().sample_headers(200, rng)
        _assert_equivalent(dyn, samples)


class TestRecompute:
    def test_recompute_preserves_semantics(self):
        rng = random.Random(9)
        dyn = DynamicSaxPac(uniform_schema(3, 6))
        for _ in range(30):
            dyn.insert(_random_rule(rng))
        before = dyn.to_classifier()
        dyn.recompute()
        after = dyn.to_classifier()
        samples = before.sample_headers(200, rng)
        for header in samples:
            assert before.match(header).rule == after.match(header).rule
        _assert_equivalent(dyn, samples)

    def test_recompute_can_shrink_d(self):
        # Rules inserted in an unlucky order: a broad rule first forces
        # later rules to D; recompute reshuffles into groups.
        dyn = DynamicSaxPac(uniform_schema(1, 6), max_groups=1)
        dyn.insert(make_rule([(0, 60)]))
        for i in range(5):
            dyn.insert(make_rule([(i * 10, i * 10 + 5)]))
        assert dyn.d_size == 5
        dyn.recompute()
        # The broad rule overlaps everything; the nested rules are
        # pairwise disjoint, so at most one side stays out of groups.
        assert dyn.d_size <= 5


class TestClassify:
    def test_classify_returns_action(self):
        from repro.core import DENY

        dyn = DynamicSaxPac(uniform_schema(1, 5))
        dyn.insert(make_rule([(0, 3)], DENY))
        assert dyn.classify((2,)) is DENY
        assert dyn.classify((9,)) == dyn.default_action
