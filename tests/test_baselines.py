"""Tests for the baseline classifiers: tuple space search and HiCuts."""

import random

import pytest

from repro.core import Classifier, make_rule, uniform_schema
from repro.lookup.decision_tree import DecisionTreeClassifier
from repro.lookup.tuple_space import TupleSpaceClassifier
from repro.workloads.generator import generate_classifier
from conftest import random_classifier


def _check_equivalence(baseline, classifier, rng, samples=200):
    for header in classifier.sample_headers(samples, rng):
        expected = classifier.match(header)
        got = baseline.match_index(header)
        if expected.rule is classifier.catch_all:
            assert got is None
        else:
            assert got == expected.index


class TestTupleSpace:
    def test_prefix_rules_one_entry_each(self):
        schema = uniform_schema(2, 8)
        k = Classifier(
            schema,
            [
                make_rule([(0, 127), (64, 64)]),   # /1 and /8
                make_rule([(128, 255), (32, 32)]),
            ],
        )
        tss = TupleSpaceClassifier(k)
        assert tss.num_entries == 2
        assert tss.num_tuples == 1  # both rules share tuple (1, 8)

    def test_range_rules_expand(self):
        schema = uniform_schema(1, 8)
        k = Classifier(schema, [make_rule([(1, 254)])])
        tss = TupleSpaceClassifier(k)
        assert tss.num_entries == 14  # 2W - 2 prefixes

    def test_lookup_basic(self):
        schema = uniform_schema(2, 8)
        k = Classifier(
            schema,
            [
                make_rule([(0, 127), (64, 64)]),
                make_rule([(128, 255), (32, 32)]),
            ],
        )
        tss = TupleSpaceClassifier(k)
        assert tss.match_index((5, 64)) == 0
        assert tss.match_index((200, 32)) == 1
        assert tss.match_index((5, 32)) is None

    def test_priority_on_shared_entry(self):
        schema = uniform_schema(1, 4)
        k = Classifier(
            schema, [make_rule([(8, 15)]), make_rule([(8, 15)])]
        )
        tss = TupleSpaceClassifier(k)
        assert tss.match_index((9,)) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_equivalent_to_linear_scan(self, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=20, num_fields=3, width=6)
        tss = TupleSpaceClassifier(k)
        _check_equivalence(tss, k, rng)

    def test_realistic_workload(self):
        k = generate_classifier("acl", 200, seed=31)
        rng = random.Random(2)
        tss = TupleSpaceClassifier(k)
        _check_equivalence(tss, k, rng, samples=300)
        # Range expansion inflates the tuple space — exactly the weakness
        # the paper attributes to [35]; entries bound tuples from above.
        assert tss.num_tuples <= tss.num_entries

    def test_prefix_only_rules_share_few_tuples(self):
        # Without ranges, tuple count collapses far below the rule count.
        schema = uniform_schema(2, 8)
        rng = random.Random(7)
        rules = []
        for _ in range(60):
            plen_a = rng.choice((0, 8))
            plen_b = rng.choice((0, 8))
            a = rng.randrange(256) & (0xFF << (8 - plen_a)) & 0xFF
            b = rng.randrange(256) & (0xFF << (8 - plen_b)) & 0xFF
            rules.append(
                make_rule(
                    [
                        (a, a + (1 << (8 - plen_a)) - 1),
                        (b, b + (1 << (8 - plen_b)) - 1),
                    ]
                )
            )
        k = Classifier(schema, rules)
        tss = TupleSpaceClassifier(k)
        assert tss.num_tuples <= 4  # (0|8) x (0|8)

    def test_rule_subset(self):
        k = generate_classifier("acl", 50, seed=32)
        tss = TupleSpaceClassifier(k, rule_indices=[0, 1, 2])
        assert tss.num_entries >= 3 or tss.num_entries > 0

    def test_tuple_histogram(self):
        k = generate_classifier("acl", 50, seed=33)
        tss = TupleSpaceClassifier(k)
        histogram = tss.tuple_histogram()
        assert sum(histogram.values()) == tss.num_entries

    def test_match_falls_back_to_catch_all(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(0, 3)])])
        tss = TupleSpaceClassifier(k)
        assert tss.match((9,)).rule is k.catch_all


class TestDecisionTree:
    @pytest.mark.parametrize("seed", range(8))
    def test_equivalent_to_linear_scan(self, seed):
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=25, num_fields=3, width=6)
        tree = DecisionTreeClassifier(k, binth=4)
        _check_equivalence(tree, k, rng)

    def test_realistic_workload(self):
        k = generate_classifier("fw", 200, seed=41)
        tree = DecisionTreeClassifier(k, binth=8)
        rng = random.Random(3)
        _check_equivalence(tree, k, rng, samples=300)

    def test_binth_respected_where_cuttable(self):
        k = generate_classifier("acl", 150, seed=42)
        tree = DecisionTreeClassifier(k, binth=4, max_depth=30)
        # Leaves exceed binth only when cutting cannot separate further.
        assert tree.stats.leaves >= 1
        assert tree.stats.max_depth <= 30

    def test_replication_reported(self):
        k = generate_classifier("fw", 150, seed=43)
        tree = DecisionTreeClassifier(k, binth=8)
        factor = tree.stats.replication_factor(len(k.body))
        assert factor >= 1.0  # every rule stored at least once

    def test_single_rule(self):
        schema = uniform_schema(2, 4)
        k = Classifier(schema, [make_rule([(1, 2), (3, 4)])])
        tree = DecisionTreeClassifier(k)
        assert tree.match_index((1, 3)) == 0
        assert tree.match_index((0, 0)) is None

    def test_empty_classifier(self):
        schema = uniform_schema(2, 4)
        k = Classifier(schema, [])
        tree = DecisionTreeClassifier(k)
        assert tree.match_index((0, 0)) is None
        assert tree.match((0, 0)).rule is k.catch_all

    def test_parameter_validation(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(0, 3)])])
        with pytest.raises(ValueError):
            DecisionTreeClassifier(k, binth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(k, max_cuts=1)

    def test_identical_rules_leaf_out(self):
        # Uncuttable: identical boxes must not recurse forever.
        schema = uniform_schema(2, 6)
        k = Classifier(
            schema, [make_rule([(0, 40), (0, 40)]) for _ in range(20)]
        )
        tree = DecisionTreeClassifier(k, binth=2, max_depth=10)
        assert tree.match_index((5, 5)) == 0
