"""Tests for classifier distribution over a switch path (Section 9)."""

import random

import pytest

from repro.analysis.mrc import greedy_independent_set
from repro.core import Classifier, make_rule, uniform_schema
from repro.saxpac.distribution import (
    PathDistribution,
    priority_inversions,
)
from repro.workloads.generator import generate_classifier
from conftest import random_classifier


class TestPlacement:
    def test_everything_placed_exactly_once(self):
        k = generate_classifier("acl", 120, seed=1)
        dist = PathDistribution(k, [50, 50, 50])
        placed = [idx for rules in dist.assignments for idx in rules]
        assert sorted(placed) == list(range(len(k.body)))

    def test_capacities_respected(self):
        k = generate_classifier("acl", 120, seed=2)
        caps = [60, 40, 40]
        dist = PathDistribution(k, caps)
        for load, cap in zip(dist.loads(), caps):
            assert load.used <= cap
            assert load.capacity == cap

    def test_dependent_part_colocated(self):
        k = generate_classifier("fw", 150, seed=3)
        dist = PathDistribution(k, [80, 80, 80])
        dependent = set(
            greedy_independent_set(k).complement(len(k.body))
        )
        holders = {
            switch
            for switch, rules in enumerate(dist.assignments)
            if any(i in dependent for i in rules)
        }
        assert len(holders) <= 1

    def test_insufficient_total_capacity(self):
        k = generate_classifier("acl", 100, seed=4)
        with pytest.raises(ValueError):
            PathDistribution(k, [30, 30, 30])

    def test_dependent_part_too_big_for_any_switch(self):
        schema = uniform_schema(1, 6)
        # Nested rules: all but the first are order-dependent.
        k = Classifier(
            schema, [make_rule([(0, 40 - i)]) for i in range(10)]
        )
        with pytest.raises(ValueError):
            PathDistribution(k, [5, 5])

    def test_invalid_capacities(self):
        k = generate_classifier("acl", 10, seed=5)
        with pytest.raises(ValueError):
            PathDistribution(k, [])
        with pytest.raises(ValueError):
            PathDistribution(k, [10, -1])


class TestPathSemantics:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalent_to_monolithic(self, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=30)
        # Random classifiers are heavily order-dependent; the D part
        # lives on the last switch, so that one needs the room.
        dist = PathDistribution(k, [12, 12, 30])
        for header in k.sample_headers(200, rng):
            assert dist.match(header).index == k.match(header).index

    def test_single_switch_degenerate(self):
        rng = random.Random(9)
        k = random_classifier(rng, num_rules=20)
        dist = PathDistribution(k, [20])
        for header in k.sample_headers(100, rng):
            assert dist.match(header).index == k.match(header).index

    def test_miss_returns_catch_all(self):
        schema = uniform_schema(1, 5)
        k = Classifier(schema, [make_rule([(0, 3)])])
        dist = PathDistribution(k, [1])
        assert dist.match((9,)).rule is k.catch_all

    def test_classify_returns_action(self):
        from repro.core import DENY

        schema = uniform_schema(1, 5)
        k = Classifier(schema, [make_rule([(0, 3)], DENY)])
        dist = PathDistribution(k, [1])
        assert dist.classify((2,)) is DENY


class TestPriorityInversions:
    def test_independent_rules_never_invert(self):
        k = generate_classifier("acl", 150, seed=6)
        independent = greedy_independent_set(k)
        # Scatter I rules round-robin across 4 switches, worst ordering.
        assignments = [[], [], [], []]
        for pos, idx in enumerate(reversed(independent.rule_indices)):
            assignments[pos % 4].append(idx)
        assert priority_inversions(k, assignments) == 0

    def test_naive_split_of_whole_classifier_inverts(self):
        k = generate_classifier("fw", 200, seed=7)
        # Reverse round-robin of everything: high-priority rules land on
        # late switches.
        assignments = [[], [], [], []]
        for pos, idx in enumerate(reversed(range(len(k.body)))):
            assignments[pos % 4].append(idx)
        assert priority_inversions(k, assignments) > 0

    def test_path_distribution_has_zero_inversions(self):
        for style, seed in (("fw", 8), ("acl", 9), ("ipc", 10)):
            k = generate_classifier(style, 200, seed=seed)
            dist = PathDistribution(k, [100, 100, 100])
            assert priority_inversions(k, dist.assignments) == 0

    def test_load_report(self):
        k = generate_classifier("acl", 90, seed=9)
        dist = PathDistribution(k, [40, 40, 40])
        loads = dist.loads()
        assert sum(l.used for l in loads) == len(k.body)
        assert all(0.0 <= l.utilization <= 1.0 for l in loads)
