"""Tests for the exact grouping solvers, and greedy-vs-exact certification."""

import random

import pytest

from repro.analysis.exact import exact_max_coverage, exact_min_groups
from repro.analysis.lower_bounds import (
    hypercube_classifier,
    min_groups_hypercube,
)
from repro.analysis.mgr import beta_l_mrc, l_mgr
from repro.core import Classifier, make_rule, uniform_schema
from conftest import random_classifier


class TestExactMinGroups:
    def test_order_independent_needs_one_group(self, example2_classifier):
        assert exact_min_groups(example2_classifier, l=1) == 1

    def test_example3_needs_two_groups(self, example3_classifier):
        assert exact_min_groups(example3_classifier, l=2) == 2

    def test_hypercube_matches_theorem6(self):
        for k, l in ((3, 1), (3, 2), (4, 2)):
            classifier = hypercube_classifier(k)
            assert exact_min_groups(classifier, l) == min_groups_hypercube(
                k, l
            )

    def test_empty(self):
        schema = uniform_schema(1, 4)
        assert exact_min_groups(Classifier(schema, []), l=1) == 0

    def test_limit_enforced(self):
        rng = random.Random(0)
        k = random_classifier(rng, num_rules=20)
        with pytest.raises(ValueError):
            exact_min_groups(k, l=1, limit=10)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("l", [1, 2])
    def test_greedy_never_beats_exact(self, seed, l):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=9, num_fields=3)
        optimum = exact_min_groups(k, l)
        greedy = l_mgr(k, l=l).num_groups
        assert greedy >= optimum
        # Greedy first-fit stays close on tiny instances.
        assert greedy <= 2 * optimum + 1


class TestExactMaxCoverage:
    def test_beta_one_is_max_independent_subset(self):
        schema = uniform_schema(2, 5)
        k = Classifier(
            schema,
            [
                make_rule([(0, 10), (0, 10)]),
                make_rule([(5, 15), (5, 15)]),
                make_rule([(20, 25), (0, 31)]),
            ],
        )
        # Rules 0 and 2 are disjoint in field 0 -> one group of two.
        assert exact_max_coverage(k, beta=1, l=1) == 2

    def test_enough_groups_cover_everything(self, example3_classifier):
        assert exact_max_coverage(example3_classifier, beta=2, l=2) == 5

    def test_zero_beta(self, example3_classifier):
        assert exact_max_coverage(example3_classifier, beta=0, l=1) == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_greedy_never_beats_exact(self, seed):
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=8, num_fields=3)
        optimum = exact_max_coverage(k, beta=2, l=2)
        greedy = beta_l_mrc(k, beta=2, l=2).covered
        assert greedy <= optimum

    def test_more_groups_never_hurt(self):
        rng = random.Random(7)
        k = random_classifier(rng, num_rules=8, num_fields=3)
        coverages = [
            exact_max_coverage(k, beta=b, l=1) for b in (1, 2, 3)
        ]
        assert coverages == sorted(coverages)
