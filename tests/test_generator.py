"""Tests for the synthetic workload generators."""

import pytest

from repro.analysis.mrc import greedy_independent_set
from repro.core import Interval
from repro.workloads.generator import (
    BENCHMARK_NAMES,
    STYLES,
    add_random_range_fields,
    benchmark_suite,
    generate_classifier,
)


class TestGenerateClassifier:
    def test_determinism(self):
        a = generate_classifier("acl", 100, seed=7)
        b = generate_classifier("acl", 100, seed=7)
        assert [r.intervals for r in a.body] == [r.intervals for r in b.body]

    def test_different_seeds_differ(self):
        a = generate_classifier("acl", 100, seed=7)
        b = generate_classifier("acl", 100, seed=8)
        assert [r.intervals for r in a.body] != [r.intervals for r in b.body]

    def test_requested_size(self):
        k = generate_classifier("fw", 200, seed=1)
        assert len(k.body) == 200

    def test_schema_is_six_field(self):
        k = generate_classifier("ipc", 50, seed=2)
        assert k.schema.total_width == 120
        assert len(k.schema) == 6

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            generate_classifier("nope", 10, seed=0)

    def test_rules_fit_schema(self):
        k = generate_classifier("fw", 300, seed=3)
        for rule in k.body:
            for iv, spec in zip(rule.intervals, k.schema):
                assert 0 <= iv.low <= iv.high <= spec.max_value

    def test_no_duplicate_specific_rules(self):
        k = generate_classifier("acl", 300, seed=4)
        specific = [r.intervals for r in k.body if r.action.kind.value != "deny"]
        assert len(specific) == len(set(specific))

    @pytest.mark.parametrize("style,low,high", [
        ("acl", 0.90, 1.0),
        ("fw", 0.80, 1.0),
        ("ipc", 0.85, 1.0),
        ("cisco", 0.93, 1.0),
    ])
    def test_order_independent_fraction_in_paper_band(self, style, low, high):
        """The paper's headline: 90-95%+ of rules are order-independent."""
        k = generate_classifier(style, 800, seed=11)
        fraction = greedy_independent_set(k).size / len(k.body)
        assert low <= fraction <= high


class TestAddRandomRangeFields:
    def test_field_count_and_width(self):
        k = generate_classifier("acl", 30, seed=5)
        extended = add_random_range_fields(k, 2, seed=6)
        assert extended.num_fields == 8
        assert extended.schema.total_width == 152  # Table 1's K+2 width

    def test_catch_all_gets_wildcards(self):
        k = generate_classifier("acl", 10, seed=5)
        extended = add_random_range_fields(k, 1, seed=6)
        assert extended.catch_all.intervals[6] == Interval(0, 65535)

    def test_deterministic(self):
        k = generate_classifier("acl", 30, seed=5)
        a = add_random_range_fields(k, 2, seed=9)
        b = add_random_range_fields(k, 2, seed=9)
        assert [r.intervals for r in a.body] == [r.intervals for r in b.body]

    def test_extension_preserves_order_independence_of_subsets(self):
        # Theorem 1's premise: adding fields never creates intersections.
        k = generate_classifier("acl", 200, seed=12)
        base = greedy_independent_set(k)
        extended = add_random_range_fields(k, 2, seed=13)
        from repro.analysis.order_independence import rules_order_independent

        rules = [extended.rules[i] for i in base.rule_indices]
        assert rules_order_independent(rules)


class TestBenchmarkSuite:
    def test_all_names_present(self):
        suite = benchmark_suite(classbench_rules=50)
        assert set(suite) == set(BENCHMARK_NAMES)

    def test_cisco_sizes_match_paper(self):
        suite = benchmark_suite(classbench_rules=50)
        assert len(suite["cisco1"].body) == 584
        assert len(suite["cisco3"].body) == 95

    def test_classbench_scaling(self):
        suite = benchmark_suite(classbench_rules=80)
        assert len(suite["acl1"].body) == 80

    def test_styles_cover_all(self):
        assert set(STYLES) == {"acl", "fw", "ipc", "cisco"}
