"""Tests for ternary TCAM entries."""

import pytest
from hypothesis import given, strategies as st

from repro.tcam.entry import TernaryEntry, concat_entries, entry_from_pattern


class TestTernaryEntry:
    def test_exact_match(self):
        entry = TernaryEntry(0b1010, 0b1111, 4)
        assert entry.matches(0b1010)
        assert not entry.matches(0b1011)

    def test_wildcard_bits(self):
        entry = entry_from_pattern("10**")
        assert entry.matches(0b1000)
        assert entry.matches(0b1011)
        assert not entry.matches(0b0000)

    def test_full_wildcard(self):
        entry = entry_from_pattern("****")
        for key in range(16):
            assert entry.matches(key)

    def test_value_normalized_under_mask(self):
        a = TernaryEntry(0b1111, 0b1100, 4)
        b = TernaryEntry(0b1100, 0b1100, 4)
        assert a == b

    def test_width_validation(self):
        with pytest.raises(ValueError):
            TernaryEntry(0, 0b10000, 4)
        with pytest.raises(ValueError):
            TernaryEntry(0b10000, 0, 4)

    def test_num_wildcards(self):
        assert entry_from_pattern("1*0*").num_wildcards == 2


class TestPatternRoundtrip:
    @given(st.text(alphabet="01*", min_size=1, max_size=16))
    def test_roundtrip_property(self, pattern):
        entry = entry_from_pattern(pattern)
        assert entry.pattern() == pattern
        assert entry.width == len(pattern)

    def test_bad_character_rejected(self):
        with pytest.raises(ValueError):
            entry_from_pattern("10x*")

    @given(st.text(alphabet="01*", min_size=1, max_size=12), st.data())
    def test_matches_agrees_with_pattern_semantics(self, pattern, data):
        entry = entry_from_pattern(pattern)
        key = data.draw(st.integers(0, (1 << len(pattern)) - 1))
        expected = all(
            ch == "*" or int(ch) == (key >> (len(pattern) - 1 - i)) & 1
            for i, ch in enumerate(pattern)
        )
        assert entry.matches(key) == expected


class TestConcat:
    def test_concat_order_msb_first(self):
        left = entry_from_pattern("10")
        right = entry_from_pattern("0*")
        combined = concat_entries([left, right])
        assert combined.pattern() == "100*"

    def test_concat_matches_concatenated_keys(self):
        left = entry_from_pattern("1*")
        right = entry_from_pattern("01")
        combined = concat_entries([left, right])
        # key = (left_key << 2) | right_key
        assert combined.matches((0b10 << 2) | 0b01)
        assert combined.matches((0b11 << 2) | 0b01)
        assert not combined.matches((0b10 << 2) | 0b11)

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            concat_entries([])
