"""SLO engine: spec validation, multi-window burn math on an injected
clock, fast-burn detection, gauge export, and /healthz degradation."""

import json
import random

import pytest

from conftest import random_classifier
from repro.obs.slo import (
    WINDOWS,
    SLOEngine,
    SLOSpec,
    default_slos,
    load_slo_specs,
)
from repro.runtime.service import RuntimeService
from repro.runtime.telemetry import Telemetry


class FakeSnapshot:
    """Just enough TelemetrySnapshot surface for SLOEngine.ingest."""

    def __init__(self, counters, latencies=None):
        self._counters = dict(counters)
        self.latencies = dict(latencies or {})

    def counter(self, name):
        return self._counters.get(name, 0)


class FakeHistogram:
    def __init__(self, buckets, count, total=0.0):
        self.buckets = tuple(buckets)
        self.count = count
        self.total = total

    @staticmethod
    def bucket_upper_bound(index):
        return float(1 << index) / 1e6


def spec(**overrides):
    base = dict(
        name="serve",
        total_counters=("net.requests",),
        bad_counters=("net.shed",),
        availability=0.99,
    )
    base.update(overrides)
    return SLOSpec(**base)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now


def engine(*specs_, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("min_interval_s", 0.0)
    return SLOEngine(specs=specs_ or None, clock=clock, **kwargs), clock


class TestSpec:
    def test_requires_total_counters(self):
        with pytest.raises(ValueError, match="total counters"):
            SLOSpec(name="x", total_counters=())

    def test_objectives_must_be_fractions(self):
        with pytest.raises(ValueError):
            spec(availability=1.0)
        with pytest.raises(ValueError):
            spec(
                latency_histogram="net.request",
                latency_s=0.1,
                latency_objective=0.0,
            )

    def test_latency_fields_set_together(self):
        with pytest.raises(ValueError, match="together"):
            spec(latency_s=0.1)

    def test_dict_round_trip(self):
        original = spec(latency_histogram="net.request", latency_s=0.1)
        assert SLOSpec.from_dict(original.as_dict()) == original

    def test_default_slos_cover_serve_and_runtime(self):
        names = [s.name for s in default_slos()]
        assert names == ["serve", "runtime"]

    def test_load_specs_wrapped_and_bare(self, tmp_path):
        items = [spec().as_dict()]
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"slos": items}))
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(items))
        assert load_slo_specs(str(wrapped)) == (spec(),)
        assert load_slo_specs(str(bare)) == (spec(),)


class TestBurnRates:
    def test_single_sample_burns_nothing(self):
        eng, _ = engine(spec())
        eng.ingest(FakeSnapshot({"net.requests": 100, "net.shed": 100}))
        burns = eng.burn_rates()["serve"]
        assert all(
            burns[label]["availability"] == 0.0 for label, _ in WINDOWS
        )
        assert eng.fast_burning() == []

    def test_availability_burn_math(self):
        """60% errors against a 1% budget is a burn of 60 on every
        window — the textbook fast-burn page."""
        eng, clock = engine(spec())
        eng.ingest(FakeSnapshot({"net.requests": 0, "net.shed": 0}))
        clock.now += 60
        eng.ingest(FakeSnapshot({"net.requests": 100, "net.shed": 60}))
        burns = eng.burn_rates()["serve"]
        for label, _ in WINDOWS:
            assert burns[label]["availability"] == pytest.approx(60.0)
        assert eng.fast_burning() == ["serve"]

    def test_short_window_resets_once_bleeding_stops(self):
        """After the incident, the 5m window's base sample moves past the
        bad period and its burn collapses — so fast-burn (which needs
        every window hot) clears quickly."""
        eng, clock = engine(spec())
        eng.ingest(FakeSnapshot({"net.requests": 0, "net.shed": 0}))
        clock.now += 60
        eng.ingest(FakeSnapshot({"net.requests": 100, "net.shed": 60}))
        assert eng.fast_burning() == ["serve"]
        # Ten clean minutes: plenty of healthy traffic, no new errors.
        clock.now += 600
        eng.ingest(FakeSnapshot({"net.requests": 2000, "net.shed": 60}))
        burns = eng.burn_rates()["serve"]
        assert burns["5m"]["availability"] == 0.0
        assert burns["1h"]["availability"] > 0.0  # still remembers
        assert eng.fast_burning() == []

    def test_latency_burn_from_histogram_buckets(self):
        slo = spec(
            bad_counters=(),
            latency_histogram="net.request",
            # Bucket upper bounds are 2^i us; 1024us keeps buckets <= 10
            # inside the objective.
            latency_s=1024e-6,
        )
        eng, clock = engine(slo)
        eng.ingest(FakeSnapshot({"net.requests": 0}))
        clock.now += 60
        buckets = [0] * 40
        buckets[5] = 800  # fast: 32us
        buckets[20] = 200  # slow: ~1s
        eng.ingest(
            FakeSnapshot(
                {"net.requests": 1000},
                latencies={"net.request": FakeHistogram(buckets, 1000)},
            )
        )
        burns = eng.burn_rates()["serve"]
        # 20% over threshold against a 1% latency budget.
        for label, _ in WINDOWS:
            assert burns[label]["latency"] == pytest.approx(20.0)
        assert eng.fast_burning() == ["serve"]

    def test_ingest_throttles_below_min_interval(self):
        eng, clock = engine(spec(), min_interval_s=5.0)
        assert eng.ingest(FakeSnapshot({"net.requests": 1})) is True
        clock.now += 1.0
        assert eng.ingest(FakeSnapshot({"net.requests": 2})) is False
        clock.now += 5.0
        assert eng.ingest(FakeSnapshot({"net.requests": 3})) is True

    def test_history_bounded_by_horizon(self):
        eng, clock = engine(spec())
        for _ in range(200):
            clock.now += 60
            eng.ingest(FakeSnapshot({"net.requests": 1}))
        ring = eng._samples["serve"]
        assert ring[-1].t - ring[0].t <= 3600 * 1.25


class TestExport:
    def test_gauges_per_spec_window_and_objective(self):
        eng, clock = engine(spec())
        eng.ingest(FakeSnapshot({"net.requests": 0, "net.shed": 0}))
        clock.now += 60
        eng.ingest(FakeSnapshot({"net.requests": 100, "net.shed": 60}))
        gauges = eng.gauges()
        assert set(gauges) == {
            "slo.serve.availability_burn_5m",
            "slo.serve.availability_burn_1h",
            "slo.serve.latency_burn_5m",
            "slo.serve.latency_burn_1h",
            "slo.serve.fast_burn",
        }
        assert gauges["slo.serve.availability_burn_5m"] == pytest.approx(60.0)
        assert gauges["slo.serve.fast_burn"] == 1.0

    def test_status_is_json_ready(self):
        eng, _ = engine(spec())
        status = eng.status()
        assert status["fast_burn_threshold"] == 14.4
        assert status["fast_burning"] == []
        assert status["specs"] == [spec().as_dict()]
        json.dumps(status)  # must serialize as-is


class TestHealthzIntegration:
    def test_fast_burn_degrades_health_payload(self):
        """An injected fast burn must flip /healthz to 503/slo-burn even
        while the health ladder itself is green."""
        classifier = random_classifier(random.Random(3), num_rules=10)
        service = RuntimeService(classifier, recorder=Telemetry())
        try:
            service.slo = SLOEngine(specs=[spec()], min_interval_s=0.0)
            healthy, payload = service.health_payload()
            assert healthy and payload["status"] == "ok"
            # 60% of requests shed since the baseline sample.
            service.telemetry.incr("net.requests", 100)
            service.telemetry.incr("net.shed", 60)
            healthy, payload = service.health_payload()
            assert healthy is False
            assert payload["status"] == "slo-burn"
            assert payload["slo_fast_burn"] == ["serve"]
            gauges = service.gauges()
            assert gauges["slo.serve.fast_burn"] == 1.0
        finally:
            service.close()
