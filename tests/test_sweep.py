"""Tests for the output-sensitive sweep-line conflict enumeration."""

import random

import numpy as np
import pytest

from repro.analysis.order_independence import (
    conflict_matrix,
    is_order_independent,
)
from repro.analysis.sweep import (
    conflict_pairs,
    estimate_overlap_counts,
    is_order_independent_sweep,
    overlapping_pairs,
)
from repro.core import Classifier, make_rule, uniform_schema
from conftest import random_classifier


class TestEstimateOverlapCounts:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=20, num_fields=3)
        counts = estimate_overlap_counts(k)
        body = k.body
        for f in range(3):
            brute = sum(
                1
                for i in range(len(body) - 1)
                for j in range(i + 1, len(body))
                if body[i].intervals[f].overlaps(body[j].intervals[f])
            )
            assert counts[f] == brute

    def test_disjoint_field_counts_zero(self):
        schema = uniform_schema(2, 6)
        k = Classifier(
            schema,
            [make_rule([(i * 10, i * 10 + 5), (0, 63)]) for i in range(5)],
        )
        counts = estimate_overlap_counts(k)
        assert counts[0] == 0
        assert counts[1] == 10  # all pairs overlap the wildcard field


class TestOverlappingPairs:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("field", [0, 1])
    def test_matches_bruteforce(self, seed, field):
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=18, num_fields=2)
        got = sorted(overlapping_pairs(k, field))
        body = k.body
        expected = sorted(
            (i, j)
            for i in range(len(body) - 1)
            for j in range(i + 1, len(body))
            if body[i].intervals[field].overlaps(body[j].intervals[field])
        )
        assert got == expected

    def test_no_duplicates(self):
        rng = random.Random(5)
        k = random_classifier(rng, num_rules=25, num_fields=1)
        pairs = list(overlapping_pairs(k, 0))
        assert len(pairs) == len(set(pairs))

    def test_identical_intervals(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(2, 5)]) for _ in range(4)])
        assert len(list(overlapping_pairs(k, 0))) == 6


class TestConflictPairs:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_conflict_matrix(self, seed):
        rng = random.Random(200 + seed)
        k = random_classifier(rng, num_rules=22)
        got = conflict_pairs(k)
        matrix = conflict_matrix(k)
        expected = sorted(
            (i, j)
            for i, j in zip(*np.nonzero(np.triu(matrix, k=1)))
        )
        assert got == [(int(i), int(j)) for i, j in expected]

    @pytest.mark.parametrize("field", [0, 1, 2])
    def test_any_sweep_field_gives_same_answer(self, field):
        rng = random.Random(9)
        k = random_classifier(rng, num_rules=20)
        assert conflict_pairs(k, sweep_field=field) == conflict_pairs(k)

    def test_limit_stops_early(self):
        schema = uniform_schema(1, 6)
        k = Classifier(schema, [make_rule([(0, 60)]) for _ in range(6)])
        assert len(conflict_pairs(k, limit=3)) == 3

    def test_empty_and_single_rule(self):
        schema = uniform_schema(1, 4)
        assert conflict_pairs(Classifier(schema, [])) == []
        assert conflict_pairs(
            Classifier(schema, [make_rule([(0, 3)])])
        ) == []


class TestSweepOrderIndependence:
    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_matrix_check(self, seed):
        rng = random.Random(300 + seed)
        k = random_classifier(rng, num_rules=24)
        assert is_order_independent_sweep(k) == is_order_independent(k)

    def test_paper_examples(self, example1_classifier, example3_classifier):
        assert is_order_independent_sweep(example1_classifier)
        assert not is_order_independent_sweep(example3_classifier)
