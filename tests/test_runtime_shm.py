"""Tests for repro.runtime.shm: the shared-memory shard transport.

Covers the snapshot codec, byte-identical serving vs the linear
reference, ring wraparound under sustained load, worker crash →
respawn + slot reclamation, hot-swap snapshot shipping, and the
schema-width guard.
"""

import random

import numpy as np
import pytest

from conftest import random_classifier
from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultPlan
from repro.core import Classifier, make_rule, uniform_schema
from repro.runtime.shard import ShardedRuntime
from repro.runtime.shm import pack_snapshot, unpack_snapshot
from repro.runtime.telemetry import Telemetry
from repro.saxpac.config import EngineConfig
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.traces import generate_trace


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(31)
    classifier = random_classifier(rng, num_rules=40)
    trace = generate_trace(classifier, 400, seed=8)
    block = np.ascontiguousarray(np.asarray(trace, dtype=np.uint32))
    expected = [r.index for r in classifier.match_batch(trace)]
    return classifier, trace, block, expected


class TestSnapshot:
    def test_round_trip_preserves_decisions(self, setup):
        classifier, trace, _, expected = setup
        payload = pack_snapshot(classifier, EngineConfig())
        rebuilt, config = unpack_snapshot(payload)
        assert isinstance(config, EngineConfig)
        assert len(rebuilt.rules) == len(classifier.rules)
        got = [r.index for r in rebuilt.match_batch(trace[:100])]
        assert got == expected[:100]

    def test_round_trip_preserves_names(self, setup):
        classifier, _, _, _ = setup
        named = Classifier(
            classifier.schema,
            [make_rule([(1, 3), (0, 63), (4, 9)], name="R1")]
            + list(classifier.body),
        )
        rebuilt, _ = unpack_snapshot(pack_snapshot(named, EngineConfig()))
        assert rebuilt.rules[0].name == "R1"
        assert rebuilt.rules[1].name == named.rules[1].name

    def test_snapshot_is_columnar_not_pickled_rules(self, setup):
        classifier, _, _, _ = setup
        payload = pack_snapshot(classifier, EngineConfig())
        # Bounds travel as raw int64 bytes, not per-rule objects.
        assert isinstance(payload["lows"], bytes)
        assert isinstance(payload["highs"], bytes)


class TestShmMode:
    def test_matches_reference_on_wire_blocks(self, setup):
        classifier, _, block, expected = setup
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm"
        ) as sharded:
            got = sharded.match_indices(block)
        assert list(got) == expected

    def test_matches_reference_on_tuple_headers(self, setup):
        classifier, trace, _, expected = setup
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm"
        ) as sharded:
            got = sharded.match_indices(trace[:120])
        assert list(got) == expected[:120]

    def test_empty_batch(self, setup):
        classifier, _, _, _ = setup
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm"
        ) as sharded:
            assert sharded.match_indices([]) == []

    def test_ring_wraparound(self, setup):
        # Slots are reused once SEQ_DONE catches SEQ_SUBMIT; a tiny
        # ring forces every slot through many submit/complete cycles.
        classifier, _, block, expected = setup
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm",
            shm_capacity=32, shm_depth=2,
        ) as sharded:
            for _ in range(3):
                got = []
                for start in range(0, len(block), 64):
                    got.extend(sharded.match_indices(block[start:start + 64]))
                assert got == expected

    def test_batch_larger_than_slot_capacity_is_rechunked(self, setup):
        classifier, _, block, expected = setup
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm",
            shm_capacity=64, shm_depth=2,
        ) as sharded:
            got = sharded.match_indices(block)  # 400 pkts > 2x64 slots
        assert list(got) == expected

    def test_slot_reuse_before_wait_preserves_results(self, setup):
        # An oversize batch submits all chunks up front, so a slot whose
        # worker already finished can be reclaimed before its handle is
        # waited on.  The pool must copy those results out (stash) —
        # otherwise the worker overwrites the results slab under the
        # outstanding handle and wait() returns the *newer* chunk's
        # answers for the older handle.
        import time as _time

        from repro.runtime.shm import SEQ_DONE

        classifier, _, block, expected = setup
        with ShardedRuntime(
            classifier=classifier, num_shards=1, mode="shm",
            shm_capacity=64, shm_depth=1,
        ) as sharded:
            pool = sharded._shm_pool
            h1 = pool.submit(0, block[:64])
            # Let the worker finish h1 without consuming the handle.
            deadline = _time.monotonic() + 10
            while pool.ring.ctrl[h1[1]][SEQ_DONE] < h1[2]:
                assert _time.monotonic() < deadline
                _time.sleep(0.001)
            h2 = pool.submit(0, block[64:128])  # reclaims h1's slot
            s2, r2 = pool.wait(h2, 10.0)
            s1, r1 = pool.wait(h1, 10.0)
        assert (s1, list(r1)) == ("ok", expected[:64])
        assert (s2, list(r2)) == ("ok", expected[64:128])

    def test_rejects_schema_wider_than_32_bits(self):
        schema = uniform_schema(2, 40)
        classifier = Classifier(
            schema, [make_rule([(0, 1 << 35), (5, 9)])]
        )
        with pytest.raises(ValueError, match="32 bits"):
            ShardedRuntime(classifier=classifier, num_shards=1, mode="shm")

    def test_rejects_engine_with_shm_mode(self, setup):
        classifier, _, _, _ = setup
        engine = SaxPacEngine(classifier)
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, num_shards=2, mode="shm")

    def test_close_idempotent(self, setup):
        classifier, _, _, _ = setup
        sharded = ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm"
        )
        sharded.close()
        sharded.close()


class TestCrashRecovery:
    def test_worker_crash_respawns_and_reclaims_slots(self, setup):
        # After one clean chunk each worker dies mid-chunk (a real
        # os._exit, not an exception); the dispatcher must reclaim the
        # lost slot, respawn the worker and retry to the exact answers.
        classifier, _, block, expected = setup
        plan = FaultPlan.from_dict({
            "seed": 3,
            "faults": [
                {"site": "shard.worker", "kind": "crash",
                 "times": 1, "after": 1},
            ],
        })
        tel = Telemetry()
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm",
            recorder=tel, injector=FaultInjector(plan),
            max_retries=3, on_error="fallback",
        ) as sharded:
            for _ in range(3):
                assert list(sharded.match_indices(block)) == expected
            reclaimed = sharded._shm_pool.slots_reclaimed
            # The crash budget is shared across respawns (as in thread
            # mode), so once it is spent the fleet stays up.
            for _ in range(2):
                assert list(sharded.match_indices(block)) == expected
            assert sharded._shm_pool.slots_reclaimed == reclaimed
            assert sharded._shm_pool.workers_alive() == 2
        snap = tel.snapshot()
        assert snap.counter("runtime.worker_errors") >= 1
        assert snap.counter("runtime.retries") >= 1
        assert reclaimed >= 1

    def test_workers_stay_up_without_chaos(self, setup):
        classifier, _, block, expected = setup
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm"
        ) as sharded:
            for _ in range(3):
                sharded.match_indices(block)
            assert sharded._shm_pool.workers_alive() == 2
            assert sharded._shm_pool.slots_reclaimed == 0


class TestHotSwap:
    def test_swap_ships_one_snapshot_and_tracks_rules(self, setup):
        classifier, trace, block, expected = setup
        rng = random.Random(77)
        replacement = random_classifier(rng, num_rules=40)
        want_after = [r.index for r in replacement.match_batch(trace)]
        engines = {"current": SaxPacEngine(classifier)}
        tel = Telemetry()
        with ShardedRuntime(
            engine_source=lambda: engines["current"], num_shards=2,
            mode="shm", recorder=tel,
        ) as sharded:
            assert list(sharded.match_indices(block)) == expected
            engines["current"] = SaxPacEngine(replacement)
            assert list(sharded.match_indices(block)) == want_after
            # A second batch against the same engine ships nothing new.
            assert list(sharded.match_indices(block)) == want_after
        assert tel.counter("runtime.snapshot_ships") == 1

    def test_match_batch_materializes_against_swapped_rules(self, setup):
        classifier, trace, _, _ = setup
        rng = random.Random(78)
        replacement = random_classifier(rng, num_rules=30)
        engines = {"current": SaxPacEngine(classifier)}
        with ShardedRuntime(
            engine_source=lambda: engines["current"], num_shards=2,
            mode="shm",
        ) as sharded:
            engines["current"] = SaxPacEngine(replacement)
            results = sharded.match_batch(trace[:50])
        for header, result in zip(trace[:50], results):
            want = replacement.match(header)
            assert result.index == want.index
            assert result.rule is want.rule


class TestObservability:
    def test_worker_telemetry_ships_back(self, setup):
        classifier, _, block, _ = setup
        tel = Telemetry()
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm",
            recorder=tel,
        ) as sharded:
            sharded.match_indices(block[:120])
            sharded.collect()
            snap = tel.snapshot()
        assert snap.counter("engine.lookups") == 120
        assert "engine.match_batch" in snap.latencies

    def test_worker_spans_nest_under_caller(self, setup):
        from repro.obs import Observability

        classifier, _, block, _ = setup
        obs = Observability.create(tracing=True, heat=True)
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="shm",
            recorder=obs.recorder,
        ) as sharded:
            with obs.tracer.span("batch") as batch:
                sharded.match_indices(block[:100])
            sharded.collect()
        assert obs.heat.seen_packets == 100
        chunks = [
            s for s in obs.tracer.spans() if s.name == "shard.chunk"
        ]
        assert chunks
        assert all(s.parent_id == batch.span_id for s in chunks)
        assert all(s.trace_id == batch.trace_id for s in chunks)
        assert any(s.pid != batch.pid for s in chunks)
