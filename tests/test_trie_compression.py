"""Tests for the Section 4.4 trie/XBW vs bit-subset comparison."""

import random

import pytest

from repro.boolean.trie_compression import (
    BinaryTrie,
    bit_subset_size_bits,
    distinguishing_bits,
    xbw_size_bits,
)

#: The paper's Section 4.4 example: four exact 8-bit rules.
PAPER_VALUES = (148, 83, 165, 102)


class TestBinaryTrie:
    def test_single_value_nodes(self):
        trie = BinaryTrie.from_values([5], 4)
        assert trie.num_nodes == 4
        assert trie.num_leaves == 1

    def test_shared_prefixes(self):
        # 0b1000 and 0b1001 share three prefix nodes.
        trie = BinaryTrie.from_values([8, 9], 4)
        assert trie.num_nodes == 5
        assert trie.num_leaves == 2

    def test_paper_example_node_count(self):
        """The paper reports 27 nodes; exact distinct-prefix counting
        yields 28 (per level: 2+2+4+4+4+4+4+4), still well below the
        unshared 4 * W = 32.  We assert the verifiable count."""
        trie = BinaryTrie.from_values(PAPER_VALUES, 8)
        assert trie.num_nodes == 28
        assert trie.num_nodes < 4 * 8

    def test_contains(self):
        trie = BinaryTrie.from_values([3], 4)
        assert trie.contains(3)
        assert not trie.contains(4)

    def test_value_range_checked(self):
        trie = BinaryTrie(4)
        with pytest.raises(ValueError):
            trie.insert(16)


class TestXbwSize:
    def test_paper_example_size(self):
        """27+27+8 = 62 bits in the paper; with the exact 28-node count it
        is 64 bits — either way ~4x the bit-subset representation."""
        trie = BinaryTrie.from_values(PAPER_VALUES, 8)
        assert xbw_size_bits(trie, action_bits=2) == 2 * 28 + 4 * 2


class TestDistinguishingBits:
    def test_paper_example_two_bits(self):
        bits = distinguishing_bits(PAPER_VALUES, 8)
        assert len(bits) == 2
        # Verify the chosen bits actually distinguish all four rules.
        keys = {
            tuple((v >> (8 - 1 - b)) & 1 for b in bits)
            for v in PAPER_VALUES
        }
        assert len(keys) == 4

    def test_paper_bits_third_and_seventh_work(self):
        # The paper picks the 3rd and 7th bits (1-indexed, MSB first):
        # indices 2 and 6 — values 00, 01, 10, 11.
        keys = {
            ((v >> 5) & 1, (v >> 1) & 1) for v in PAPER_VALUES
        }
        assert len(keys) == 4

    def test_single_value(self):
        assert distinguishing_bits([7], 4) == ()

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            distinguishing_bits([1, 1], 4)

    def test_adjacent_values_need_one_bit(self):
        assert len(distinguishing_bits([0, 1], 4)) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_random_sets_distinguished(self, seed):
        rng = random.Random(seed)
        values = rng.sample(range(256), 10)
        bits = distinguishing_bits(values, 8, exact_limit=0)
        keys = {
            tuple((v >> (8 - 1 - b)) & 1 for b in bits) for v in values
        }
        assert len(keys) == len(values)


class TestComparison:
    def test_paper_headline_four_x(self):
        """The order-independent bit-subset representation costs 16 bits,
        roughly 4x below the XBW-l transform."""
        trie = BinaryTrie.from_values(PAPER_VALUES, 8)
        xbw = xbw_size_bits(trie, action_bits=2)
        subset = bit_subset_size_bits(PAPER_VALUES, 8, action_bits=2)
        assert subset == 16
        assert xbw >= 3.5 * subset

    def test_subset_size_with_explicit_bits(self):
        size = bit_subset_size_bits(
            PAPER_VALUES, 8, action_bits=2, bits=(2, 6)
        )
        assert size == 4 * (2 + 2)
