"""Tests for repro.runtime.shard: chunking, merge order, both modes."""

import random

import pytest

from conftest import random_classifier
from repro.runtime.shard import ShardedRuntime, default_num_shards
from repro.runtime.telemetry import Telemetry
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.traces import generate_trace


@pytest.fixture
def setup():
    rng = random.Random(21)
    classifier = random_classifier(rng, num_rules=40)
    engine = SaxPacEngine(classifier)
    trace = generate_trace(classifier, 400, seed=5)
    return classifier, engine, trace


class TestConstruction:
    def test_default_num_shards_positive(self):
        assert default_num_shards() >= 1

    def test_requires_exactly_one_source(self, setup):
        classifier, engine, _ = setup
        with pytest.raises(ValueError):
            ShardedRuntime()
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, classifier=classifier)

    def test_rejects_unknown_mode(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, mode="fiber")

    def test_process_mode_needs_classifier(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, mode="process")

    def test_rejects_nonpositive_shards(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, num_shards=0)


class TestThreadMode:
    def test_matches_unsharded(self, setup):
        classifier, engine, trace = setup
        want = [r.index for r in engine.match_batch(trace)]
        with ShardedRuntime(engine=engine, num_shards=3) as sharded:
            assert sharded.match_indices(trace) == want

    def test_match_batch_materializes_results(self, setup):
        classifier, engine, trace = setup
        with ShardedRuntime(engine=engine, num_shards=3) as sharded:
            results = sharded.match_batch(trace[:50])
        for header, result in zip(trace[:50], results):
            want = classifier.match(header)
            assert result.index == want.index
            assert result.rule is want.rule

    def test_batch_smaller_than_shards(self, setup):
        classifier, engine, trace = setup
        with ShardedRuntime(engine=engine, num_shards=8) as sharded:
            got = sharded.match_indices(trace[:3])
        assert got == [classifier.match(h).index for h in trace[:3]]

    def test_empty_batch(self, setup):
        _, engine, _ = setup
        with ShardedRuntime(engine=engine, num_shards=2) as sharded:
            assert sharded.match_indices([]) == []

    def test_from_classifier(self, setup):
        classifier, engine, trace = setup
        with ShardedRuntime(classifier=classifier, num_shards=2) as sharded:
            got = sharded.match_indices(trace[:100])
        assert got == [r.index for r in engine.match_batch(trace[:100])]

    def test_engine_source_sees_swaps(self, setup):
        classifier, engine, trace = setup
        engines = {"current": engine}
        with ShardedRuntime(
            engine_source=lambda: engines["current"], num_shards=2
        ) as sharded:
            before = sharded.match_indices(trace[:100])
            # Swap in a fresh replica mid-stream; shards must observe it.
            engines["current"] = SaxPacEngine(classifier)
            after = sharded.match_indices(trace[:100])
        assert before == after  # same rules, new engine object

    def test_telemetry(self, setup):
        _, engine, trace = setup
        tel = Telemetry()
        with ShardedRuntime(
            engine=engine, num_shards=4, recorder=tel
        ) as sharded:
            sharded.match_indices(trace)
        snap = tel.snapshot()
        assert snap.counter("shard.batches") == 1
        assert snap.counter("shard.packets") == len(trace)
        assert snap.counter("shard.chunks") == 4

    def test_close_idempotent(self, setup):
        _, engine, _ = setup
        sharded = ShardedRuntime(engine=engine, num_shards=2)
        sharded.close()
        sharded.close()


class TestThreadModeFoldBack:
    def test_replica_engine_telemetry_folds_back(self, setup):
        # The bug this guards: deep-copied replicas used to record into
        # private recorder copies whose data vanished.
        classifier, engine, trace = setup
        tel = Telemetry()
        with ShardedRuntime(
            engine=engine, num_shards=3, recorder=tel
        ) as sharded:
            sharded.match_indices(trace)
            sharded.collect()
            snap = tel.snapshot()
        assert snap.counter("engine.lookups") == len(trace)
        assert "engine.match_batch" in snap.latencies

    def test_collect_is_idempotent(self, setup):
        _, engine, trace = setup
        tel = Telemetry()
        with ShardedRuntime(
            engine=engine, num_shards=2, recorder=tel
        ) as sharded:
            sharded.match_indices(trace)
            sharded.collect()
            sharded.collect()
        assert tel.counter("engine.lookups") == len(trace)

    def test_close_restores_original_recorder(self, setup):
        _, engine, _ = setup
        original = engine.recorder
        sharded = ShardedRuntime(
            engine=engine, num_shards=2, recorder=Telemetry()
        )
        assert engine.recorder is not original  # rebound while sharded
        sharded.close()
        assert engine.recorder is original

    def test_replica_heat_lands_in_shared_profiler(self, setup):
        from repro.obs import Observability

        _, engine, trace = setup
        obs = Observability.create(tracing=False, heat=True)
        with ShardedRuntime(
            engine=engine, num_shards=3, recorder=obs.recorder
        ) as sharded:
            sharded.match_indices(trace)
        assert obs.heat.seen_packets == len(trace)

    def test_chunk_spans_nest_under_caller(self, setup):
        from repro.obs import Observability

        _, engine, trace = setup
        obs = Observability.create(tracing=True, heat=False)
        with ShardedRuntime(
            engine=engine, num_shards=2, recorder=obs.recorder
        ) as sharded:
            with obs.tracer.span("batch") as batch:
                sharded.match_indices(trace[:50])
        spans = obs.tracer.spans()
        chunks = [s for s in spans if s.name == "shard.chunk"]
        assert chunks, "expected shard.chunk spans"
        assert all(s.parent_id == batch.span_id for s in chunks)
        assert all(s.trace_id == batch.trace_id for s in chunks)


class TestProcessMode:
    def test_matches_unsharded(self, setup):
        classifier, engine, trace = setup
        want = [r.index for r in engine.match_batch(trace[:120])]
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="process"
        ) as sharded:
            got = sharded.match_indices(trace[:120])
        assert got == want

    def test_worker_telemetry_ships_back(self, setup):
        classifier, _, trace = setup
        tel = Telemetry()
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="process",
            recorder=tel,
        ) as sharded:
            sharded.match_indices(trace[:120])
            snap = tel.snapshot()
        assert snap.counter("engine.lookups") == 120
        assert "engine.match_batch" in snap.latencies

    def test_worker_spans_and_heat_ship_back(self, setup):
        from repro.obs import Observability

        classifier, _, trace = setup
        obs = Observability.create(tracing=True, heat=True)
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="process",
            recorder=obs.recorder,
        ) as sharded:
            with obs.tracer.span("batch") as batch:
                sharded.match_indices(trace[:100])
        assert obs.heat.seen_packets == 100
        chunks = [
            s for s in obs.tracer.spans() if s.name == "shard.chunk"
        ]
        assert chunks
        assert all(s.parent_id == batch.span_id for s in chunks)
        assert any(s.pid != batch.pid for s in chunks)
