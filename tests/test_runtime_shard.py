"""Tests for repro.runtime.shard: chunking, merge order, both modes."""

import random

import pytest

from conftest import random_classifier
from repro.runtime.shard import ShardedRuntime, default_num_shards
from repro.runtime.telemetry import Telemetry
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.traces import generate_trace


@pytest.fixture
def setup():
    rng = random.Random(21)
    classifier = random_classifier(rng, num_rules=40)
    engine = SaxPacEngine(classifier)
    trace = generate_trace(classifier, 400, seed=5)
    return classifier, engine, trace


class TestConstruction:
    def test_default_num_shards_positive(self):
        assert default_num_shards() >= 1

    def test_requires_exactly_one_source(self, setup):
        classifier, engine, _ = setup
        with pytest.raises(ValueError):
            ShardedRuntime()
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, classifier=classifier)

    def test_rejects_unknown_mode(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, mode="fiber")

    def test_process_mode_needs_classifier(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, mode="process")

    def test_rejects_nonpositive_shards(self, setup):
        _, engine, _ = setup
        with pytest.raises(ValueError):
            ShardedRuntime(engine=engine, num_shards=0)


class TestThreadMode:
    def test_matches_unsharded(self, setup):
        classifier, engine, trace = setup
        want = [r.index for r in engine.match_batch(trace)]
        with ShardedRuntime(engine=engine, num_shards=3) as sharded:
            assert sharded.match_indices(trace) == want

    def test_match_batch_materializes_results(self, setup):
        classifier, engine, trace = setup
        with ShardedRuntime(engine=engine, num_shards=3) as sharded:
            results = sharded.match_batch(trace[:50])
        for header, result in zip(trace[:50], results):
            want = classifier.match(header)
            assert result.index == want.index
            assert result.rule is want.rule

    def test_batch_smaller_than_shards(self, setup):
        classifier, engine, trace = setup
        with ShardedRuntime(engine=engine, num_shards=8) as sharded:
            got = sharded.match_indices(trace[:3])
        assert got == [classifier.match(h).index for h in trace[:3]]

    def test_empty_batch(self, setup):
        _, engine, _ = setup
        with ShardedRuntime(engine=engine, num_shards=2) as sharded:
            assert sharded.match_indices([]) == []

    def test_from_classifier(self, setup):
        classifier, engine, trace = setup
        with ShardedRuntime(classifier=classifier, num_shards=2) as sharded:
            got = sharded.match_indices(trace[:100])
        assert got == [r.index for r in engine.match_batch(trace[:100])]

    def test_engine_source_sees_swaps(self, setup):
        classifier, engine, trace = setup
        engines = {"current": engine}
        with ShardedRuntime(
            engine_source=lambda: engines["current"], num_shards=2
        ) as sharded:
            before = sharded.match_indices(trace[:100])
            # Swap in a fresh replica mid-stream; shards must observe it.
            engines["current"] = SaxPacEngine(classifier)
            after = sharded.match_indices(trace[:100])
        assert before == after  # same rules, new engine object

    def test_telemetry(self, setup):
        _, engine, trace = setup
        tel = Telemetry()
        with ShardedRuntime(
            engine=engine, num_shards=4, recorder=tel
        ) as sharded:
            sharded.match_indices(trace)
        snap = tel.snapshot()
        assert snap.counter("shard.batches") == 1
        assert snap.counter("shard.packets") == len(trace)
        assert snap.counter("shard.chunks") == 4

    def test_close_idempotent(self, setup):
        _, engine, _ = setup
        sharded = ShardedRuntime(engine=engine, num_shards=2)
        sharded.close()
        sharded.close()


class TestProcessMode:
    def test_matches_unsharded(self, setup):
        classifier, engine, trace = setup
        want = [r.index for r in engine.match_batch(trace[:120])]
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="process"
        ) as sharded:
            got = sharded.match_indices(trace[:120])
        assert got == want
