"""Tests for classifier profiles (Section 7.1)."""

import random

import pytest

from repro.analysis.order_independence import rules_order_independent
from repro.saxpac.config import profile_classifier
from conftest import random_classifier


class TestProfile:
    def test_fully_independent(self, example2_classifier):
        profile = profile_classifier(example2_classifier)
        assert profile.num_rules == 3
        assert profile.independent_fraction == 1.0
        assert profile.max_order_independent.size == 3
        assert profile.fsm_on_independent is not None
        assert profile.fsm_on_independent.kept_fields == (0,)
        assert profile.min_groups_two_fields == 1

    def test_order_dependent(self, example3_classifier):
        profile = profile_classifier(example3_classifier)
        assert profile.max_order_independent.size == 4
        assert profile.independent_fraction == pytest.approx(0.8)
        assert profile.min_groups_two_fields == 2

    def test_group_assignments_for_betas(self, example3_classifier):
        profile = profile_classifier(example3_classifier, betas=(1, 2))
        assert set(profile.group_assignments) == {1, 2}
        assert profile.group_assignments[1].num_groups == 1
        assert profile.group_assignments[2].num_groups <= 2

    def test_assignment_groups_are_independent(self):
        rng = random.Random(1)
        k = random_classifier(rng, num_rules=25)
        profile = profile_classifier(k, betas=(3,))
        result = profile.group_assignments[3]
        for group in result.groups:
            rules = [k.rules[i] for i in group.rule_indices]
            assert rules_order_independent(rules, group.fields)

    def test_empty_classifier(self):
        from repro.core import Classifier, uniform_schema

        k = Classifier(uniform_schema(2, 4), [])
        profile = profile_classifier(k)
        assert profile.num_rules == 0
        assert profile.independent_fraction == 1.0
        assert profile.fsm_on_independent is None
