"""Tests for packet trace generation."""

import random

import pytest

from repro.workloads.generator import generate_classifier
from repro.workloads.traces import (
    generate_trace,
    rule_targeted_headers,
    uniform_headers,
)


@pytest.fixture(scope="module")
def classifier():
    return generate_classifier("acl", 100, seed=21)


class TestUniform:
    def test_headers_in_range(self, classifier):
        rng = random.Random(1)
        for header in uniform_headers(classifier, 50, rng):
            for value, spec in zip(header, classifier.schema):
                assert 0 <= value <= spec.max_value


class TestRuleTargeted:
    def test_headers_actually_hit_rules(self, classifier):
        rng = random.Random(2)
        headers = rule_targeted_headers(classifier, 100, rng)
        hits = sum(
            1
            for h in headers
            if classifier.match(h).rule is not classifier.catch_all
        )
        assert hits == 100

    def test_zipf_skew_prefers_high_priority(self, classifier):
        rng = random.Random(3)
        headers = rule_targeted_headers(classifier, 400, rng, skew=1.5)
        top_hits = sum(
            1 for h in headers if classifier.match(h).index < 20
        )
        assert top_hits > 100  # far above the uniform expectation of 80

    def test_empty_body_falls_back_to_uniform(self):
        from repro.core import Classifier, uniform_schema

        k = Classifier(uniform_schema(2, 4), [])
        rng = random.Random(4)
        assert len(rule_targeted_headers(k, 10, rng)) == 10


class TestGenerateTrace:
    def test_determinism(self, classifier):
        a = generate_trace(classifier, 100, seed=5)
        b = generate_trace(classifier, 100, seed=5)
        assert a == b

    def test_count(self, classifier):
        assert len(generate_trace(classifier, 123, seed=6)) == 123

    def test_hit_fraction_zero_is_all_uniform(self, classifier):
        trace = generate_trace(classifier, 50, seed=7, hit_fraction=0.0)
        assert len(trace) == 50

    def test_hit_fraction_validated(self, classifier):
        with pytest.raises(ValueError):
            generate_trace(classifier, 10, seed=8, hit_fraction=1.5)

    def test_high_hit_fraction_hits_mostly(self, classifier):
        trace = generate_trace(classifier, 200, seed=9, hit_fraction=1.0)
        hits = sum(
            1
            for h in trace
            if classifier.match(h).rule is not classifier.catch_all
        )
        assert hits == 200
