"""Tests for the DNF machinery (Section 5)."""

import random

import pytest

from repro.boolean.dnf import (
    Dnf,
    dnf_from_classifier,
    minimize_terms,
    remove_subsumed,
    resolve_terms,
)
from repro.boolean.ternary import word_from_pattern
from repro.core import Classifier, make_rule, uniform_schema
from repro.tcam.encoding import BinaryRangeEncoder, SrgeRangeEncoder


def _words(*patterns):
    return [word_from_pattern(p) for p in patterns]


def _same_function(terms_a, terms_b, width):
    for v in range(1 << width):
        hit_a = any(t.matches(v) for t in terms_a)
        hit_b = any(t.matches(v) for t in terms_b)
        if hit_a != hit_b:
            return False
    return True


class TestExample7and8:
    """The paper's worked DNF minimization: four rules collapse to x2."""

    PATTERNS = ("01***", "*10**", "*11*0", "*11*1")

    def test_minimize_to_single_term(self):
        terms = _words(*self.PATTERNS)
        minimized = minimize_terms(terms)
        assert len(minimized) == 1
        assert minimized[0].pattern() == "*1***"

    def test_semantics_preserved(self):
        terms = _words(*self.PATTERNS)
        assert _same_function(terms, minimize_terms(terms), 5)


class TestResolve:
    def test_single_merge(self):
        out = resolve_terms(_words("10", "11"))
        assert [t.pattern() for t in out] == ["1*"]

    def test_cascading_merges(self):
        out = resolve_terms(_words("00", "01", "10", "11"))
        assert [t.pattern() for t in out] == ["**"]

    def test_no_merge_possible(self):
        terms = _words("1*0", "0*1")
        assert sorted(t.pattern() for t in resolve_terms(terms)) == [
            "0*1",
            "1*0",
        ]

    def test_semantics_random(self):
        rng = random.Random(1)
        for _ in range(20):
            patterns = [
                "".join(rng.choice("01*") for _ in range(6)) for _ in range(8)
            ]
            terms = _words(*patterns)
            assert _same_function(terms, resolve_terms(terms), 6)


class TestSubsumption:
    def test_covered_term_removed(self):
        out = remove_subsumed(_words("1**", "101"))
        assert [t.pattern() for t in out] == ["1**"]

    def test_duplicates_removed(self):
        out = remove_subsumed(_words("10*", "10*"))
        assert len(out) == 1

    def test_incomparable_kept(self):
        out = remove_subsumed(_words("1**", "0**"))
        assert len(out) == 2

    def test_semantics_random(self):
        rng = random.Random(2)
        for _ in range(20):
            patterns = [
                "".join(rng.choice("01*") for _ in range(5)) for _ in range(8)
            ]
            terms = _words(*patterns)
            assert _same_function(terms, remove_subsumed(terms), 5)


class TestMinimize:
    def test_fixpoint_semantics_random(self):
        rng = random.Random(3)
        for _ in range(20):
            patterns = [
                "".join(rng.choice("01*") for _ in range(6))
                for _ in range(10)
            ]
            terms = _words(*patterns)
            minimized = minimize_terms(terms)
            assert _same_function(terms, minimized, 6)
            assert len(minimized) <= len(set(terms))

    def test_subsumption_limit_skips_quadratic_pass(self):
        terms = _words("1**", "101")
        out = minimize_terms(terms, subsumption_limit=0)
        # Without subsumption the covered term survives.
        assert len(out) == 2


class TestDnfFromClassifier:
    def test_prefix_classifier_one_term_per_rule(self):
        schema = uniform_schema(2, 4)
        k = Classifier(
            schema, [make_rule([(8, 11), (0, 15)]), make_rule([(0, 3), (4, 7)])]
        )
        dnf = dnf_from_classifier(k)
        assert len(dnf) == 2
        assert dnf.width == 8

    def test_range_classifier_expands(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(1, 14)])])
        dnf = dnf_from_classifier(k, BinaryRangeEncoder())
        assert len(dnf) == 6

    def test_srge_encoder_fewer_terms(self):
        schema = uniform_schema(1, 8)
        k = Classifier(schema, [make_rule([(1, 254)])])
        binary = dnf_from_classifier(k, BinaryRangeEncoder())
        srge = dnf_from_classifier(k, SrgeRangeEncoder())
        assert len(srge) <= len(binary)

    def test_evaluate_matches_rule_semantics_binary(self):
        schema = uniform_schema(2, 4)
        k = Classifier(
            schema, [make_rule([(3, 11), (2, 9)])], ensure_catch_all=True
        )
        dnf = dnf_from_classifier(k, BinaryRangeEncoder())
        for a in range(16):
            for b in range(16):
                key = (a << 4) | b
                assert dnf.evaluate(key) == k.rules[0].matches((a, b))

    def test_rule_subset(self, example3_classifier):
        dnf = dnf_from_classifier(
            example3_classifier, rule_indices=[0, 1]
        )
        assert len(dnf) >= 2

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dnf(4, _words("10"))
