"""Tests for the fractionally-cascaded two-field index."""

import math
import random

import pytest

from repro.core import Interval
from repro.lookup.cascading import CascadingTwoFieldIndex
from repro.lookup.two_field import TwoFieldIndex


def _independent_boxes(rng, count, stripe=10):
    """Boxes pairwise disjoint in at least one dimension (see
    test_two_field): unique stripes in dimension a."""
    boxes = []
    for i in range(count):
        a_lo = i * stripe
        a = Interval(a_lo, a_lo + rng.randint(0, stripe - 1))
        b_lo = rng.randint(0, 80)
        b = Interval(b_lo, b_lo + rng.randint(0, 25))
        boxes.append((a, b))
    return boxes


def _layered_boxes(levels=5, per_level=6):
    """Boxes that genuinely share segment-tree nodes: same a-interval per
    layer, disjoint b-intervals within a layer."""
    boxes = []
    for layer in range(levels):
        a = Interval(0, 10 * (layer + 1))
        for j in range(per_level):
            b = Interval(j * 12, j * 12 + 9)
            boxes.append((a, b))
    # Deduplicate b-collisions across layers sharing canonical nodes by
    # shifting each layer's b range.
    out = []
    for i, (a, b) in enumerate(boxes):
        layer = i // per_level
        out.append((a, Interval(b.low + layer * 80, b.high + layer * 80)))
    return out


class TestCorrectness:
    def test_basic(self):
        index = CascadingTwoFieldIndex(
            [
                (Interval(0, 5), Interval(0, 5), "low"),
                (Interval(10, 15), Interval(10, 15), "high"),
            ]
        )
        assert index.lookup(3, 3) == "low"
        assert index.lookup(12, 11) == "high"
        assert index.lookup(3, 12) is None
        assert index.lookup(7, 7) is None

    def test_empty(self):
        index = CascadingTwoFieldIndex([])
        assert index.lookup(0, 0) is None

    def test_boundaries(self):
        index = CascadingTwoFieldIndex(
            [(Interval(2, 9), Interval(4, 8), "x")]
        )
        assert index.lookup(2, 4) == "x"
        assert index.lookup(9, 8) == "x"
        assert index.lookup(2, 3) is None
        assert index.lookup(2, 9) is None

    def test_shared_nodes_layered(self):
        boxes = _layered_boxes()
        index = CascadingTwoFieldIndex(
            (a, b, i) for i, (a, b) in enumerate(boxes)
        )
        for i, (a, b) in enumerate(boxes):
            assert index.lookup(a.low, b.low) == i
            assert index.lookup(a.high, b.high) == i

    def test_non_independent_rejected(self):
        with pytest.raises(ValueError):
            CascadingTwoFieldIndex(
                [
                    (Interval(0, 10), Interval(0, 5), "a"),
                    (Interval(0, 10), Interval(3, 8), "b"),
                ]
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_plain_two_field_index(self, seed):
        rng = random.Random(seed)
        boxes = _independent_boxes(rng, 15)
        cascading = CascadingTwoFieldIndex(
            (a, b, i) for i, (a, b) in enumerate(boxes)
        )
        plain = TwoFieldIndex((a, b, i) for i, (a, b) in enumerate(boxes))
        for _ in range(500):
            va = rng.randint(0, 170)
            vb = rng.randint(0, 120)
            assert cascading.lookup(va, vb) == plain.lookup(va, vb)

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_on_layered_plus_stripes(self, seed):
        rng = random.Random(100 + seed)
        boxes = _layered_boxes() + [
            (Interval(200 + i * 5, 200 + i * 5 + 4), Interval(0, 500))
            for i in range(10)
        ]
        cascading = CascadingTwoFieldIndex(
            (a, b, i) for i, (a, b) in enumerate(boxes)
        )
        plain = TwoFieldIndex((a, b, i) for i, (a, b) in enumerate(boxes))
        for _ in range(600):
            va = rng.randint(0, 260)
            vb = rng.randint(0, 520)
            assert cascading.lookup(va, vb) == plain.lookup(va, vb)


class TestMemory:
    def test_linear_memory(self):
        rng = random.Random(7)
        boxes = _independent_boxes(rng, 300)
        index = CascadingTwoFieldIndex(
            (a, b, i) for i, (a, b) in enumerate(boxes)
        )
        n = len(boxes)
        # Catalog slots are O(n log n) (segment tree); the augmented lists
        # add at most a constant factor on top.
        bound = 8 * n * max(1, math.ceil(math.log2(n)))
        assert index.memory_slots <= bound
