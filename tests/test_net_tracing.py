"""End-to-end trace propagation over the wire and across workers.

Covers the SXPC trace-context extension (negotiation, byte-identical
fallback), the joined client -> server -> batch -> runtime span tree,
and the two context hops that contextvars do not survive on their own:
asyncio task boundaries and pickled process workers.
"""

import asyncio
import os
import random

import pytest

from conftest import random_classifier
from netutil import settle
from repro.net import NetClient, NetConfig, serve_background
from repro.net.protocol import (
    FLAG_TRACE,
    TRACE_BLOCK,
    FrameDecoder,
    TraceContext,
    encode_match_request,
    split_trace_context,
)
from repro.obs import Tracer, chrome_trace
from repro.runtime.service import RuntimeService
from repro.runtime.shard import ShardedRuntime
from repro.runtime.telemetry import Telemetry
from repro.workloads.traces import generate_trace


@pytest.fixture
def traced_served():
    """A traced wire server with no coalesce hold, so every request gets
    its own batch and therefore a complete span tree (the coalescer
    parents net.batch under the *lead* request only)."""
    classifier = random_classifier(random.Random(11), num_rules=40)
    tracer = Tracer()
    service = RuntimeService(classifier, recorder=Telemetry(tracer=tracer))
    handle = serve_background(service, NetConfig(coalesce_wait_ms=0.0))
    yield service, handle, tracer
    handle.stop()


@pytest.fixture
def untraced_served():
    classifier = random_classifier(random.Random(12), num_rules=40)
    service = RuntimeService(classifier)
    handle = serve_background(service, NetConfig(coalesce_wait_ms=0.0))
    yield service, handle
    handle.stop()


class TestWireExtension:
    def test_untraced_request_bytes_carry_no_extension(self):
        frame = FrameDecoder().feed(
            encode_match_request(9, [[1, 2, 3]])
        )[0]
        assert frame.flags == 0
        trace, stripped = split_trace_context(frame)
        assert trace is None
        assert stripped is frame  # untouched, not rebuilt

    def test_traced_request_is_plain_request_plus_block(self):
        headers = [[1, 2, 3], [4, 5, 6]]
        plain = encode_match_request(9, headers)
        traced = encode_match_request(
            9, headers, trace=TraceContext(0xABC, 0xDEF)
        )
        frame = FrameDecoder().feed(traced)[0]
        assert frame.flags & FLAG_TRACE
        trace, stripped = split_trace_context(frame)
        assert trace == TraceContext(0xABC, 0xDEF, True)
        # Stripping the 17-byte block and clearing the flag recovers the
        # exact untraced payload: the extension is purely additive.
        plain_frame = FrameDecoder().feed(plain)[0]
        assert stripped.payload == plain_frame.payload
        assert stripped.flags == 0
        assert len(frame.payload) == len(plain_frame.payload) + TRACE_BLOCK.size

    def test_negotiation_against_traced_server(self, traced_served):
        _, handle, _ = traced_served
        with NetClient(port=handle.port, tracer=Tracer()) as client:
            assert client.peer_traces is True

    def test_negotiation_against_untraced_server(self, untraced_served):
        """A tracer-less server echoes zero flags on PONG; the client
        falls back to plain frames and still gets correct answers."""
        service, handle = untraced_served
        headers = generate_trace(service.serving_classifier(), 50, 21)
        tracer = Tracer()
        with NetClient(port=handle.port, tracer=tracer) as client:
            assert client.peer_traces is False
            got = client.match_batch(headers)
        reference = [
            r.index for r in service.serving_classifier().match_batch(headers)
        ]
        assert list(got) == reference
        # No peer agreement means no client spans either.
        assert len(tracer.spans()) == 0

    def test_untraced_client_against_traced_server(self, traced_served):
        """Plain clients see a plain protocol; server spans become local
        roots instead of joining a client trace."""
        service, handle, tracer = traced_served
        headers = generate_trace(service.serving_classifier(), 30, 22)
        with NetClient(port=handle.port) as client:
            assert client.peer_traces is False
            client.match_batch(headers)
        settle(lambda: any(s.name == "net.request" for s in tracer.spans()))
        requests = [s for s in tracer.spans() if s.name == "net.request"]
        assert requests and all(s.parent_id is None for s in requests)


class TestJoinedSpanTree:
    def test_client_server_spans_join_per_request(self, traced_served):
        service, handle, server_tracer = traced_served
        classifier = service.serving_classifier()
        trace = generate_trace(classifier, 120, 31)
        blocks = [trace[i : i + 30] for i in range(0, 120, 30)]
        client_tracer = Tracer()
        with NetClient(port=handle.port, tracer=client_tracer) as client:
            results = client.match_many(blocks, window=1)
        # Verified answers, as `repro client --verify` would check them.
        for block, got in zip(blocks, results):
            assert list(got) == [
                r.index for r in classifier.match_batch(block)
            ]

        client_spans = [
            s for s in client_tracer.spans() if s.name == "client.request"
        ]
        assert len(client_spans) == len(blocks)

        settle(
            lambda: sum(
                1 for s in server_tracer.spans() if s.name == "net.request"
            )
            >= len(blocks)
        )
        spans = server_tracer.spans()
        by_id = {s.span_id: s for s in spans}
        for client_span in client_spans:
            # net.request joins the client's trace, parented under the
            # client.request span whose context rode the wire.
            server_span = next(
                s
                for s in spans
                if s.name == "net.request"
                and s.parent_id == client_span.span_id
            )
            assert server_span.trace_id == client_span.trace_id
            # net.batch nests under the (lead) request span...
            batch = next(
                s
                for s in spans
                if s.name == "net.batch"
                and s.parent_id == server_span.span_id
            )
            assert batch.trace_id == client_span.trace_id
            # ...and the runtime's own span nests under the batch: the
            # tree crosses the executor-thread hop too.
            runtime = next(
                s
                for s in spans
                if s.name == "runtime.batch"
                and s.parent_id == batch.span_id
            )
            assert runtime.trace_id == client_span.trace_id
            # Parent chains resolve within the buffered store.
            for node in (server_span, batch, runtime):
                assert node.parent_id == client_span.span_id or (
                    node.parent_id in by_id
                )

    def test_joined_tree_exports_as_chrome_trace(self, traced_served):
        service, handle, server_tracer = traced_served
        headers = generate_trace(service.serving_classifier(), 40, 32)
        client_tracer = Tracer()
        with NetClient(port=handle.port, tracer=client_tracer) as client:
            client.match_batch(headers)
        settle(
            lambda: any(
                s.name == "net.request" for s in server_tracer.spans()
            )
        )
        doc = chrome_trace(client_tracer.spans() + server_tracer.spans())
        events = doc["traceEvents"]
        assert {e["name"] for e in events} >= {
            "client.request",
            "net.request",
            "net.batch",
        }
        client_event = next(e for e in events if e["name"] == "client.request")
        request_event = next(e for e in events if e["name"] == "net.request")
        assert (
            request_event["args"]["parent_id"]
            == client_event["args"]["span_id"]
        )


class TestTaskAndWorkerPropagation:
    def test_span_lifetime_crosses_asyncio_tasks(self):
        """start_span/finish carry a request span across tasks — the
        server pattern: born in the connection task, finished by the
        batch task, where a contextvar token cannot follow."""
        tracer = Tracer()

        async def scenario():
            span = tracer.start_span("net.request")

            async def batch_task():
                with tracer.span("net.batch", parent=span.context):
                    await asyncio.sleep(0)
                tracer.finish(span)

            await asyncio.create_task(batch_task())

        asyncio.run(scenario())
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["net.batch"].parent_id == by_name["net.request"].span_id
        assert by_name["net.batch"].trace_id == by_name["net.request"].trace_id
        assert by_name["net.request"].duration >= 0.0

    def test_concurrent_tasks_keep_separate_ambient_spans(self):
        """The contextvar parent is task-local: two interleaved tasks
        each nest their children under their own span, never the
        other's."""
        tracer = Tracer()

        async def one(name):
            with tracer.span(name):
                await asyncio.sleep(0)  # force an interleave point
                child = tracer.start_span(f"{name}.child")
                await asyncio.sleep(0)
                tracer.finish(child)

        async def scenario():
            await asyncio.gather(one("a"), one("b"))

        asyncio.run(scenario())
        by_name = {s.name: s for s in tracer.spans()}
        for name in ("a", "b"):
            assert by_name[f"{name}.child"].parent_id == by_name[name].span_id
            assert by_name[f"{name}.child"].trace_id == by_name[name].trace_id
        assert by_name["a"].trace_id != by_name["b"].trace_id

    def test_process_workers_join_the_parent_trace(self):
        """shard.chunk spans recorded inside __reduce__-rearmed process
        workers come back parented under the driving request span, with
        the worker's own pid — cross-process propagation end to end."""
        classifier = random_classifier(random.Random(13), num_rules=40)
        trace = generate_trace(classifier, 64, 41)
        tracer = Tracer()
        recorder = Telemetry(tracer=tracer)
        with ShardedRuntime(
            classifier=classifier,
            num_shards=2,
            mode="process",
            recorder=recorder,
        ) as sharded:
            with tracer.span("driver.request") as parent:
                sharded.match_indices(trace)
        chunks = [s for s in tracer.spans() if s.name == "shard.chunk"]
        assert len(chunks) == 2
        for chunk in chunks:
            assert chunk.trace_id == parent.trace_id
            assert chunk.parent_id == parent.span_id
            assert chunk.pid != os.getpid()
        assert {c.tags["shard"] for c in chunks} == {0, 1}
