"""The replicated serving tier: generation stamping, rendezvous
routing, replica failover, rolling swaps, and the PR-8 abort
regression.

The chaos *soak* (1M requests, injected crashes, swap under load)
lives in ``benchmarks/soak_cluster.py``; these tests pin the
mechanisms it relies on at a size the fast lane can afford.
"""

import random
import threading
import time

import numpy as np
import pytest
from conftest import random_classifier
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    rule,
)
from netutil import settle, wait_until

from repro.net import (
    ClusterError,
    ErrorCode,
    LocalCluster,
    NetClient,
    NetConfig,
    NetError,
    ReplicaSet,
    decision_identical_updates,
    fold_catch_all,
    replica_for,
    serve_background,
)
from repro.net.cluster import replica_score
from repro.runtime import LoadShedError, RuntimeService
from repro.runtime.service import RuntimeConfig
from repro.workloads import generate_trace


def oracle_indices(classifier, headers):
    return [r.index for r in classifier.match_batch(headers)]


def make_blocks(classifier, total, size, seed):
    trace = generate_trace(classifier, total, seed)
    return trace, [
        trace[i : i + size] for i in range(0, total, size)
    ]


@pytest.fixture
def cluster3():
    classifier = random_classifier(random.Random(7), num_rules=40)
    with LocalCluster(classifier, replicas=3) as cluster:
        yield classifier, cluster


# ----------------------------------------------------------------------
# Generation stamping (the wire extension)
# ----------------------------------------------------------------------
class TestGenerationStamp:
    def test_ping_poll_tracks_engine_generation(self):
        classifier = random_classifier(random.Random(3), num_rules=30)
        service = RuntimeService(classifier)
        handle = serve_background(service)
        try:
            with NetClient(port=handle.port) as client:
                assert client.generation() == service.swap.generation
                service.insert(classifier.body[0])  # rebuild: gen + 1
                assert client.generation() == service.swap.generation
        finally:
            handle.stop()

    def test_responses_stamped_only_when_negotiated(self):
        classifier = random_classifier(random.Random(5), num_rules=30)
        service = RuntimeService(classifier)
        handle = serve_background(service)
        try:
            headers = generate_trace(classifier, 50, 2)
            with NetClient(
                port=handle.port, track_generation=True
            ) as stamped:
                assert stamped.peer_stamps is True
                got = stamped.match_batch(headers)
                assert stamped.peer_generation == service.swap.generation
            with NetClient(port=handle.port) as plain:
                assert plain.match_batch(headers).tolist() == got.tolist()
                # No negotiation, no stamp — byte-identical legacy path.
                assert plain.peer_stamps is False
                assert plain.peer_generation is None
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Rendezvous hashing (pure) + the membership-remap property
# ----------------------------------------------------------------------
class TestRendezvous:
    def test_deterministic(self):
        names = ["a", "b", "c", "d"]
        for key in range(200):
            assert replica_for(key, names) == replica_for(key, names)
        assert replica_score(42, "a") == replica_score(42, "a")

    def test_reasonable_spread(self):
        names = ["r0", "r1", "r2"]
        loads = {n: 0 for n in names}
        for key in range(3000):
            loads[replica_for(key, names)] += 1
        for name, load in loads.items():
            assert load > 500, f"{name} starved: {loads}"

    def test_fold_catch_all(self):
        folded = fold_catch_all([0, 5, 200, 201, 204], 200)
        assert folded.tolist() == [0, 5, 200, 200, 200]


class RendezvousMachine(RuleBasedStateMachine):
    """Membership changes remap only the affected keys: killing a
    replica moves exactly the keys it owned; rejoining one steals only
    the keys that now score highest on it.  No full reshuffle, ever."""

    POOL = [f"replica-{i}" for i in range(6)]
    KEYS = list(range(150))

    @initialize()
    def fresh(self):
        self.alive = set(self.POOL[:3])
        self.placement = self._place()

    def _place(self):
        names = sorted(self.alive)
        return {k: replica_for(k, names) for k in self.KEYS}

    @rule(pick=st.integers(min_value=0, max_value=5))
    def kill(self, pick):
        name = self.POOL[pick]
        if name not in self.alive or len(self.alive) == 1:
            return
        self.alive.discard(name)
        after = self._place()
        for key in self.KEYS:
            if self.placement[key] != name:
                assert after[key] == self.placement[key], (
                    f"key {key} moved off surviving "
                    f"{self.placement[key]} when {name} died"
                )
            else:
                assert after[key] in self.alive
        self.placement = after

    @rule(pick=st.integers(min_value=0, max_value=5))
    def rejoin(self, pick):
        name = self.POOL[pick]
        if name in self.alive:
            return
        self.alive.add(name)
        after = self._place()
        for key in self.KEYS:
            assert after[key] in (self.placement[key], name), (
                f"key {key} reshuffled from {self.placement[key]} to "
                f"{after[key]} when {name} joined"
            )
        self.placement = after


RendezvousMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
TestRendezvousRemap = RendezvousMachine.TestCase


# ----------------------------------------------------------------------
# ReplicaSet routing + failover
# ----------------------------------------------------------------------
class TestReplicaSet:
    @pytest.mark.parametrize("policy", ["rendezvous", "least_inflight"])
    def test_routing_matches_oracle(self, cluster3, policy):
        classifier, cluster = cluster3
        trace, blocks = make_blocks(classifier, 2000, 16, seed=11)
        with cluster.replica_set(policy=policy) as rs:
            answers = rs.match_many(blocks)
        got = [int(x) for a in answers for x in a]
        assert got == oracle_indices(classifier, trace)
        assert rs.stats["cluster.requests"] == len(blocks)
        assert rs.stats["cluster.replica_deaths"] == 0

    def test_all_replicas_see_traffic(self, cluster3):
        classifier, cluster = cluster3
        _, blocks = make_blocks(classifier, 1600, 8, seed=13)
        with cluster.replica_set() as rs:
            rs.match_many(blocks)
        for name, service in cluster.services.items():
            settle(
                lambda s=service: s.telemetry.counter("net.requests") > 0
            )
            assert service.telemetry.counter("net.requests") > 0, name

    def test_kill_mid_stream_zero_wrong_answers(self, cluster3):
        classifier, cluster = cluster3
        trace, blocks = make_blocks(classifier, 6000, 8, seed=17)
        with cluster.replica_set(retries=2, timeout_s=10.0) as rs:
            killer = threading.Timer(
                0.15, cluster.kill, args=("replica-1",)
            )
            killer.start()
            answers = rs.match_many(blocks)
            killer.join()
        got = [int(x) for a in answers for x in a]
        assert got == oracle_indices(classifier, trace)
        assert rs.alive() == ["replica-0", "replica-2"]
        assert rs.stats["cluster.replica_deaths"] == 1

    def test_restart_rejoin_converges(self, cluster3):
        classifier, cluster = cluster3
        trace, blocks = make_blocks(classifier, 800, 16, seed=19)
        with cluster.replica_set() as rs:
            cluster.kill("replica-2")
            answers = rs.match_many(blocks)
            assert [int(x) for a in answers for x in a] == oracle_indices(
                classifier, trace
            )
            port = cluster.restart("replica-2")
            rs.rejoin("replica-2", port=port)
            gens = rs.wait_converged(timeout_s=15.0)
            assert len(gens) == 3
            assert len(set(gens.values())) == 1

    def test_shed_reroutes_instead_of_burning_backoff(self):
        """Satellite: a SHED answer must move the traffic to another
        replica, not retry the same one until its backoff budget dies."""
        classifier = random_classifier(random.Random(23), num_rules=30)
        with LocalCluster(classifier, replicas=2) as cluster:
            shedder = cluster.services["replica-0"]

            def always_shed(block):
                raise LoadShedError("synthetic overload")

            shedder.match_indices = always_shed
            trace, blocks = make_blocks(classifier, 800, 16, seed=29)
            with cluster.replica_set(
                shed_backoff_s=0.0, max_shed_retries=2
            ) as rs:
                answers = rs.match_many(blocks)
                got = [int(x) for a in answers for x in a]
                assert got == oracle_indices(classifier, trace)
                assert rs.stats["cluster.shed_reroutes"] >= 1
                # Shedding is not a death sentence: the replica stays
                # routable for when the overload clears.
                assert rs.alive() == ["replica-0", "replica-1"]
            # The set gave up on the shedding replica after the small
            # per-chunk budget instead of grinding it to exhaustion —
            # the healthy replica answered everything.
            healthy = cluster.services["replica-1"]
            settle(
                lambda: healthy.telemetry.counter("net.responses")
                >= len(blocks)
            )
            assert healthy.telemetry.counter("net.responses") >= len(
                blocks
            )

    def test_draining_replica_reroutes_until_resume(self, cluster3):
        classifier, cluster = cluster3
        trace, blocks = make_blocks(classifier, 800, 16, seed=31)
        handle = cluster.handles["replica-0"]
        assert handle.quiesce(5.0) is True
        with cluster.replica_set() as rs:
            answers = rs.match_many(blocks)
            assert [int(x) for a in answers for x in a] == oracle_indices(
                classifier, trace
            )
            assert rs.stats["cluster.drain_reroutes"] >= 1
            assert rs.alive() == [
                "replica-0",
                "replica-1",
                "replica-2",
            ]
        handle.resume()
        with NetClient(port=handle.port) as client:
            got = client.match_batch(trace[:50])
        assert list(got) == oracle_indices(classifier, trace[:50])
        telemetry = cluster.services["replica-0"].telemetry
        assert telemetry.counter("net.quiesces") == 1
        assert telemetry.counter("net.resumes") == 1

    def test_min_generation_routes_to_converged_only(self):
        classifier = random_classifier(random.Random(37), num_rules=30)
        with LocalCluster(classifier, replicas=2) as cluster:
            # Push replica-0 one generation ahead, as a mid-rolling-swap
            # cluster looks to a read-your-writes client.
            ahead = cluster.services["replica-0"]
            ahead.insert(classifier.body[0])
            target = ahead.swap.generation
            trace, blocks = make_blocks(classifier, 400, 16, seed=41)
            with cluster.replica_set() as rs:
                rs.generations()
                answers = rs.match_many(blocks, min_generation=target)
                got = fold_catch_all(
                    np.concatenate([np.asarray(a) for a in answers]),
                    len(classifier.body),
                )
                want = fold_catch_all(
                    oracle_indices(classifier, trace),
                    len(classifier.body),
                )
                assert got.tolist() == want.tolist()
            stale = cluster.services["replica-1"]
            assert stale.telemetry.counter("net.requests") == 0

    def test_no_eligible_replica_raises(self):
        classifier = random_classifier(random.Random(43), num_rules=20)
        with LocalCluster(classifier, replicas=1) as cluster:
            rs = cluster.replica_set()
            rs.mark_dead("replica-0")
            with pytest.raises(ClusterError):
                rs.match_many([generate_trace(classifier, 10, 1)])

    def test_wait_converged_times_out(self):
        classifier = random_classifier(random.Random(47), num_rules=20)
        with LocalCluster(classifier, replicas=1) as cluster:
            with cluster.replica_set() as rs:
                with pytest.raises(ClusterError):
                    rs.wait_converged(target=99, timeout_s=0.3)


# ----------------------------------------------------------------------
# Rolling swap under load
# ----------------------------------------------------------------------
class TestRollingSwap:
    @pytest.mark.slow
    def test_swap_under_load_zero_mismatches(self, cluster3):
        classifier, cluster = cluster3
        trace, blocks = make_blocks(classifier, 8000, 16, seed=53)
        want = fold_catch_all(
            oracle_indices(classifier, trace), len(classifier.body)
        )
        updates = decision_identical_updates(classifier, 3, seed=7)
        report = {}
        with cluster.replica_set(retries=2) as rs:

            def swap():
                report.update(cluster.rolling_swap(updates))

            swapper = threading.Thread(target=swap, daemon=True)
            answers = []
            quarter = max(1, len(blocks) // 4)
            for i in range(0, len(blocks), quarter):
                if i >= quarter and not swapper.is_alive() and not report:
                    swapper.start()
                answers.extend(
                    rs.match_many(blocks[i : i + quarter])
                )
            swapper.join()
            target = max(cluster.generations().values())
            gens = rs.wait_converged(target=target, timeout_s=30.0)
        got = fold_catch_all(
            np.concatenate([np.asarray(a) for a in answers]),
            len(classifier.body),
        )
        assert int((got != want).sum()) == 0
        assert report["swapped"] == cluster.names
        assert report["skipped"] == []
        assert all(g == target for g in gens.values())

    def test_restart_replays_update_log(self, cluster3):
        classifier, cluster = cluster3
        updates = decision_identical_updates(classifier, 2, seed=9)
        cluster.kill("replica-1")
        report = cluster.rolling_swap(updates)
        assert report["skipped"] == ["replica-1"]
        target = max(cluster.generations().values())
        cluster.restart("replica-1")
        assert cluster.generations()["replica-1"] == target


# ----------------------------------------------------------------------
# PR-8 regression: abort must reach a pipelining client even with
# forked shm workers holding duplicates of the connection fd
# ----------------------------------------------------------------------
class TestAbortRegression:
    @pytest.mark.slow
    def test_server_abort_reaches_client_despite_forked_fd_dups(self):
        classifier = random_classifier(random.Random(59), num_rules=30)
        service = RuntimeService(
            classifier,
            RuntimeConfig(num_shards=2, shard_mode="shm"),
        )
        handle = serve_background(service)
        try:
            client = NetClient(
                port=handle.port, timeout_s=60.0, retries=0
            )
            client.connect()
            headers = generate_trace(classifier, 50, 3)
            client.match_batch(headers)  # connection is live
            # Fork fresh shm workers *after* the accept: each child now
            # holds a duplicate of the connection's fd.  Before the
            # SHUT_RDWR fix, the server closing only its own copy left
            # the TCP connection alive and the client blocked until its
            # (long) timeout.
            service.shards._respawn()
            settle(lambda: len(handle.server._connections) == 1)

            def abort_all():
                for conn in list(handle.server._connections):
                    conn.abort()

            handle.loop.call_soon_threadsafe(abort_all)
            start = time.monotonic()
            with pytest.raises((ConnectionError, OSError)):
                client.match_batch(headers)
            elapsed = time.monotonic() - start
            # EOF must arrive promptly — nowhere near the 60s client
            # timeout a leaked fd duplicate would force us to wait out.
            assert elapsed < 10.0, f"teardown took {elapsed:.1f}s"
            client.close()
        finally:
            handle.stop()
            service.close()


# ----------------------------------------------------------------------
# ServerHandle.kill (the soak's crash lever)
# ----------------------------------------------------------------------
class TestKill:
    def test_kill_aborts_inflight_connections(self):
        classifier = random_classifier(random.Random(61), num_rules=20)
        service = RuntimeService(classifier)
        handle = serve_background(service)
        client = NetClient(port=handle.port, timeout_s=30.0, retries=0)
        client.connect()
        headers = generate_trace(classifier, 20, 5)
        client.match_batch(headers)
        handle.kill()
        assert wait_until(lambda: not handle.thread.is_alive())
        start = time.monotonic()
        with pytest.raises((ConnectionError, OSError)):
            client.match_batch(headers)
        assert time.monotonic() - start < 10.0
        client.close()
        service.close()

    def test_kill_then_stop_is_idempotent(self):
        classifier = random_classifier(random.Random(67), num_rules=20)
        service = RuntimeService(classifier)
        handle = serve_background(service)
        handle.kill()
        assert handle.stop() is False  # killed, never drained
        service.close()
