"""Tests for the Theorem 6 lower-bound constructions."""

import pytest

from repro.analysis.lower_bounds import (
    hypercube_classifier,
    min_groups_hypercube,
    min_groups_single_field,
    min_groups_two_fields,
    pairs_classifier,
    quadruples_classifier,
)
from repro.analysis.mgr import l_mgr
from repro.analysis.order_independence import is_order_independent


class TestConstructions:
    def test_pairs_size_and_independence(self):
        for n in (2, 3, 5):
            k = pairs_classifier(n)
            assert len(k.body) == n * (n - 1)
            assert is_order_independent(k)

    def test_quadruples_size_and_independence(self):
        k = quadruples_classifier(4)
        assert len(k.body) == 4 * 3 * 2 * 1
        assert is_order_independent(k)

    def test_hypercube_size_and_independence(self):
        for kk in (1, 3, 5):
            k = hypercube_classifier(kk)
            assert len(k.body) == 1 << kk
            assert is_order_independent(k)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            pairs_classifier(1)
        with pytest.raises(ValueError):
            quadruples_classifier(3)
        with pytest.raises(ValueError):
            hypercube_classifier(0)


class TestBoundsHoldForHeuristics:
    """Theorem 6 certifies a *lower* bound: any correct grouping — greedy
    included — must open at least that many groups."""

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_single_field_bound(self, n):
        k = pairs_classifier(n)
        result = l_mgr(k, l=1)
        assert not result.ungrouped
        assert result.num_groups >= min_groups_single_field(n)

    @pytest.mark.parametrize("n", [4, 5])
    def test_two_field_bound(self, n):
        k = quadruples_classifier(n)
        result = l_mgr(k, l=2)
        assert not result.ungrouped
        assert result.num_groups >= min_groups_two_fields(n)

    @pytest.mark.parametrize("kk,l", [(3, 1), (4, 2), (5, 3)])
    def test_hypercube_bound(self, kk, l):
        k = hypercube_classifier(kk)
        result = l_mgr(k, l=l)
        assert not result.ungrouped
        assert result.num_groups >= min_groups_hypercube(kk, l)

    def test_hypercube_greedy_is_tight(self):
        # On the hypercube the greedy grouping achieves the bound exactly:
        # each group exhausts all 2^l combinations on its fields.
        k = hypercube_classifier(4)
        result = l_mgr(k, l=2)
        assert result.num_groups == min_groups_hypercube(4, 2)
