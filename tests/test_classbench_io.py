"""Tests for the ClassBench filter-set parser and writer."""

import io

import pytest

from repro.core import Interval
from repro.workloads.classbench import (
    format_rule,
    parse_classbench,
    parse_classbench_text,
    parse_rule_line,
    write_classbench,
)
from repro.workloads.generator import generate_classifier

SAMPLE = (
    "@192.128.0.0/9\t0.0.0.0/0\t0 : 65535\t1024 : 65535\t"
    "0x06/0xFF\t0x0000/0x0000"
)

PAPER_LINE = (
    "@0.0.0.0/0 0.0.0.0/0 1234 : 1234 0 : 65535 0x00/0x00 0x0000/0x0000"
)


class TestParsing:
    def test_sample_line_fields(self):
        rule = parse_rule_line(SAMPLE)
        assert rule.intervals[0] == Interval(0xC0800000, 0xC0FFFFFF)
        assert rule.intervals[1] == Interval(0, 0xFFFFFFFF)
        assert rule.intervals[2] == Interval(0, 65535)
        assert rule.intervals[3] == Interval(1024, 65535)
        assert rule.intervals[4] == Interval(6, 6)
        assert rule.intervals[5] == Interval(0, 0xFFFF)

    def test_paper_rule_line(self):
        # The Section 8 example rule: wildcard IPs, source port 1234.
        rule = parse_rule_line(PAPER_LINE)
        assert rule.intervals[2] == Interval(1234, 1234)
        assert rule.intervals[4] == Interval(0, 255)

    def test_whole_text_with_comments(self):
        text = f"# a comment\n\n{SAMPLE}\n{PAPER_LINE}\n"
        classifier = parse_classbench_text(text)
        assert len(classifier.body) == 2
        assert classifier.schema.total_width == 120

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            parse_rule_line("@not-an-ip/9 ...")

    def test_bad_ip_rejected(self):
        with pytest.raises(ValueError):
            parse_rule_line(SAMPLE.replace("192.128.0.0", "999.0.0.1"))

    def test_noncontiguous_mask_widened(self):
        line = SAMPLE.replace("0x0000/0x0000", "0x0010/0x0018")
        rule = parse_rule_line(line)
        flags = rule.intervals[5]
        # Every value with v & 0x18 == 0x10 lies inside the widened range.
        assert flags.contains(0x0010)
        assert flags.contains(0xFFF7 & ~0x08 | 0x10)

    def test_parse_from_file_object(self):
        classifier = parse_classbench(io.StringIO(SAMPLE + "\n"))
        assert len(classifier.body) == 1


class TestWriting:
    def test_roundtrip_sample(self):
        rule = parse_rule_line(SAMPLE)
        assert parse_rule_line(format_rule(rule)) == rule

    def test_roundtrip_generated_classifier(self):
        classifier = generate_classifier("acl", 50, seed=3)
        out = io.StringIO()
        write_classbench(classifier, out)
        reparsed = parse_classbench_text(out.getvalue())
        assert len(reparsed.body) == len(classifier.body)
        for original, round_tripped in zip(classifier.body, reparsed.body):
            assert original.intervals == round_tripped.intervals

    def test_roundtrip_file_path(self, tmp_path):
        classifier = generate_classifier("cisco", 20, seed=4)
        path = str(tmp_path / "filters.txt")
        write_classbench(classifier, path)
        reparsed = parse_classbench(path)
        assert len(reparsed.body) == 20

    def test_non_prefix_ip_rejected_on_write(self):
        from repro.core import Rule, TRANSMIT

        rule = parse_rule_line(SAMPLE)
        bad = Rule(
            (Interval(1, 2),) + rule.intervals[1:], TRANSMIT
        )
        with pytest.raises(ValueError):
            format_rule(bad)
