"""Cross-module integration scenarios at moderate scale.

Each test exercises a full user journey: generate a realistic workload,
run the optimization pipeline, build the runtime structures, and verify
semantics end to end against the reference linear scan.
"""


import pytest

from repro.analysis import (
    fsm,
    greedy_independent_set,
    group_statistics,
    l_mgr,
)
from repro.core import classbench_schema
from repro.saxpac import (
    ClassificationCache,
    DynamicSaxPac,
    EngineConfig,
    SaxPacEngine,
)
from repro.tcam import BinaryRangeEncoder, SrgeRangeEncoder, build_tcam
from repro.workloads import generate_classifier, generate_trace


@pytest.fixture(scope="module", params=["acl", "fw", "ipc", "cisco"])
def workload(request):
    classifier = generate_classifier(request.param, 300, seed=1234)
    trace = generate_trace(classifier, 600, seed=99)
    return request.param, classifier, trace


class TestFullPipeline:
    def test_engine_end_to_end(self, workload):
        style, classifier, trace = workload
        engine = SaxPacEngine(classifier)
        for header in trace:
            assert engine.match(header).index == classifier.match(header).index

    def test_engine_all_knobs(self, workload):
        style, classifier, trace = workload
        engine = SaxPacEngine(
            classifier,
            EngineConfig(
                max_group_fields=2,
                max_groups=4,
                min_group_size=2,
                enforce_cache=True,
                use_cascading=True,
            ),
            encoder=SrgeRangeEncoder(),
        )
        for header in trace[:300]:
            assert engine.match(header).index == classifier.match(header).index

    def test_decomposition_fractions_match_paper_band(self, workload):
        style, classifier, trace = workload
        report = SaxPacEngine(classifier).report()
        # The paper's headline: the vast majority of rules leave the TCAM.
        assert report.software_fraction >= 0.8
        assert report.tcam_saving >= 0.5

    def test_pure_tcam_agrees(self, workload):
        style, classifier, trace = workload
        _tcam, view = build_tcam(classifier, BinaryRangeEncoder())
        for header in trace[:200]:
            expected = classifier.match(header)
            got = view.match_index(header)
            if expected.rule is classifier.catch_all:
                assert got is None
            else:
                assert got == expected.index

    def test_cache_agrees_and_hits(self, workload):
        style, classifier, trace = workload
        cache = ClassificationCache(classifier)
        for header in trace:
            assert cache.match(header).index == classifier.match(header).index
        # Rule-targeted traffic should mostly hit the cached I part.
        assert cache.stats.hit_rate > 0.4


class TestOptimizationPipeline:
    def test_analysis_chain(self, workload):
        style, classifier, trace = workload
        independent = greedy_independent_set(classifier)
        assert independent.size / len(classifier.body) >= 0.8
        sub = classifier.subset(independent.rule_indices)
        reduction = fsm(sub)
        assert 1 <= len(reduction.kept_fields) <= classifier.num_fields
        grouping = l_mgr(classifier, l=2)
        stats = group_statistics(grouping)
        assert stats.covered_rules == len(classifier.body)
        assert stats.groups_for_95 <= stats.num_groups

    def test_rebuild_from_scratch_is_deterministic(self, workload):
        style, classifier, trace = workload
        a = SaxPacEngine(classifier).report()
        b = SaxPacEngine(classifier).report()
        assert a == b


class TestDynamicMirrorsStatic:
    def test_incremental_build_matches_reference(self, workload):
        style, classifier, trace = workload
        dyn = DynamicSaxPac(classbench_schema(), max_groups=10, fp_budget=2)
        for rule in classifier.body:
            dyn.insert(rule)
        reference = dyn.to_classifier()
        for header in trace[:300]:
            expected = reference.match(header)
            got = dyn.match_id(header)
            if got is None:
                assert expected.rule is reference.catch_all
            else:
                # A full-wildcard body rule doubles as the catch-all, so
                # compare rules rather than assuming catch-all => miss.
                assert dyn.rule(got) == expected.rule

    def test_dynamic_software_fraction(self, workload):
        style, classifier, trace = workload
        dyn = DynamicSaxPac(classbench_schema(), fp_budget=2)
        for rule in classifier.body:
            dyn.insert(rule)
        assert dyn.software_size / len(dyn) >= 0.8
