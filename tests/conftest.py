"""Shared fixtures: the paper's worked examples and small random inputs."""

from __future__ import annotations

import random

import pytest

from repro.core import Classifier, make_rule, uniform_schema


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def example1_classifier():
    """Example 1 / Figure 2: order-independent, two 5-bit fields."""
    schema = uniform_schema(2, 5)
    return Classifier(
        schema,
        [
            make_rule([(1, 3), (4, 31)], name="R1"),
            make_rule([(4, 4), (2, 30)], name="R2"),
            make_rule([(7, 9), (5, 21)], name="R3"),
        ],
    )


@pytest.fixture
def example2_classifier():
    """Example 2 / Figure 3: three 5-bit fields; field 0 suffices."""
    schema = uniform_schema(3, 5)
    return Classifier(
        schema,
        [
            make_rule([(1, 3), (4, 31), (1, 28)], name="R1"),
            make_rule([(4, 4), (2, 30), (4, 27)], name="R2"),
            make_rule([(7, 9), (5, 21), (3, 18)], name="R3"),
        ],
    )


@pytest.fixture
def example3_classifier():
    """Example 3 / Figure 4: order-dependent, splits into two groups."""
    schema = uniform_schema(3, 4)
    return Classifier(
        schema,
        [
            make_rule([(5, 10), (4, 7), (4, 5)], name="R1"),
            make_rule([(1, 4), (4, 7), (4, 5)], name="R2"),
            make_rule([(1, 9), (1, 3), (4, 6)], name="R3"),
            make_rule([(1, 9), (4, 7), (1, 3)], name="R4"),
            make_rule([(1, 9), (4, 7), (5, 6)], name="R5"),
        ],
    )


@pytest.fixture
def example5_classifier():
    """Example 5 / Figure 5: sending R3 and R5 to D leaves one group."""
    schema = uniform_schema(3, 5)
    return Classifier(
        schema,
        [
            make_rule([(5, 9), (4, 4), (4, 4)], name="R1"),
            make_rule([(2, 4), (5, 7), (5, 5)], name="R2"),
            make_rule([(2, 3), (1, 4), (4, 6)], name="R3"),
            make_rule([(1, 5), (1, 7), (1, 3)], name="R4"),
            make_rule([(1, 9), (1, 7), (1, 6)], name="R5"),
        ],
    )


@pytest.fixture
def example10_classifier():
    """Example 10 / Figure 7: dynamic insertion with budget C."""
    schema = uniform_schema(3, 4)
    return Classifier(
        schema,
        [
            make_rule([(1, 3), (4, 8), (1, 5)], name="R1"),
            make_rule([(7, 7), (1, 8), (4, 5)], name="R2"),
            make_rule([(4, 5), (6, 9), (4, 6)], name="R3"),
        ],
    )


def random_classifier(
    rng: random.Random,
    num_rules: int = 30,
    num_fields: int = 3,
    width: int = 6,
    max_span: int = 8,
) -> Classifier:
    """A small random classifier for property-style tests (arbitrary
    overlap patterns, so generally order-dependent)."""
    schema = uniform_schema(num_fields, width)
    max_value = (1 << width) - 1
    rules = []
    for _ in range(num_rules):
        ranges = []
        for _f in range(num_fields):
            if rng.random() < 0.2:
                ranges.append((0, max_value))
            else:
                low = rng.randint(0, max_value)
                high = min(max_value, low + rng.randint(0, max_span))
                ranges.append((low, high))
        rules.append(make_rule(ranges))
    return Classifier(schema, rules)
