"""The pluggable lookup-backend subsystem: registry, selector, learned
index, and the decision-identity contract.

The load-bearing property: every backend — forced or auto-picked,
freshly built or carried through an incremental rebuild — returns
byte-identical decisions to the linear reference scan.  The learned
backend additionally proves its window bound (a mispredict can cost
time, never correctness), and reindexed tombstone views must carry
private backend state so serving engines and rebuilt clones never share
counters or a stale model silently.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.mgr import Group
from repro.core import Classifier, make_rule, uniform_schema
from repro.core.packet import headers_array
from repro.lookup.backends import (
    LookupBackend,
    backend_names,
    build_with_backend,
    get_backend,
    register_backend,
    select_backend,
    structural_backend_name,
)
from repro.lookup.backends.learned import (
    LearnedGroupIndex,
    PiecewiseLinearModel,
    _disjoint_field,
)
from repro.lookup.backends.selector import (
    COLD_PROBES,
    LEARNED_MIN_SIZE,
    LINEAR_CUTOVER,
    group_heat_key,
)
from repro.lookup.group_engine import LinearGroupIndex
from repro.runtime.batch import linear_match_batch
from repro.saxpac.config import EngineConfig
from repro.saxpac.engine import SaxPacEngine
from strategies import classifiers, corner_headers_for

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BACKENDS = ("interval", "segment", "linear", "learned", "auto")

WIDTH = 16
FULL = (1 << WIDTH) - 1


def _disjoint_classifier(n: int) -> Classifier:
    """Two 16-bit fields; body rules pairwise disjoint on field 0 (rule
    ``i`` owns ``[4i, 4i+2]``), full-range on field 1 — so any grouping
    admits the learned backend on field 0."""
    schema = uniform_schema(2, WIDTH)
    body = [make_rule([(4 * i, 4 * i + 2), (0, FULL)]) for i in range(n)]
    return Classifier(schema, body)


def _overlapping_group():
    """A 2-field group disjoint only on the field *combination* — no
    single field is pairwise disjoint, so learned cannot serve it."""
    schema = uniform_schema(2, WIDTH)
    k = Classifier(
        schema,
        [
            make_rule([(0, 1), (0, 1)]),
            make_rule([(0, 1), (2, 3)]),
            make_rule([(2, 3), (0, 1)]),
        ],
    )
    return k, Group((0, 1, 2), (0, 1))


class TestRegistry:
    def test_names(self):
        names = backend_names()
        assert names == sorted(names)
        assert {"interval", "segment", "linear", "learned"} <= set(names)
        assert backend_names(include_auto=True)[0] == "auto"

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(KeyError, match="linear"):
            get_backend("btree")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend("linear"))
        register_backend(get_backend("linear"), replace=True)  # allowed

    def test_reserved_names_rejected(self):
        class Bad(LookupBackend):
            name = "auto"

        with pytest.raises(ValueError):
            register_backend(Bad())

    def test_engine_config_validates_backend(self):
        with pytest.raises(ValueError, match="unknown lookup_backend"):
            EngineConfig(lookup_backend="bogus")


class TestBuildWithBackend:
    def test_stamps_backend_identity(self):
        k = _disjoint_classifier(8)
        index = build_with_backend(k, Group(tuple(range(8)), (0,)),
                                   "interval")
        assert index.backend == "interval"
        assert index.backend_requested == "interval"
        assert not index.backend_fallback
        assert index.build_seconds >= 0.0
        report = index.backend_report()
        assert report["backend"] == "interval"
        assert report["slots"] == 8
        assert report["memory_items"] == index.memory_items()

    def test_unsupported_backend_falls_back_structurally(self):
        k = _disjoint_classifier(8)
        two_field = Group(tuple(range(8)), (0, 1))
        index = build_with_backend(k, two_field, "interval")
        assert index.backend == structural_backend_name(two_field)
        assert index.backend == "segment"
        assert index.backend_requested == "interval"
        assert index.backend_fallback

    def test_learned_needs_a_disjoint_field(self):
        k, group = _overlapping_group()
        assert _disjoint_field(k, group) is None
        assert not get_backend("learned").supports(k, group)
        index = build_with_backend(k, group, "learned")
        assert index.backend == "segment"
        assert index.backend_fallback


class TestSelector:
    def test_tiny_groups_stay_linear(self):
        k = _disjoint_classifier(LINEAR_CUTOVER - 1)
        group = Group(tuple(range(LINEAR_CUTOVER - 1)), (0,))
        assert select_backend(k, group) == "linear"

    def test_mid_size_groups_pick_structural(self):
        n = LINEAR_CUTOVER + 4
        assert n < LEARNED_MIN_SIZE
        k = _disjoint_classifier(n)
        assert select_backend(k, Group(tuple(range(n)), (0,))) == "interval"

    def test_large_disjoint_groups_pick_learned(self):
        n = LEARNED_MIN_SIZE
        k = _disjoint_classifier(n)
        assert select_backend(k, Group(tuple(range(n)), (0,))) == "learned"

    def test_cold_heat_demotes_to_structural(self):
        n = LEARNED_MIN_SIZE
        k = _disjoint_classifier(n)
        group = Group(tuple(range(n)), (0,))
        key = group_heat_key(0, group)
        cold = {key: {"probes": COLD_PROBES, "candidates": 0}}
        assert (
            select_backend(k, group, heat=cold, position=0) == "interval"
        )
        warm = {key: {"probes": COLD_PROBES, "candidates": 5}}
        assert (
            select_backend(k, group, heat=warm, position=0) == "learned"
        )
        # Without a position the heat signal cannot apply.
        assert select_backend(k, group, heat=cold) == "learned"


class TestPiecewiseLinearModel:
    @given(
        st.lists(
            st.tuples(st.integers(1, 50), st.integers(0, 30)),
            min_size=1,
            max_size=200,
        )
    )
    @_SETTINGS
    def test_max_error_bounds_all_contained_queries(self, spec):
        lows, highs = [], []
        cursor = 0
        for gap, length in spec:
            low = cursor + gap
            lows.append(low)
            highs.append(low + length)
            cursor = low + length + 1
        model = PiecewiseLinearModel(
            np.asarray(lows, dtype=np.float64),
            np.asarray(highs, dtype=np.float64),
        )
        for slot, (low, high) in enumerate(zip(lows, highs)):
            for value in (low, high, (low + high) // 2):
                error = abs(float(model.predict(np.float64(value))) - slot)
                assert error <= model.max_error + 1e-9

    def test_monotone(self):
        lows = np.arange(0, 1000, 10, dtype=np.float64)
        model = PiecewiseLinearModel(lows, lows + 3)
        samples = np.linspace(-5, 1005, 400)
        predictions = model.predict(samples)
        assert np.all(np.diff(predictions) >= 0)


class TestLearnedGroupIndex:
    def test_matches_linear_scan_on_sweep(self):
        n = 96
        k = _disjoint_classifier(n)
        group = Group(tuple(range(n)), (0,))
        learned = LearnedGroupIndex(k, group)
        linear = LinearGroupIndex(k, group)
        values = list(range(0, 4 * n + 4))
        headers = [(v, 0) for v in values]
        harr = headers_array(headers, k.schema)
        got = learned.probe_batch(headers, harr)
        want = linear.probe_batch(headers, harr)
        assert np.array_equal(got, want)
        for header in headers[:: max(1, len(headers) // 64)]:
            assert learned.probe(header) == linear.probe(header)
        stats = learned.backend_stats()
        assert stats["model_probes"] > 0
        assert 0.0 <= stats["mispredict_rate"] <= 1.0

    def test_tombstones_mask_hits(self):
        n = 80
        k = _disjoint_classifier(n)
        learned = LearnedGroupIndex(k, Group(tuple(range(n)), (0,)))
        dead = 5
        ids = learned.rule_ids.copy()
        ids[dead] = -1
        view = learned.reindexed(ids)
        header = (4 * dead + 1, 0)
        assert learned.probe(header) == dead
        assert view.probe(header) is None
        harr = headers_array([header], k.schema)
        assert view.probe_batch([header], harr)[0] == -1

    def test_reindexed_view_has_private_backend_state(self):
        """Satellite fix: reindexed (tombstone) views must not share
        mutable counters with the serving index — a retired engine must
        never mutate its successor's stats or double-drain telemetry."""
        n = 80
        k = _disjoint_classifier(n)
        learned = LearnedGroupIndex(k, Group(tuple(range(n)), (0,)))
        header = (5, 0)
        learned.probe(header)
        before = dict(learned.stats)
        clone = learned.reindexed(list(learned.rule_ids))
        assert clone.stats == before  # carried snapshot...
        clone.probe(header)
        clone.probe(header)
        assert learned.stats == before  # ...but independent after
        assert clone.stats["model_probes"] == before["model_probes"] + 2
        # Pending telemetry deltas drain independently: the original
        # still holds its pre-clone event, the clone only its own.
        assert learned.drain_backend_events()["model_probes"] == 1
        assert clone.drain_backend_events()["model_probes"] == 2
        assert learned.drain_backend_events() == {}


class TestEngineEquivalence:
    @given(st.data())
    @_SETTINGS
    def test_all_backends_byte_identical_to_linear_reference(self, data):
        k = data.draw(classifiers(max_rules=14))
        headers = [data.draw(corner_headers_for(k)) for _ in range(10)]
        want = [m.index for m in linear_match_batch(k, headers)]
        for backend in BACKENDS:
            engine = SaxPacEngine(
                k, EngineConfig(lookup_backend=backend)
            )
            got = [m.index for m in engine.match_batch(headers)]
            assert got == want, f"backend {backend} diverged"

    def test_forced_learned_serves_big_disjoint_group(self):
        n = 128
        k = _disjoint_classifier(n)
        engine = SaxPacEngine(
            k, EngineConfig(lookup_backend="learned")
        )
        assert "learned" in engine.report().group_backends
        headers = [(4 * i + 1, 7) for i in range(n)] + [(4 * n + 9, 0)]
        want = [m.index for m in linear_match_batch(k, headers)]
        got = [m.index for m in engine.match_batch(headers)]
        assert got == want


class TestEngineReporting:
    def test_report_carries_backends_out_of_equality(self):
        k = _disjoint_classifier(LEARNED_MIN_SIZE)
        engine = SaxPacEngine(k, EngineConfig(lookup_backend="auto"))
        report = engine.report()
        assert len(report.group_backends) == report.num_groups
        assert "learned" in report.group_backends
        # Backend assignment is an implementation detail: two
        # decision-identical builds must still compare equal.
        relabeled = dataclasses.replace(
            report, group_backends=("linear",) * report.num_groups
        )
        assert relabeled == report

    def test_backend_summary_shape(self):
        k = _disjoint_classifier(LEARNED_MIN_SIZE)
        engine = SaxPacEngine(k, EngineConfig(lookup_backend="auto"))
        summary = engine.backend_summary()
        assert len(summary) == len(engine.software.groups)
        for entry in summary:
            assert entry["backend"] in BACKENDS
            assert entry["slots"] >= entry["live"]
            assert entry["memory_items"] > 0


class TestRebuildRepick:
    def test_shrinking_group_demotes_learned_on_rebuild(self):
        """Satellite fix: when churn drops a group below the learned
        threshold, the incremental rebuild must re-pick and build a
        fresh structure — never keep serving a reindexed view of the
        demoted model."""
        n = LEARNED_MIN_SIZE + 2
        k = _disjoint_classifier(n)
        engine = SaxPacEngine(k, EngineConfig(lookup_backend="auto"))
        assert engine.software.groups[0].backend == "learned"
        survivors = LEARNED_MIN_SIZE - 2  # small churn: stays incremental
        shrunk = Classifier(k.schema, k.body[:survivors])
        rebuilt = engine.rebuild(shrunk)
        assert rebuilt.build_incremental
        group = rebuilt.software.groups[0]
        assert group.backend == structural_backend_name(group)
        assert group.backend in ("interval", "segment")
        assert not isinstance(group, LearnedGroupIndex)
        headers = [(4 * i + 1, 3) for i in range(n)]
        want = [m.index for m in linear_match_batch(shrunk, headers)]
        got = [m.index for m in rebuilt.match_batch(headers)]
        assert got == want

    def test_stable_group_keeps_learned_view_on_rebuild(self):
        n = LEARNED_MIN_SIZE + 16
        k = _disjoint_classifier(n)
        engine = SaxPacEngine(k, EngineConfig(lookup_backend="auto"))
        assert engine.software.groups[0].backend == "learned"
        shrunk = Classifier(k.schema, k.body[: n - 2])
        rebuilt = engine.rebuild(shrunk)
        assert rebuilt.build_incremental
        group = rebuilt.software.groups[0]
        assert group.backend == "learned"
        # The carried view shares the model but owns its counters.
        assert group.stats is not engine.software.groups[0].stats
        headers = [(4 * i + 1, 3) for i in range(n)]
        want = [m.index for m in linear_match_batch(shrunk, headers)]
        got = [m.index for m in rebuilt.match_batch(headers)]
        assert got == want

    def test_forced_backend_survives_rebuild(self):
        n = 48
        k = _disjoint_classifier(n)
        engine = SaxPacEngine(
            k, EngineConfig(lookup_backend="learned")
        )
        assert engine.software.groups[0].backend == "learned"
        shrunk = Classifier(k.schema, k.body[: n - 2])
        rebuilt = engine.rebuild(shrunk)
        assert rebuilt.software.groups[0].backend == "learned"
        headers = [(4 * i + 1, 3) for i in range(n)]
        want = [m.index for m in linear_match_batch(shrunk, headers)]
        got = [m.index for m in rebuilt.match_batch(headers)]
        assert got == want


class TestServingSurfaces:
    def test_service_snapshot_exposes_backends(self):
        from repro.runtime.service import RuntimeConfig, RuntimeService

        k = _disjoint_classifier(LEARNED_MIN_SIZE)
        config = RuntimeConfig(
            engine=EngineConfig(lookup_backend="auto")
        )
        with RuntimeService(k, config) as service:
            summary = service.backend_summary()
            assert summary is not None
            assert summary[0]["backend"] == "learned"
            payload = service.info_payload()
            assert payload["lookup_backends"] == summary
            server = service.serve_metrics(port=0)
            snapshot = server.render_snapshot()
            assert "lookup_backends" in snapshot
            assert (
                snapshot["lookup_backends"][0]["backend"] == "learned"
            )

    def test_render_top_annotates_backends(self):
        from repro.obs.heat import render_top

        report = {
            "sample_period": 1,
            "seen_packets": 10,
            "sampled_packets": 10,
            "rules": [],
            "groups": {
                "g0[0]": {"probes": 10, "candidates": 8,
                          "fp_failures": 0, "fp_rate": 0.0, "hits": 8},
                "d": {"probes": 10, "candidates": 2,
                      "fp_failures": 0, "fp_rate": 0.0, "hits": 2},
            },
        }
        text = render_top(report, backends={"g0[0]": "learned"})
        assert "backend=learned" in text
        assert "d " in text  # the D pseudo-stage stays unannotated


class TestTelemetryCounters:
    def test_backend_counters_and_mispredict_histogram(self):
        from repro.runtime.telemetry import Telemetry

        n = LEARNED_MIN_SIZE + 8
        k = _disjoint_classifier(n)
        recorder = Telemetry()
        engine = SaxPacEngine(
            k,
            EngineConfig(lookup_backend="learned"),
            recorder=recorder,
        )
        headers = [(4 * i + 1, 3) for i in range(32)]
        engine.match_batch(headers)
        snapshot = recorder.snapshot()
        counters = snapshot.counters
        assert counters.get("lookup.backend.learned.probes", 0) >= 32
        assert counters.get("lookup.backend.learned.model_probes", 0) >= 32
        stats = snapshot.latencies.get("lookup.learned.mispredict_rate")
        assert stats is not None and stats.count >= 1
