"""Tests for the command-line interface."""

import json
import re

import pytest

from repro.cli import main


@pytest.fixture
def small_txt(tmp_path):
    path = str(tmp_path / "acl.txt")
    assert main(["generate", "--style", "acl", "--rules", "60",
                 "--seed", "3", "--out", path]) == 0
    return path


class TestGenerate:
    def test_generate_classbench_text(self, tmp_path, capsys):
        path = str(tmp_path / "fw.txt")
        rc = main(["generate", "--style", "fw", "--rules", "40",
                   "--seed", "1", "--out", path])
        assert rc == 0
        assert "40 fw rules" in capsys.readouterr().out
        with open(path) as handle:
            lines = [l for l in handle if l.strip()]
        assert len(lines) == 40
        assert lines[0].startswith("@")

    def test_generate_json(self, tmp_path):
        path = str(tmp_path / "acl.json")
        assert main(["generate", "--style", "acl", "--rules", "25",
                     "--seed", "2", "--out", path]) == 0
        with open(path) as handle:
            data = json.load(handle)
        assert data["format"] == "saxpac-classifier"
        assert len(data["rules"]) == 26  # body + catch-all


class TestGenerateForwarding:
    def test_forwarding_json(self, tmp_path, capsys):
        path = str(tmp_path / "fib.json")
        rc = main(["generate", "--forwarding", "6", "--rules", "30",
                   "--seed", "1", "--out", path])
        assert rc == 0
        assert "IPv6 prefixes" in capsys.readouterr().out
        with open(path) as handle:
            data = json.load(handle)
        assert data["schema"][0]["width"] == 128

    def test_forwarding_requires_json(self, tmp_path, capsys):
        path = str(tmp_path / "fib.txt")
        rc = main(["generate", "--forwarding", "4", "--rules", "10",
                   "--seed", "1", "--out", path])
        assert rc == 2


class TestAnalyze:
    def test_analyze_text_file(self, small_txt, capsys):
        assert main(["analyze", small_txt]) == 0
        out = capsys.readouterr().out
        assert "order-independent" in out
        assert "FSM fields" in out

    def test_analyze_with_betas(self, small_txt, capsys):
        assert main(["analyze", small_txt, "--betas", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "beta=2" in out and "beta=4" in out

    def test_analyze_redundancy(self, small_txt, capsys):
        assert main(["analyze", small_txt, "--redundancy"]) == 0
        assert "provably-dead rules" in capsys.readouterr().out


class TestProfileAndConvert:
    def test_profile_saves_json(self, small_txt, tmp_path, capsys):
        out = str(tmp_path / "profiled.json")
        assert main(["profile", small_txt, "--out", out]) == 0
        with open(out) as handle:
            data = json.load(handle)
        assert "profile" in data
        assert data["profile"]["num_rules"] == 60

    def test_convert_roundtrip(self, small_txt, tmp_path):
        as_json = str(tmp_path / "c.json")
        back = str(tmp_path / "back.txt")
        assert main(["convert", small_txt, as_json]) == 0
        assert main(["convert", as_json, back]) == 0
        with open(small_txt) as a, open(back) as b:
            assert a.read() == b.read()


class TestClassify:
    def test_classify_reports_throughput(self, small_txt, capsys):
        assert main(["classify", small_txt, "--trace", "500",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "classified 500 packets" in out
        assert "group probes" in out

    def test_classify_cache_mode(self, small_txt, capsys):
        assert main(["classify", small_txt, "--trace", "200",
                     "--cache"]) == 0
        assert "D lookups skipped" in capsys.readouterr().out


class TestStatsAndFlows:
    def test_analyze_stats(self, small_txt, capsys):
        assert main(["analyze", small_txt, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "mean specificity" in out
        assert "src_ip" in out

    def test_export_flows_stdout(self, small_txt, capsys):
        assert main(["export-flows", small_txt]) == 0
        out = capsys.readouterr().out
        assert "priority=" in out
        assert "actions=" in out

    def test_export_flows_file(self, small_txt, tmp_path, capsys):
        out_path = str(tmp_path / "flows.txt")
        assert main(["export-flows", small_txt, "--out", out_path]) == 0
        assert "flows" in capsys.readouterr().out
        with open(out_path) as handle:
            assert "priority=" in handle.read()


class TestReport:
    def test_collates_result_files(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1_space.txt").write_text("Table 1 demo\n")
        (results / "custom_thing.txt").write_text("custom output\n")
        out = str(tmp_path / "REPORT.md")
        assert main(["report", "--results", str(results),
                     "--out", out]) == 0
        text = open(out).read()
        assert "Paper tables and figures" in text
        assert "Table 1 demo" in text
        assert "custom output" in text
        assert "## Other" in text

    def test_missing_directory(self, tmp_path, capsys):
        assert main(["report", "--results",
                     str(tmp_path / "nope")]) == 2


class TestRuntime:
    def test_runtime_replay(self, small_txt, capsys):
        assert main(["runtime", small_txt, "--trace", "600",
                     "--batch-size", "128"]) == 0
        out = capsys.readouterr().out
        assert "replayed 600 packets" in out
        assert "telemetry:" in out

    def test_runtime_obs_artifacts(self, small_txt, tmp_path, capsys):
        trace_out = str(tmp_path / "trace.json")
        heat_out = str(tmp_path / "heat.json")
        assert main(["runtime", small_txt, "--trace", "400",
                     "--obs", "--trace-out", trace_out,
                     "--heat-out", heat_out]) == 0
        out = capsys.readouterr().out
        assert "spans to" in out and "heat report" in out
        doc = json.loads(open(trace_out).read())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "runtime.batch" in names
        assert "engine.match_batch" in names
        heat = json.loads(open(heat_out).read())
        assert heat["version"] == 1
        assert heat["seen_packets"] == 400

    def test_runtime_serve_metrics(self, small_txt, capsys):
        # --linger keeps the endpoint alive just long enough to scrape
        # post-replay state... but scraping happens after main returns,
        # so scrape via the printed URL during a tiny linger would race.
        # Instead just assert the URL is printed and the replay works.
        assert main(["runtime", small_txt, "--trace", "200",
                     "--serve-metrics", "0"]) == 0
        out = capsys.readouterr().out
        assert re.search(r"metrics: http://127\.0\.0\.1:\d+/metrics", out)

    def test_runtime_json_mode_with_obs(self, small_txt, capsys):
        assert main(["runtime", small_txt, "--trace", "300",
                     "--obs", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["packets"] == 300
        latency = data["telemetry"]["latencies"]["runtime.batch"]
        assert sum(latency["buckets"]) == latency["count"]


class TestTop:
    def test_top_renders_heat(self, small_txt, capsys):
        assert main(["top", small_txt, "--trace", "500",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "hottest rules" in out
        assert "hottest groups" in out
        assert "hottest stages" in out
        assert "replayed 500 packets" in out

    def test_top_json_report(self, small_txt, capsys):
        assert main(["top", small_txt, "--trace", "300",
                     "--heat-sample", "2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["sample_period"] == 2
        assert report["seen_packets"] == 300
        assert report["rules"]

    def test_top_heat_out_feeds_cache_weights(self, small_txt, tmp_path,
                                              capsys):
        from repro.obs.heat import load_heat_report, rule_weights

        heat_out = str(tmp_path / "heat.json")
        assert main(["top", small_txt, "--trace", "400",
                     "--heat-out", heat_out]) == 0
        weights = rule_weights(load_heat_report(heat_out))
        assert weights and all(v > 0 for v in weights.values())

    def test_top_sharded(self, small_txt, capsys):
        assert main(["top", small_txt, "--trace", "400",
                     "--shards", "2"]) == 0
        assert "hottest rules" in capsys.readouterr().out


class TestExperiments:
    def test_table3_runs(self, capsys, monkeypatch):
        assert main(["experiments", "table3", "--rules", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "acl1" in out

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "table9"])


class TestServeClient:
    def test_serve_then_client_verify(self, small_txt, tmp_path, capsys):
        """End-to-end through the CLI: serve in a thread, drive it with
        `client --verify`, then let --max-seconds drain it cleanly."""
        import socket
        import threading

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        serve_rc = []
        server = threading.Thread(
            target=lambda: serve_rc.append(
                main(["serve", small_txt, "--port", str(port),
                      "--max-seconds", "4", "--coalesce-wait-ms", "0.2"])
            )
        )
        server.start()
        out = str(tmp_path / "client.json")
        rc = main(["client", small_txt, "--port", str(port),
                   "--packets", "2000", "--request-size", "16",
                   "--window", "16", "--verify", "--out", out])
        server.join(30.0)
        assert rc == 0
        assert not server.is_alive()
        assert serve_rc == [0], "serve did not drain cleanly"
        with open(out) as handle:
            report = json.load(handle)
        assert report["packets"] == 2000
        assert report["verify_mismatches"] == 0
        text = capsys.readouterr().out
        assert "drain: clean" in text
        # The pipelined window gave the coalescer something to merge.
        served = re.search(
            r"served (\d+) requests .* in (\d+) coalesced lookups", text
        )
        assert served, text
        assert int(served.group(2)) < int(served.group(1))

    def test_client_connection_refused_exits_2(self, small_txt, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        rc = main(["client", small_txt, "--port", str(port),
                   "--packets", "10", "--wait-s", "0.2"])
        assert rc == 2


class TestFlightrec:
    @pytest.fixture
    def dump_file(self, tmp_path):
        from repro.obs import FlightRecorder

        recorder = FlightRecorder()
        recorder.note(
            7,
            0xFACE,
            "shed",
            total_s=2e-3,
            stages=lambda: {"queue_wait": 1.5e-3},
            state=lambda: {"health": "healthy"},
            error="watermark",
        )
        path = tmp_path / "dump.json"
        path.write_text(json.dumps(recorder.dump()))
        return str(path)

    def test_renders_dump_file(self, dump_file, capsys):
        assert main(["flightrec", dump_file]) == 0
        out = capsys.readouterr().out
        assert "retained shed=1" in out
        assert f"{0xFACE:016x}" in out
        assert "queue_wait=1500us" in out
        assert "health=healthy" in out
        assert "error:  watermark" in out

    def test_json_passthrough(self, dump_file, capsys):
        assert main(["flightrec", dump_file, "--json"]) == 0
        dump = json.loads(capsys.readouterr().out)
        assert dump["retained"] == {"shed": 1}

    def test_unreachable_endpoint_fails_cleanly(self, capsys):
        assert main(["flightrec", "http://127.0.0.1:1", "--json"]) == 2
        assert "could not fetch" in capsys.readouterr().err
