"""Tests for the MRC family (Problems 3/4 heuristics, EDF)."""

import random

import pytest

from repro.analysis.mrc import (
    edf_single_field,
    exact_independent_set_small,
    greedy_independent_set,
    l_mrc,
)
from repro.analysis.order_independence import rules_order_independent
from repro.core import Classifier, make_rule, uniform_schema
from conftest import random_classifier


def _check_independent(classifier, result):
    rules = [classifier.rules[i] for i in result.rule_indices]
    assert rules_order_independent(rules, result.fields)


class TestGreedyIndependentSet:
    def test_example3_takes_first_independent_prefix(self, example3_classifier):
        result = greedy_independent_set(example3_classifier)
        _check_independent(example3_classifier, result)
        # R1..R4 are pairwise disjoint; R5 intersects R4 -> greedy keeps 4.
        assert result.rule_indices == (0, 1, 2, 3)

    def test_fully_independent_keeps_everything(self, example1_classifier):
        result = greedy_independent_set(example1_classifier)
        assert result.size == 3

    def test_complement(self, example3_classifier):
        result = greedy_independent_set(example3_classifier)
        assert result.complement(5) == (4,)

    def test_custom_order_changes_selection(self, example3_classifier):
        result = greedy_independent_set(
            example3_classifier, order=[4, 3, 2, 1, 0]
        )
        _check_independent(example3_classifier, result)
        assert 4 in result.rule_indices

    def test_field_subset(self, example3_classifier):
        result = greedy_independent_set(example3_classifier, fields=[0, 1])
        _check_independent(example3_classifier, result)

    @pytest.mark.parametrize("seed", range(6))
    def test_maximality(self, seed):
        # No rejected rule could be added back.
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=20)
        result = greedy_independent_set(k)
        chosen = [k.rules[i] for i in result.rule_indices]
        for i in range(len(k.body)):
            if i not in result.rule_indices:
                extended = chosen + [k.rules[i]]
                assert not rules_order_independent(extended)

    @pytest.mark.parametrize("seed", range(6))
    def test_greedy_vs_exact_small(self, seed):
        rng = random.Random(50 + seed)
        k = random_classifier(rng, num_rules=10)
        greedy = greedy_independent_set(k)
        exact = exact_independent_set_small(k)
        assert greedy.size <= exact.size
        # Priority-greedy on interval intersection graphs stays close.
        assert greedy.size >= max(1, exact.size // 2)

    def test_empty_body(self):
        schema = uniform_schema(2, 4)
        k = Classifier(schema, [])
        assert greedy_independent_set(k).size == 0


class TestEdf:
    def test_edf_is_optimal_single_field(self):
        rng = random.Random(9)
        for _ in range(8):
            k = random_classifier(rng, num_rules=10, num_fields=1, width=5)
            edf = edf_single_field(k, 0)
            exact = exact_independent_set_small(k, fields=[0])
            assert edf.size == exact.size

    def test_edf_result_is_disjoint(self):
        rng = random.Random(10)
        k = random_classifier(rng, num_rules=30, num_fields=2)
        result = edf_single_field(k, 1)
        _check_independent(k, result)

    def test_edf_known_instance(self):
        schema = uniform_schema(1, 5)
        k = Classifier(
            schema,
            [
                make_rule([(0, 10)]),
                make_rule([(0, 2)]),
                make_rule([(3, 5)]),
                make_rule([(6, 8)]),
            ],
        )
        result = edf_single_field(k, 0)
        assert result.size == 3
        assert result.rule_indices == (1, 2, 3)


class TestLMrc:
    def test_paper_counterexample_field_choice(self):
        # Section 6.2.2: field 1 separates fewer pairs than field 0 but
        # yields the larger independent set; the heuristic may settle for
        # the coverage-optimal field, but must return a valid result.
        schema = uniform_schema(2, 3)
        k = Classifier(
            schema,
            [
                make_rule([(0, 1), (0, 0)]),
                make_rule([(2, 3), (1, 1)]),
                make_rule([(0, 1), (2, 2)]),
                make_rule([(2, 3), (0, 3)]),
            ],
        )
        result = l_mrc(k, 1)
        _check_independent(k, result)
        assert len(result.fields) == 1
        assert result.size >= 2

    def test_l_equal_k_is_plain_greedy(self, example3_classifier):
        full = greedy_independent_set(example3_classifier)
        via_l = l_mrc(example3_classifier, example3_classifier.num_fields)
        assert via_l.rule_indices == full.rule_indices

    def test_l2_uses_at_most_two_fields(self, example3_classifier):
        result = l_mrc(example3_classifier, 2)
        assert len(result.fields) <= 2
        _check_independent(example3_classifier, result)

    def test_invalid_l(self, example3_classifier):
        with pytest.raises(ValueError):
            l_mrc(example3_classifier, 0)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("l", [1, 2])
    def test_random_instances_valid(self, seed, l):
        rng = random.Random(200 + seed)
        k = random_classifier(rng, num_rules=25, num_fields=4)
        result = l_mrc(k, l)
        assert len(result.fields) <= l
        _check_independent(k, result)


class TestExactSmall:
    def test_limit_enforced(self):
        rng = random.Random(11)
        k = random_classifier(rng, num_rules=30)
        with pytest.raises(ValueError):
            exact_independent_set_small(k, limit=10)

    def test_exact_on_example4(self):
        # Example 4: all three rules are independent using two fields,
        # but any single field yields at most two.
        schema = uniform_schema(3, 4)
        k = Classifier(
            schema,
            [
                make_rule([(5, 10), (4, 7), (4, 5)]),
                make_rule([(1, 4), (4, 7), (4, 5)]),
                make_rule([(1, 9), (1, 3), (4, 6)]),
            ],
        )
        assert exact_independent_set_small(k, fields=[0, 1]).size == 3
        assert exact_independent_set_small(k, fields=[0]).size == 2
        assert exact_independent_set_small(k, fields=[1]).size == 2
