"""Tests for repro.obs.heat: sampling, merging, reports, cache feed."""

import json
import random

import numpy as np
import pytest

from conftest import random_classifier
from repro.obs.heat import (
    GroupHeat,
    HEAT_REPORT_VERSION,
    HeatProfiler,
    load_heat_report,
    render_net_panel,
    render_slo_panel,
    render_top,
    rule_weights,
)
from repro.runtime.telemetry import Telemetry


class TestRecording:
    def test_rule_hits_tally(self):
        heat = HeatProfiler()
        heat.record_rules([1, 2, 2, 3, 2])
        assert heat.top_rules(2) == [(2, 3), (1, 1)]
        assert heat.seen_packets == 5
        assert heat.sampled_packets == 5

    def test_accepts_numpy_arrays(self):
        heat = HeatProfiler()
        heat.record_rules(np.array([0, 0, 7]))
        assert dict(heat.top_rules()) == {0: 2, 7: 1}

    def test_empty_batch_noop(self):
        heat = HeatProfiler()
        heat.record_rules([])
        assert heat.seen_packets == 0

    def test_sampling_records_every_kth(self):
        heat = HeatProfiler(sample_period=4)
        heat.record_rules(list(range(100)))
        assert heat.seen_packets == 100
        assert heat.sampled_packets == 25

    def test_sampling_stride_spans_batches(self):
        # Period 3 over batches of 2: the stride phase must carry over so
        # exactly every 3rd packet overall is sampled.
        heat = HeatProfiler(sample_period=3)
        for _ in range(9):
            heat.record_rules([1, 1])
        assert heat.seen_packets == 18
        assert heat.sampled_packets == 6

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            HeatProfiler(sample_period=0)

    def test_group_tallies(self):
        heat = HeatProfiler()
        heat.record_group("g0[0,1]", probes=10, candidates=6,
                          fp_failures=2, hits=4)
        heat.record_group("g0[0,1]", probes=10, candidates=4, hits=4)
        report = heat.report()
        group = report["groups"]["g0[0,1]"]
        assert group["probes"] == 20
        assert group["candidates"] == 10
        assert group["fp_failures"] == 2
        assert group["fp_rate"] == pytest.approx(0.2)
        assert group["hits"] == 8


class TestMerging:
    def test_drain_absorb_round_trip(self):
        worker, parent = HeatProfiler(), HeatProfiler()
        worker.record_rules([5, 5, 9])
        worker.record_group("d", probes=3, hits=1)
        parent.record_rules([5])
        parent.absorb(worker.drain())
        assert dict(parent.top_rules()) == {5: 3, 9: 1}
        assert parent.report()["groups"]["d"]["probes"] == 3
        assert worker.seen_packets == 0  # drained

    def test_group_heat_merge(self):
        a = GroupHeat(probes=1, candidates=2, fp_failures=1, hits=1)
        a.merge(GroupHeat(probes=2, candidates=2, fp_failures=0, hits=2))
        assert (a.probes, a.candidates, a.fp_failures, a.hits) == (3, 4, 1, 3)

    def test_fp_rate_zero_without_candidates(self):
        assert GroupHeat().fp_rate == 0.0


class TestReport:
    def test_report_schema_and_scaling(self):
        heat = HeatProfiler(sample_period=2)
        heat.record_rules([4, 4, 4, 8])
        report = heat.report()
        assert report["version"] == HEAT_REPORT_VERSION
        assert report["sample_period"] == 2
        assert report["seen_packets"] == 4
        for entry in report["rules"]:
            assert entry["estimated_hits"] == entry["hits"] * 2

    def test_rules_sorted_hottest_first(self):
        heat = HeatProfiler()
        heat.record_rules([3, 1, 1, 1, 2, 2])
        ranks = [entry["rule"] for entry in heat.report()["rules"]]
        assert ranks == [1, 2, 3]

    def test_to_json_and_load(self, tmp_path):
        heat = HeatProfiler()
        heat.record_rules([0, 1])
        path = str(tmp_path / "heat.json")
        heat.to_json(path)
        report = load_heat_report(path)
        assert report["sampled_packets"] == 2

    def test_load_rejects_unknown_version(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"version": 99}, handle)
        with pytest.raises(ValueError):
            load_heat_report(path)

    def test_rule_weights_shape(self):
        heat = HeatProfiler(sample_period=5)
        heat.record_rules([2, 2, 2, 2, 2])
        weights = rule_weights(heat.report())
        assert weights == {2: 5}  # 1 sampled hit x period


class TestRenderTop:
    def test_render_sections(self):
        heat = HeatProfiler()
        heat.record_rules([0, 0, 1])
        heat.record_group("g0[0,1]", probes=3, candidates=2, hits=2)
        tel = Telemetry()
        tel.observe("engine.match_batch", 0.002)
        text = render_top(
            heat.report(), latencies=tel.snapshot().latencies, k=5
        )
        assert "hottest rules" in text
        assert "rule      0" in text
        assert "g0[0,1]" in text
        assert "engine.match_batch" in text

    def test_render_includes_rule_repr_when_given(self):
        rng = random.Random(3)
        classifier = random_classifier(rng, num_rules=10)
        heat = HeatProfiler()
        heat.record_rules([0])
        text = render_top(heat.report(), rules=classifier.rules)
        assert "Rule(" in text

    def test_render_empty_report(self):
        assert "0 sampled" in render_top(HeatProfiler().report())


class TestEngineIntegration:
    def test_engine_records_rule_and_group_heat(self):
        from repro.obs import Observability
        from repro.saxpac.engine import SaxPacEngine
        from repro.workloads.traces import generate_trace

        rng = random.Random(5)
        classifier = random_classifier(rng, num_rules=40)
        obs = Observability.create(tracing=False, heat=True)
        engine = SaxPacEngine(classifier, recorder=obs.recorder)
        trace = generate_trace(classifier, 300, seed=4)
        results = engine.match_batch(trace)
        report = obs.heat.report()
        assert report["seen_packets"] == 300
        # Group keys are positional + field subset, plus the D remainder.
        for key in report["groups"]:
            assert key == "d" or key.startswith("g")
        # Every winning rule the engine returned shows up in the tally.
        import collections

        want = collections.Counter(r.index for r in results)
        got = {e["rule"]: e["hits"] for e in report["rules"]}
        assert got == dict(want)

    def test_disabled_recorder_records_nothing(self):
        from repro.saxpac.engine import SaxPacEngine
        from repro.workloads.traces import generate_trace

        rng = random.Random(5)
        classifier = random_classifier(rng, num_rules=20)
        engine = SaxPacEngine(classifier)  # NULL_RECORDER
        trace = generate_trace(classifier, 100, seed=4)
        engine.match_batch(trace)
        assert engine.recorder.heat is None
        assert engine.recorder.tracer is None


class TestCacheIntegration:
    def test_heat_aware_trimming_prefers_hot_rules(self):
        from repro.saxpac.cache import ClassificationCache

        rng = random.Random(11)
        classifier = random_classifier(rng, num_rules=30)
        cold = ClassificationCache(classifier, capacity=8)
        kept_cold = {
            idx for g in cold.grouping.groups for idx in g.rule_indices
        }
        # Make the rules cold trimming dropped the hottest ones.
        dropped = [i for i in range(len(classifier.body))
                   if i not in kept_cold]
        if not dropped:
            pytest.skip("capacity kept everything; nothing to trim")
        heat = {idx: 1000 for idx in dropped}
        hot = ClassificationCache(classifier, capacity=8, heat=heat)
        kept_hot = {
            idx for g in hot.grouping.groups for idx in g.rule_indices
        }
        hot_kept = sum(1 for idx in dropped if idx in kept_hot)
        cold_kept = sum(1 for idx in dropped if idx in kept_cold)
        assert hot_kept > cold_kept


class TestNetPanel:
    def test_empty_without_wire_traffic(self):
        assert render_net_panel({}) == ""
        assert render_net_panel({"engine.lookups": 5}) == ""

    def test_renders_rate_coalesce_and_sheds(self):
        text = render_net_panel(
            {
                "net.requests": 1000,
                "net.lookups": 250,
                "net.shed": 3,
                "net.drains": 1,
            },
            gauges={"net.inflight": 7},
            elapsed_s=2.0,
        )
        assert "500 req/s" in text
        assert "inflight=7" in text
        assert "coalesce=4.00x" in text
        assert "shed=3" in text


class TestSloPanel:
    def test_empty_without_slo_gauges(self):
        assert render_slo_panel(None) == ""
        assert render_slo_panel({"net.inflight": 1.0}) == ""

    def test_renders_burns_and_fast_burn_marker(self):
        gauges = {
            "slo.serve.availability_burn_5m": 60.0,
            "slo.serve.availability_burn_1h": 60.0,
            "slo.serve.latency_burn_5m": 0.25,
            "slo.serve.latency_burn_1h": 0.25,
            "slo.serve.fast_burn": 1.0,
        }
        text = render_slo_panel(gauges)
        assert "serve" in text
        assert "5m=60.00" in text
        assert "FAST BURN" in text
        calm = dict(gauges)
        calm["slo.serve.fast_burn"] = 0.0
        assert "FAST BURN" not in render_slo_panel(calm)
