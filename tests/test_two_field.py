"""Tests for the two-field lookup index."""

import random

import pytest

from repro.core import Interval
from repro.lookup.two_field import TwoFieldIndex


def _independent_boxes(rng, count, universe=60):
    """Random boxes pairwise disjoint in at least one of two dimensions:
    place each box on a distinct value-grid row or column."""
    boxes = []
    for i in range(count):
        if rng.random() < 0.5:
            # Unique stripe in dimension a.
            a_lo = i * 10
            a = Interval(a_lo, a_lo + rng.randint(0, 5))
            b_lo = rng.randint(0, universe)
            b = Interval(b_lo, b_lo + rng.randint(0, 30))
        else:
            a_lo = i * 10
            a = Interval(a_lo, a_lo + rng.randint(0, 9))
            b_lo = rng.randint(0, universe)
            b = Interval(b_lo, b_lo + rng.randint(0, 10))
        boxes.append((a, b))
    return boxes


class TestLookup:
    def test_basic_hit_and_miss(self):
        index = TwoFieldIndex(
            [
                (Interval(0, 5), Interval(0, 5), "low"),
                (Interval(10, 15), Interval(10, 15), "high"),
            ]
        )
        assert index.lookup(3, 3) == "low"
        assert index.lookup(12, 11) == "high"
        assert index.lookup(3, 12) is None
        assert index.lookup(7, 7) is None

    def test_overlapping_first_dim_disjoint_second(self):
        # Both boxes cover a=[0,10]; they must be disjoint in b.
        index = TwoFieldIndex(
            [
                (Interval(0, 10), Interval(0, 4), "bottom"),
                (Interval(0, 10), Interval(5, 9), "top"),
            ]
        )
        assert index.lookup(5, 2) == "bottom"
        assert index.lookup(5, 7) == "top"
        assert index.lookup(5, 10) is None

    def test_violating_order_independence_rejected(self):
        # Identical first-field intervals land in the same canonical
        # nodes, so the overlapping second field is detected at build
        # time.  (Violations across different canonical nodes cannot be
        # fully detected structurally; callers are responsible for the
        # order-independence precondition.)
        with pytest.raises(ValueError):
            TwoFieldIndex(
                [
                    (Interval(0, 10), Interval(0, 5), "a"),
                    (Interval(0, 10), Interval(3, 8), "b"),
                ]
            )

    def test_empty(self):
        index = TwoFieldIndex([])
        assert index.lookup(0, 0) is None
        assert len(index) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_linear_scan(self, seed):
        rng = random.Random(seed)
        boxes = _independent_boxes(rng, 12)
        index = TwoFieldIndex(
            (a, b, i) for i, (a, b) in enumerate(boxes)
        )
        for _ in range(300):
            va = rng.randint(0, 130)
            vb = rng.randint(0, 100)
            expected = None
            for i, (a, b) in enumerate(boxes):
                if a.contains(va) and b.contains(vb):
                    expected = i
                    break
            assert index.lookup(va, vb) == expected

    def test_memory_slots_reported(self):
        rng = random.Random(99)
        boxes = _independent_boxes(rng, 20)
        index = TwoFieldIndex((a, b, i) for i, (a, b) in enumerate(boxes))
        assert index.memory_slots >= len(boxes)
