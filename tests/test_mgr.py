"""Tests for MGR / (β,l)-MRC / MRCC (Problems 2, 4, 5)."""

import random

import pytest

from repro.analysis.mgr import (
    beta_l_mrc,
    enforce_cache_property,
    group_statistics,
    l_mgr,
)
from repro.analysis.order_independence import rules_order_independent
from repro.core import Classifier, make_rule, uniform_schema
from conftest import random_classifier


def _check_groups(classifier, result):
    """Every group must be order-independent on its own fields and within
    the l budget; assignments must partition the scanned rules."""
    seen = set()
    for group in result.groups:
        assert len(group.fields) <= result.l
        rules = [classifier.rules[i] for i in group.rule_indices]
        assert rules_order_independent(rules, group.fields)
        for idx in group.rule_indices:
            assert idx not in seen
            seen.add(idx)
    for idx in result.ungrouped:
        assert idx not in seen
        seen.add(idx)
    return seen


class TestLMgr:
    def test_example3_two_groups(self, example3_classifier):
        result = l_mgr(example3_classifier, l=2)
        covered = _check_groups(example3_classifier, result)
        assert covered == set(range(5))
        assert result.ungrouped == ()
        # The paper splits into {R1,R2,R3} (fields {0,1}) and {R4,R5}
        # (field {2}); the greedy scan reproduces exactly that.
        assert result.num_groups == 2
        assert result.groups[0].rule_indices == (0, 1, 2)
        assert result.groups[1].rule_indices == (3, 4)

    def test_example3_group_fields(self, example3_classifier):
        result = l_mgr(example3_classifier, l=2)
        g1, g2 = result.groups
        rules = example3_classifier.rules
        assert rules_order_independent(
            [rules[i] for i in g1.rule_indices], g1.fields
        )
        # Second group is independent on the third field alone.
        assert rules_order_independent(
            [rules[i] for i in g2.rule_indices], [2]
        )

    def test_order_independent_classifier_single_group(
        self, example2_classifier
    ):
        result = l_mgr(example2_classifier, l=1)
        assert result.num_groups == 1
        assert result.groups[0].size == 3

    def test_all_rules_covered_without_beta(self):
        rng = random.Random(0)
        k = random_classifier(rng, num_rules=40)
        result = l_mgr(k, l=2)
        covered = _check_groups(k, result)
        assert covered == set(range(len(k.body)))
        assert not result.ungrouped

    @pytest.mark.parametrize("l", [1, 2, 3])
    def test_field_budget_respected(self, l):
        rng = random.Random(l)
        k = random_classifier(rng, num_rules=30, num_fields=3)
        result = l_mgr(k, l=l)
        _check_groups(k, result)

    def test_invalid_l(self, example3_classifier):
        with pytest.raises(ValueError):
            l_mgr(example3_classifier, l=0)

    def test_rule_subset_restriction(self, example3_classifier):
        result = l_mgr(example3_classifier, l=2, rule_subset=[0, 1, 2])
        covered = _check_groups(example3_classifier, result)
        assert covered == {0, 1, 2}

    def test_group_fields_pick_narrowest(self):
        # Fields of different widths: group field choice minimizes width.
        from repro.core import FieldSchema, FieldSpec

        schema = FieldSchema(
            (FieldSpec("wide", 16), FieldSpec("narrow", 4))
        )
        k = Classifier(
            schema,
            [
                make_rule([(0, 100), (1, 1)]),
                make_rule([(50, 200), (2, 2)]),
            ],
        )
        result = l_mgr(k, l=1)
        assert result.num_groups == 1
        assert result.groups[0].fields == (1,)


class TestBetaLMrc:
    def test_beta_caps_groups(self):
        rng = random.Random(5)
        k = random_classifier(rng, num_rules=40)
        capped = beta_l_mrc(k, beta=2, l=1)
        assert capped.num_groups <= 2
        _check_groups(k, capped)

    def test_spill_goes_to_ungrouped(self):
        # Three mutually intersecting rules, beta=1, l=k: only one group.
        schema = uniform_schema(2, 5)
        k = Classifier(
            schema,
            [
                make_rule([(0, 10), (0, 10)]),
                make_rule([(5, 15), (5, 15)]),
                make_rule([(0, 15), (0, 15)]),
            ],
        )
        result = beta_l_mrc(k, beta=1, l=2)
        assert result.num_groups == 1
        assert len(result.ungrouped) == 2

    def test_invalid_beta(self, example3_classifier):
        with pytest.raises(ValueError):
            beta_l_mrc(example3_classifier, beta=0, l=1)

    def test_example5_beta1_spills_general_rules(self, example5_classifier):
        # With a single group on one field, the greedy scan mirrors the
        # paper's observation: broad bottom rules spill to D.
        result = beta_l_mrc(example5_classifier, beta=1, l=1)
        assert result.num_groups == 1
        _check_groups(example5_classifier, result)
        assert result.ungrouped  # something had to spill


class TestCacheProperty:
    def _violations(self, classifier, result):
        grouped = result.grouped_indices()
        out = []
        for i in grouped:
            for d in result.ungrouped:
                if d < i and classifier.rules[d].intersects(
                    classifier.rules[i]
                ):
                    out.append((d, i))
        return out

    def test_enforced_has_no_violations(self):
        rng = random.Random(7)
        for _ in range(6):
            k = random_classifier(rng, num_rules=25)
            result = beta_l_mrc(k, beta=2, l=2)
            fixed = enforce_cache_property(k, result)
            assert not self._violations(k, fixed)
            _check_groups(k, fixed)

    def test_no_op_when_clean(self, example3_classifier):
        result = l_mgr(example3_classifier, l=2)
        fixed = enforce_cache_property(example3_classifier, result)
        assert fixed.grouped_indices() == result.grouped_indices()

    def test_demotion_cascades(self):
        schema = uniform_schema(1, 6)
        # r0 broad (will be spilled by beta), r1 and r2 nested under it.
        k = Classifier(
            schema,
            [
                make_rule([(0, 40)]),
                make_rule([(0, 10)]),
                make_rule([(20, 30)]),
            ],
        )
        result = beta_l_mrc(k, beta=1, l=1, order=[1, 2, 0])
        # group holds r1, r2; r0 spilled with the highest priority.
        assert set(result.ungrouped) == {0}
        fixed = enforce_cache_property(k, result)
        assert set(fixed.ungrouped) == {0, 1, 2}


class TestGroupStatistics:
    def test_example3_stats(self, example3_classifier):
        result = l_mgr(example3_classifier, l=2)
        stats = group_statistics(result)
        assert stats.num_groups == 2
        assert stats.covered_rules == 5
        assert stats.groups_for_95 == 2
        assert stats.groups_le_2 == 1
        assert stats.groups_le_5 == 2

    def test_single_group_covers_all(self, example2_classifier):
        stats = group_statistics(l_mgr(example2_classifier, l=1))
        assert stats.num_groups == 1
        assert stats.groups_for_95 == 1
        assert stats.groups_for_99 == 1

    def test_empty(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [])
        stats = group_statistics(l_mgr(k, l=1))
        assert stats.num_groups == 0
        assert stats.groups_for_95 == 0
