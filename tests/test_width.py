"""Tests for width metrics and the virtual-field FSM (Section 4.4)."""


from repro.boolean.ternary import word_from_pattern
from repro.boolean.width import (
    enclosing_prefix_word,
    pure_width,
    same_value_reduced_width,
    virtual_field_fsm,
    words_from_classifier,
)
from repro.core import Classifier, Interval, make_rule, uniform_schema


def _words(*patterns):
    return [word_from_pattern(p) for p in patterns]


class TestWidthMetrics:
    def test_pure_width_counts_cared_columns(self):
        terms = _words("1**0", "0**1")
        assert pure_width(terms, 4) == 2

    def test_pure_width_any_care_counts(self):
        terms = _words("1***", "*1**")
        assert pure_width(terms, 4) == 2

    def test_reduced_width_drops_constant_columns(self):
        # Column 0 (MSB) is always 1: it cannot change which term matches.
        terms = _words("10*", "11*")
        assert pure_width(terms, 3) == 2
        assert same_value_reduced_width(terms, 3) == 1

    def test_reduced_width_keeps_mixed_wildcards(self):
        # Column 0 is 1 in one term and * in the other: must be kept.
        terms = _words("10", "*1")
        assert same_value_reduced_width(terms, 2) == 2

    def test_empty_terms(self):
        assert pure_width([], 4) == 0
        assert same_value_reduced_width([], 4) == 0


class TestEnclosingPrefix:
    def test_exact_value(self):
        value, care = enclosing_prefix_word(Interval(5, 5), 4)
        assert (value, care) == (5, 0b1111)

    def test_prefix_interval(self):
        value, care = enclosing_prefix_word(Interval(8, 11), 4)
        assert (value, care) == (8, 0b1100)

    def test_non_prefix_interval_widens(self):
        # [5, 6] = 0101/0110 -> common prefix 01??.
        value, care = enclosing_prefix_word(Interval(5, 6), 4)
        assert (value, care) == (4, 0b1100)

    def test_full_range(self):
        value, care = enclosing_prefix_word(Interval(0, 15), 4)
        assert (value, care) == (0, 0)

    def test_soundness_contains_interval(self):
        # The widened prefix matches every point of the interval.
        for lo, hi in [(3, 9), (1, 14), (7, 8)]:
            value, care = enclosing_prefix_word(Interval(lo, hi), 4)
            for v in range(lo, hi + 1):
                assert (v & care) == value


class TestWordsFromClassifier:
    def test_concatenation_order(self):
        schema = uniform_schema(2, 4)
        k = Classifier(schema, [make_rule([(5, 5), (8, 11)])])
        (word,) = words_from_classifier(k)
        assert word.pattern() == "010110**"

    def test_rule_subset(self, example3_classifier):
        words = words_from_classifier(example3_classifier, [0, 2])
        assert len(words) == 2


class TestVirtualFieldFsm:
    def test_example6_field_level(self):
        """Example 6: at 4-bit resolution FSM keeps one virtual field."""
        schema = uniform_schema(2, 4)
        k = Classifier(
            schema,
            [
                make_rule([(0b1000, 0b1001), (0b0010, 0b0011)]),  # 100*, 001*
                make_rule([(0b1010, 0b1010), (0b0001, 0b0001)]),  # 1010, 0001
                make_rule([(0b0000, 0b0001), (0b0000, 0b1111)]),  # 000*, ****
                make_rule([(0b0010, 0b0011), (0b0000, 0b1111)]),  # 001*, ****
            ],
        )
        words = words_from_classifier(k)
        result = virtual_field_fsm(words, 8, 4)
        assert not result.dropped_rules
        assert result.reduced_width == 4
        assert result.chosen_fields == (0,)

    def test_example6_bit_level(self):
        """At 1-bit resolution two bits suffice (bits 1 and 3 of field 0)."""
        schema = uniform_schema(2, 4)
        k = Classifier(
            schema,
            [
                make_rule([(0b1000, 0b1001), (0b0010, 0b0011)]),
                make_rule([(0b1010, 0b1010), (0b0001, 0b0001)]),
                make_rule([(0b0000, 0b0001), (0b0000, 0b1111)]),
                make_rule([(0b0010, 0b0011), (0b0000, 0b1111)]),
            ],
        )
        words = words_from_classifier(k)
        result = virtual_field_fsm(words, 8, 1)
        assert not result.dropped_rules
        assert result.reduced_width == 2

    def test_inseparable_rules_dropped(self):
        words = _words("1*", "1*")  # identical -> never separable
        result = virtual_field_fsm(words, 2, 1)
        assert len(result.dropped_rules) == 1

    def test_single_word(self):
        result = virtual_field_fsm(_words("10"), 2, 1)
        assert result.reduced_width == 1

    def test_empty(self):
        result = virtual_field_fsm([], 8, 4)
        assert result.reduced_width == 0

    def test_wider_resolution_never_narrower(self):
        """Coarser virtual fields can only keep width equal or larger."""
        schema = uniform_schema(2, 8)
        rules = [
            make_rule([(i * 16, i * 16 + 15), (0, 255)]) for i in range(8)
        ]
        k = Classifier(schema, rules)
        words = words_from_classifier(k)
        widths = []
        for w in (1, 2, 4, 8, 16):
            result = virtual_field_fsm(words, 16, w)
            assert not result.dropped_rules
            widths.append(result.reduced_width)
        assert widths == sorted(widths)

    def test_uneven_tail_field(self):
        # Width 10 with 4-bit virtual fields -> fields of 4, 4, 2 bits.
        words = _words("1111000011", "0000111100")
        result = virtual_field_fsm(words, 10, 4)
        assert result.total_fields == 3
        assert not result.dropped_rules
