"""Tests for the managed (ordered, move-counted) TCAM."""

import random

import pytest

from repro.tcam.entry import entry_from_pattern
from repro.tcam.updates import ManagedTcam


def _random_pattern(rng, width):
    return "".join(rng.choice("01*") for _ in range(width))


class ReferenceModel:
    """Priority-sorted list — the obviously correct semantics."""

    def __init__(self):
        self.entries = []  # (priority, entry)

    def insert(self, entry, priority):
        self.entries.append((priority, entry))
        self.entries.sort(key=lambda item: item[0])

    def delete(self, priority):
        self.entries = [e for e in self.entries if e[0] != priority]

    def lookup(self, key):
        for priority, entry in self.entries:
            if entry.matches(key):
                return priority
        return None


class TestBasics:
    def test_insert_and_lookup(self):
        tcam = ManagedTcam(width=4, capacity=8)
        tcam.insert(entry_from_pattern("1***"), priority=5)
        tcam.insert(entry_from_pattern("10**"), priority=2)
        assert tcam.lookup(0b1000) == 2  # higher priority wins
        assert tcam.lookup(0b1100) == 5
        assert tcam.lookup(0b0000) is None
        assert tcam.check_invariant()

    def test_non_overlapping_need_no_moves(self):
        tcam = ManagedTcam(width=4, capacity=8)
        tcam.insert(entry_from_pattern("00**"), priority=3)
        tcam.insert(entry_from_pattern("01**"), priority=1)
        tcam.insert(entry_from_pattern("10**"), priority=2)
        assert tcam.stats.moves == 0

    def test_delete_frees_slots(self):
        tcam = ManagedTcam(width=4, capacity=4)
        tcam.insert(entry_from_pattern("1***"), priority=1)
        tcam.insert(entry_from_pattern("0***"), priority=2)
        assert tcam.delete(1) == 1
        assert len(tcam) == 1
        assert tcam.lookup(0b1000) is None

    def test_capacity_enforced(self):
        tcam = ManagedTcam(width=2, capacity=2)
        tcam.insert(entry_from_pattern("00"), priority=0)
        tcam.insert(entry_from_pattern("01"), priority=1)
        with pytest.raises(MemoryError):
            tcam.insert(entry_from_pattern("10"), priority=2)

    def test_width_checked(self):
        tcam = ManagedTcam(width=4, capacity=4)
        with pytest.raises(ValueError):
            tcam.insert(entry_from_pattern("1"), priority=0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ManagedTcam(width=0, capacity=4)
        with pytest.raises(ValueError):
            ManagedTcam(width=4, capacity=0)


class TestInvariantUnderChurn:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_inserts_match_reference(self, seed):
        rng = random.Random(seed)
        width = 6
        capacity = 40
        tcam = ManagedTcam(width=width, capacity=capacity)
        model = ReferenceModel()
        priorities = list(range(30))
        rng.shuffle(priorities)
        for priority in priorities:
            entry = entry_from_pattern(_random_pattern(rng, width))
            tcam.insert(entry, priority)
            model.insert(entry, priority)
            assert tcam.check_invariant()
        for _ in range(300):
            key = rng.randrange(1 << width)
            assert tcam.lookup(key) == model.lookup(key)

    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_insert_delete(self, seed):
        rng = random.Random(100 + seed)
        width = 5
        tcam = ManagedTcam(width=width, capacity=30)
        model = ReferenceModel()
        live = []
        next_priority = 0
        for _ in range(80):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                tcam.delete(victim)
                model.delete(victim)
            elif len(live) < 28:
                entry = entry_from_pattern(_random_pattern(rng, width))
                tcam.insert(entry, next_priority)
                model.insert(entry, next_priority)
                live.append(next_priority)
                next_priority += 1
            assert tcam.check_invariant()
        for key in range(1 << width):
            assert tcam.lookup(key) == model.lookup(key)

    def test_reverse_priority_insertion_worst_case(self):
        """Inserting ever-higher priorities of fully overlapping entries
        forces moves, but stays correct (recompaction backstop)."""
        width = 4
        tcam = ManagedTcam(width=width, capacity=16)
        model = ReferenceModel()
        for priority in range(15, -1, -1):
            # All-wildcard entries overlap everything.
            entry = entry_from_pattern("****")
            tcam.insert(entry, priority)
            model.insert(entry, priority)
            assert tcam.check_invariant()
        assert tcam.lookup(0) == 0
        assert tcam.stats.moves > 0


class TestMoveEconomy:
    def test_disjoint_heavy_workload_is_nearly_move_free(self):
        """The partial-order insight: realistic (mostly disjoint) entries
        insert with almost no physical moves even in random priority
        order."""
        rng = random.Random(7)
        width = 12
        tcam = ManagedTcam(width=width, capacity=300)
        priorities = list(range(250))
        rng.shuffle(priorities)
        for priority in priorities:
            # Exact-match entries never overlap each other.
            value = rng.randrange(1 << width)
            pattern = format(value, f"0{width}b")
            tcam.insert(entry_from_pattern(pattern), priority)
        assert tcam.stats.moves_per_insert < 0.05

    def test_stats_counters(self):
        tcam = ManagedTcam(width=4, capacity=8)
        tcam.insert(entry_from_pattern("1***"), priority=1)
        tcam.delete(1)
        assert tcam.stats.inserts == 1
        assert tcam.stats.deletes == 1
