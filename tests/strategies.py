"""Hypothesis strategies for classifiers, rules and headers.

Shared by the property-test modules; kept separate from conftest so the
strategies can be imported explicitly where needed.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import Classifier, Interval, Rule, uniform_schema
from repro.core.actions import DENY, PERMIT, TRANSMIT


@st.composite
def intervals(draw, width: int):
    max_value = (1 << width) - 1
    low = draw(st.integers(0, max_value))
    high = draw(st.integers(low, max_value))
    return Interval(low, high)


@st.composite
def rules(draw, num_fields: int, width: int):
    action = draw(st.sampled_from([PERMIT, DENY, TRANSMIT]))
    return Rule(
        tuple(draw(intervals(width)) for _ in range(num_fields)), action
    )


@st.composite
def classifiers(
    draw,
    max_rules: int = 20,
    num_fields: int = 3,
    width: int = 5,
):
    """Random classifiers with arbitrary overlap structure."""
    body = draw(st.lists(rules(num_fields, width), max_size=max_rules))
    return Classifier(uniform_schema(num_fields, width), body)


@st.composite
def headers_for(draw, classifier: Classifier):
    """A header, biased toward hitting some body rule."""
    body = classifier.body
    if body and draw(st.booleans()):
        rule = draw(st.sampled_from(list(body)))
        return tuple(
            draw(st.integers(iv.low, iv.high)) for iv in rule.intervals
        )
    return tuple(
        draw(st.integers(0, spec.max_value)) for spec in classifier.schema
    )


@st.composite
def corner_headers_for(draw, classifier: Classifier):
    """An adversarial header sitting on rule-bound corner points.

    Every field value is drawn from the endpoints of some body rule's
    interval for that field, plus/minus one (clamped to the field
    domain) — exactly where off-by-one bugs in interval containment,
    projection or TCAM expansion live.  Falls back to uniform values
    when the classifier has no body rules.
    """
    body = classifier.body
    header = []
    for position, spec in enumerate(classifier.schema):
        candidates = set()
        for rule in body:
            iv = rule.intervals[position]
            for bound in (iv.low, iv.high):
                for value in (bound - 1, bound, bound + 1):
                    if 0 <= value <= spec.max_value:
                        candidates.add(value)
        if not candidates:
            header.append(draw(st.integers(0, spec.max_value)))
        else:
            header.append(draw(st.sampled_from(sorted(candidates))))
    return tuple(header)
