"""Tests for the forwarding-table workload (Section 4.4's one-field case)."""

import random

import pytest

from repro.analysis.mrc import edf_single_field, greedy_independent_set
from repro.analysis.order_independence import is_order_independent
from repro.workloads.forwarding import (
    generate_forwarding_table,
    ipv4_forwarding_schema,
    ipv6_forwarding_schema,
    longest_prefix_match,
)


class TestSchemas:
    def test_widths(self):
        assert ipv4_forwarding_schema().total_width == 32
        assert ipv6_forwarding_schema().total_width == 128


class TestGeneration:
    def test_deterministic(self):
        a = generate_forwarding_table(100, seed=1)
        b = generate_forwarding_table(100, seed=1)
        assert [r.intervals for r in a.body] == [r.intervals for r in b.body]

    def test_requested_size(self):
        k = generate_forwarding_table(200, seed=2)
        assert len(k.body) == 200

    def test_all_entries_are_prefixes(self):
        from repro.core.intervals import prefix_for_interval

        for version, width in ((4, 32), (6, 128)):
            k = generate_forwarding_table(100, seed=3, version=version)
            for rule in k.body:
                assert prefix_for_interval(rule.intervals[0], width)

    def test_no_duplicate_prefixes(self):
        k = generate_forwarding_table(300, seed=4)
        intervals = [r.intervals[0] for r in k.body]
        assert len(set(intervals)) == len(intervals)

    def test_longest_prefixes_first(self):
        k = generate_forwarding_table(150, seed=5)
        sizes = [r.intervals[0].size for r in k.body]
        assert sizes == sorted(sizes)  # smaller interval = longer prefix

    def test_invalid_version(self):
        with pytest.raises(ValueError):
            generate_forwarding_table(10, seed=0, version=5)

    def test_aggregation_produces_nesting(self):
        k = generate_forwarding_table(300, seed=6, aggregation=0.5)
        body = k.body
        nested = 0
        for i in range(len(body)):
            for j in range(len(body)):
                if i != j and body[j].intervals[0].covers(
                    body[i].intervals[0]
                ):
                    nested += 1
                    break
        assert nested > 10


class TestLpmSemantics:
    def test_first_match_equals_lpm(self):
        k = generate_forwarding_table(200, seed=7, aggregation=0.5)
        rng = random.Random(8)
        for header in k.sample_headers(300, rng):
            winner = k.match(header)
            reference = longest_prefix_match(k, header[0])
            if reference is None:
                assert winner.rule is k.catch_all
            else:
                assert winner.rule == reference

    def test_lpm_miss(self):
        k = generate_forwarding_table(5, seed=9, aggregation=0.0)
        # An address outside every prefix (overwhelmingly likely): probe a
        # few and require at least consistency.
        rng = random.Random(10)
        for _ in range(50):
            address = rng.getrandbits(32)
            reference = longest_prefix_match(k, address)
            winner = k.match((address,))
            if reference is None:
                assert winner.rule is k.catch_all


class TestSection44Claims:
    def test_edf_is_the_exact_one_field_mrc(self):
        k = generate_forwarding_table(120, seed=11, aggregation=0.4)
        edf = edf_single_field(k, 0)
        greedy = greedy_independent_set(k)
        # EDF is optimal; priority-greedy cannot beat it.
        assert greedy.size <= edf.size
        # And the EDF subset really is order-independent.
        sub = k.subset(edf.rule_indices)
        assert is_order_independent(sub)

    def test_ipv6_tables_at_least_as_independent(self):
        """The paper's conjecture: wider keys should leave a larger (or
        equal) order-independent fraction at the same table size."""
        v4 = generate_forwarding_table(400, seed=12, version=4)
        v6 = generate_forwarding_table(400, seed=12, version=6)
        frac4 = edf_single_field(v4, 0).size / len(v4.body)
        frac6 = edf_single_field(v6, 0).size / len(v6.body)
        assert frac6 >= frac4 - 0.05  # allow sampling noise
