"""Tests for the hybrid SaxPacEngine — the headline deliverable."""

import random

import pytest

from repro.core import Classifier, make_rule, uniform_schema
from repro.saxpac.config import EngineConfig
from repro.saxpac.engine import SaxPacEngine
from repro.tcam.encoding import SrgeRangeEncoder
from conftest import random_classifier


class TestSemanticEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_default_config_matches_linear_scan(self, seed):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=35)
        engine = SaxPacEngine(k)
        for header in k.sample_headers(200, rng):
            assert engine.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(4))
    def test_srge_encoder(self, seed):
        rng = random.Random(100 + seed)
        k = random_classifier(rng, num_rules=25)
        engine = SaxPacEngine(k, encoder=SrgeRangeEncoder())
        for header in k.sample_headers(150, rng):
            assert engine.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(4))
    def test_beta_capped(self, seed):
        rng = random.Random(200 + seed)
        k = random_classifier(rng, num_rules=30)
        engine = SaxPacEngine(k, EngineConfig(max_groups=2))
        assert len(engine.grouping.groups) <= 2
        for header in k.sample_headers(150, rng):
            assert engine.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(4))
    def test_min_group_size_folds_to_tcam(self, seed):
        rng = random.Random(300 + seed)
        k = random_classifier(rng, num_rules=30)
        engine = SaxPacEngine(k, EngineConfig(min_group_size=5))
        for group in engine.grouping.groups:
            assert group.size >= 5
        for header in k.sample_headers(150, rng):
            assert engine.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(6))
    def test_enforce_cache_still_equivalent(self, seed):
        rng = random.Random(400 + seed)
        k = random_classifier(rng, num_rules=30)
        engine = SaxPacEngine(k, EngineConfig(enforce_cache=True))
        for header in k.sample_headers(200, rng):
            assert engine.match(header).index == k.match(header).index

    @pytest.mark.parametrize("seed", range(4))
    def test_cascading_structure_equivalent(self, seed):
        rng = random.Random(600 + seed)
        k = random_classifier(rng, num_rules=30)
        plain = SaxPacEngine(k, EngineConfig(use_cascading=False))
        cascaded = SaxPacEngine(k, EngineConfig(use_cascading=True))
        for header in k.sample_headers(200, rng):
            expected = k.match(header).index
            assert plain.match(header).index == expected
            assert cascaded.match(header).index == expected

    @pytest.mark.parametrize("l", [1, 2, 3])
    def test_group_field_budget(self, l):
        rng = random.Random(500 + l)
        k = random_classifier(rng, num_rules=25)
        engine = SaxPacEngine(k, EngineConfig(max_group_fields=l))
        for group in engine.grouping.groups:
            assert len(group.fields) <= l
        for header in k.sample_headers(100, rng):
            assert engine.match(header).index == k.match(header).index

    def test_order_independent_classifier_all_software(
        self, example2_classifier
    ):
        engine = SaxPacEngine(example2_classifier)
        report = engine.report()
        assert report.software_rules == 3
        assert report.tcam_rules == 0

    def test_fully_dependent_goes_to_tcam(self):
        schema = uniform_schema(1, 6)
        # Nested intervals: every pair intersects.
        k = Classifier(
            schema,
            [make_rule([(0, 40)]), make_rule([(0, 30)]), make_rule([(0, 20)])],
        )
        engine = SaxPacEngine(k)
        report = engine.report()
        # Greedy I keeps the first rule; the nested rest goes to D.
        assert report.tcam_rules == 2
        rng = random.Random(1)
        for header in k.sample_headers(50, rng):
            assert engine.match(header).index == k.match(header).index


class TestCacheSkip:
    def test_d_lookup_skipped_on_software_hit(self):
        schema = uniform_schema(1, 6)
        k = Classifier(
            schema,
            [make_rule([(0, 10)]), make_rule([(20, 30)]), make_rule([(5, 25)])],
        )
        engine = SaxPacEngine(k, EngineConfig(enforce_cache=True))
        before = engine.d_lookups_skipped
        hits = 0
        rng = random.Random(2)
        for header in k.sample_headers(100, rng):
            result = engine.match(header)
            assert result.index == k.match(header).index
            if engine.software.lookup(header) is not None:
                hits += 1
        assert engine.d_lookups_skipped - before > 0


class TestReport:
    def test_report_arithmetic(self, example3_classifier):
        engine = SaxPacEngine(example3_classifier)
        report = engine.report()
        assert report.total_rules == 5
        assert report.software_rules + report.tcam_rules == 5
        assert 0.0 <= report.software_fraction <= 1.0
        assert report.tcam_entries <= report.tcam_entries_full
        assert 0.0 <= report.tcam_saving <= 1.0

    def test_group_fields_reported(self, example3_classifier):
        engine = SaxPacEngine(example3_classifier)
        report = engine.report()
        assert len(report.group_fields) == report.num_groups

    def test_saving_grows_with_software_fraction(self):
        rng = random.Random(3)
        k = random_classifier(rng, num_rules=40)
        default = SaxPacEngine(k).report()
        # Forcing everything to TCAM (tiny group budget, huge min size).
        constrained = SaxPacEngine(
            k, EngineConfig(max_groups=1, min_group_size=10**6)
        ).report()
        assert default.tcam_entries <= constrained.tcam_entries


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(max_group_fields=0)
        with pytest.raises(ValueError):
            EngineConfig(max_groups=0)
        with pytest.raises(ValueError):
            EngineConfig(min_group_size=0)
        with pytest.raises(ValueError):
            EngineConfig(fp_budget=0)
