"""Property tests: every runtime data path is the same function.

Single-packet ``match``, vectorized ``match_batch``, the sharded pool and
the linear fallback must return identical :class:`MatchResult`s for any
classifier and any traffic — including while rules are hot-swapped
mid-stream (each half of the trace must agree with the linear reference
for the rule set that was live when it was classified).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.runtime.batch import linear_match_batch, match_batch
from repro.runtime.shard import ShardedRuntime
from repro.runtime.swap import HotSwapRuntime
from repro.saxpac.engine import EngineConfig, SaxPacEngine
from strategies import classifiers, headers_for, rules

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CONFIGS = [
    EngineConfig(),
    EngineConfig(enforce_cache=True),
    EngineConfig(max_groups=2, min_group_size=2),
]


class TestDataPathEquivalence:
    @given(st.data())
    @_SETTINGS
    def test_single_batched_sharded_agree(self, data):
        classifier = data.draw(classifiers())
        headers = [
            data.draw(headers_for(classifier)) for _ in range(12)
        ]
        config = data.draw(st.sampled_from(_CONFIGS))
        engine = SaxPacEngine(classifier, config)
        want = [classifier.match(h) for h in headers]

        single = [engine.match(h) for h in headers]
        batched = engine.match_batch(headers)
        linear = linear_match_batch(classifier, headers)
        with ShardedRuntime(engine=engine, num_shards=3) as sharded:
            shard_results = sharded.match_batch(headers)

        for got in (single, batched, linear, shard_results):
            assert [r.index for r in got] == [r.index for r in want]
            assert [r.rule for r in got] == [r.rule for r in want]

    @given(st.data())
    @_SETTINGS
    def test_dispatch_helper_agrees(self, data):
        classifier = data.draw(classifiers())
        headers = [data.draw(headers_for(classifier)) for _ in range(8)]
        engine = SaxPacEngine(classifier)
        got = match_batch(engine, headers)
        want = classifier.match_batch(headers)
        assert [r.index for r in got] == [r.index for r in want]


class TestHotSwapEquivalence:
    @given(st.data())
    @_SETTINGS
    def test_mid_stream_swap_stays_correct(self, data):
        classifier = data.draw(classifiers())
        first = [data.draw(headers_for(classifier)) for _ in range(6)]
        second = [data.draw(headers_for(classifier)) for _ in range(6)]
        new_rule = data.draw(
            rules(classifier.num_fields, classifier.schema[0].width)
        )

        runtime = HotSwapRuntime(classifier)
        snap_before = runtime.snapshot_classifier()
        got_first = runtime.match_batch(first)
        runtime.insert(new_rule)  # swaps before the second half
        snap_after = runtime.snapshot_classifier()
        got_second = runtime.match_batch(second)

        assert [r.index for r in got_first] == [
            snap_before.match(h).index for h in first
        ]
        assert [r.index for r in got_second] == [
            snap_after.match(h).index for h in second
        ]
        # The inserted rule is part of the served rule set now.
        assert len(runtime) == len(classifier.body) + 1

    @given(st.data())
    @_SETTINGS
    def test_degraded_fallback_agrees(self, data):
        classifier = data.draw(classifiers())
        headers = [data.draw(headers_for(classifier)) for _ in range(10)]

        def broken(snapshot):
            raise RuntimeError("rebuild denied")

        runtime = HotSwapRuntime(classifier, builder=broken)
        assert runtime.degraded
        got = runtime.match_batch(headers)
        want = classifier.match_batch(headers)
        assert [r.index for r in got] == [r.index for r in want]
