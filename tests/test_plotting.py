"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.experiments import run_figure1, run_figure6
from repro.bench.plotting import ascii_chart, plot_figure1, plot_figure6
from repro.workloads.generator import benchmark_suite


class TestAsciiChart:
    def test_markers_present(self):
        chart = ascii_chart(
            {"a": [(0, 1.0), (1, 2.0)], "b": [(0, 3.0), (1, 1.0)]},
            width=30,
            height=8,
        )
        assert "o" in chart and "x" in chart
        assert "legend: o a   x b" in chart

    def test_log_scale_handles_wide_range(self):
        chart = ascii_chart(
            {"s": [(0, 1.0), (2, 1e6)]}, log_y=True, title="t"
        )
        assert chart.startswith("t")
        assert "o" in chart

    def test_empty_series(self):
        assert ascii_chart({}, title="nothing") == "nothing"

    def test_single_point(self):
        chart = ascii_chart({"p": [(5, 3.0)]}, width=20, height=5)
        assert "o" in chart

    def test_x_ticks_rendered(self):
        chart = ascii_chart({"a": [(0, 1.0), (4, 2.0)]}, width=30, height=6)
        tick_line = chart.splitlines()[-2]  # axis, ticks, legend
        assert "0" in tick_line and "4" in tick_line

    def test_zero_values_with_log(self):
        # log scale must survive zero values via flooring.
        chart = ascii_chart({"z": [(0, 0.0), (1, 10.0)]}, log_y=True)
        assert "o" in chart


class TestFigurePlots:
    @pytest.fixture(scope="class")
    def tiny_suite(self):
        full = benchmark_suite(classbench_rules=80, seed=9)
        return {"acl1": full["acl1"], "cisco3": full["cisco3"]}

    def test_plot_figure1(self, tiny_suite):
        points = run_figure1(tiny_suite, field_counts=(0, 2))
        text = plot_figure1(points)
        assert "Figure 1 (classbench)" in text
        assert "Figure 1 (cisco)" in text
        assert "regular binary" in text

    def test_plot_figure6(self, tiny_suite):
        points = run_figure6(tiny_suite, field_widths=(1, 8), rule_cap=50)
        text = plot_figure6(points)
        assert "Figure 6 (classbench)" in text
        assert "FSM" in text
