"""Tests for repro.core.classifier."""


import pytest

from repro.core import (
    Classifier,
    DENY,
    FieldSpec,
    Interval,
    PERMIT,
    TRANSMIT,
    make_rule,
    uniform_schema,
)
from conftest import random_classifier


class TestConstruction:
    def test_catch_all_appended(self):
        schema = uniform_schema(2, 4)
        k = Classifier(schema, [make_rule([(1, 2), (3, 4)])])
        assert len(k) == 2
        assert k.catch_all.is_catch_all(schema)

    def test_existing_catch_all_not_duplicated(self):
        schema = uniform_schema(2, 4)
        rules = [make_rule([(1, 2), (3, 4)]), make_rule([(0, 15), (0, 15)])]
        k = Classifier(schema, rules)
        assert len(k) == 2

    def test_field_arity_checked(self):
        schema = uniform_schema(2, 4)
        with pytest.raises(ValueError):
            Classifier(schema, [make_rule([(1, 2)])])

    def test_field_width_checked(self):
        schema = uniform_schema(2, 4)
        with pytest.raises(ValueError):
            Classifier(schema, [make_rule([(1, 2), (3, 16)])])

    def test_body_excludes_catch_all(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(1, 2)])])
        assert len(k.body) == 1


class TestFirstMatchSemantics:
    def test_priority_order(self):
        schema = uniform_schema(1, 4)
        k = Classifier(
            schema,
            [make_rule([(0, 7)], PERMIT), make_rule([(4, 15)], DENY)],
        )
        assert k.match((5,)).index == 0  # overlap resolved by priority
        assert k.match((9,)).index == 1
        assert k.match((5,)).action is PERMIT

    def test_catch_all_fallback(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(0, 3)], DENY)])
        result = k.match((9,))
        assert result.rule is k.catch_all
        assert result.action == TRANSMIT

    def test_classify_returns_action(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(0, 3)], DENY)])
        assert k.classify((1,)) is DENY


class TestSurgery:
    def test_restrict_keeps_semantics_shape(self, example2_classifier):
        reduced = example2_classifier.restrict([0])
        assert reduced.num_fields == 1
        assert len(reduced) == len(example2_classifier)

    def test_drop_fields(self, example2_classifier):
        reduced = example2_classifier.drop_fields([1, 2])
        assert reduced.num_fields == 1
        assert reduced.rules[0].intervals == (Interval(1, 3),)

    def test_extend_adds_wildcard_to_catch_all(self, example1_classifier):
        extra = [FieldSpec("new", 5)]
        intervals = [
            [Interval(1, 28)],
            [Interval(4, 27)],
            [Interval(3, 18)],
        ]
        extended = example1_classifier.extend(extra, intervals)
        assert extended.num_fields == 3
        assert extended.catch_all.intervals[2] == Interval(0, 31)

    def test_subset_preserves_order(self, example3_classifier):
        sub = example3_classifier.subset([0, 2, 3])
        assert [r.name for r in sub.body] == ["R1", "R3", "R4"]

    def test_without(self, example3_classifier):
        rest = example3_classifier.without([1])
        assert [r.name for r in rest.body] == ["R1", "R3", "R4", "R5"]


class TestVectorizedViews:
    def test_bounds_arrays_shape_and_values(self, example1_classifier):
        lows, highs = example1_classifier.bounds_arrays()
        assert lows.shape == (3, 2)
        assert lows[0, 0] == 1 and highs[0, 0] == 3
        assert lows[2, 1] == 5 and highs[2, 1] == 21

    def test_bounds_arrays_cached(self, example1_classifier):
        a = example1_classifier.bounds_arrays()
        b = example1_classifier.bounds_arrays()
        assert a[0] is b[0]

    def test_bounds_readonly(self, example1_classifier):
        lows, _highs = example1_classifier.bounds_arrays()
        with pytest.raises(ValueError):
            lows[0, 0] = 99


class TestHeaderSampling:
    def test_sample_headers_in_range(self, rng, example1_classifier):
        for header in example1_classifier.sample_headers(50, rng):
            assert all(
                0 <= v <= spec.max_value
                for v, spec in zip(header, example1_classifier.schema)
            )

    def test_hit_bias_hits_rules(self, rng, example1_classifier):
        headers = example1_classifier.sample_headers(200, rng, hit_bias=1.0)
        hits = sum(
            1
            for h in headers
            if example1_classifier.match(h).rule is not example1_classifier.catch_all
        )
        assert hits == 200

    def test_all_headers_tiny(self):
        schema = uniform_schema(2, 2)
        k = Classifier(schema, [make_rule([(0, 1), (0, 1)])])
        assert sum(1 for _ in k.all_headers()) == 16


class TestEquivalenceHelper:
    def test_equivalent_on_self(self, rng):
        k = random_classifier(rng)
        headers = k.sample_headers(100, rng)
        assert k.equivalent_on(lambda h: k.match(h), headers)

    def test_detects_divergence(self, rng):
        k = random_classifier(rng)
        headers = k.sample_headers(100, rng)
        assert not k.equivalent_on(lambda h: k.catch_all, headers) or all(
            k.match(h).rule is k.catch_all for h in headers
        )
