"""Sanity checks on the public API surface."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.analysis",
    "repro.tcam",
    "repro.boolean",
    "repro.lookup",
    "repro.saxpac",
    "repro.workloads",
    "repro.bench",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} needs a docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_headline_workflow_importable_from_root(self):
        # The five-line quickstart must not need subpackage imports.
        from repro import (
            Classifier,
            SaxPacEngine,
            classbench_schema,
            generate_classifier,
            make_rule,
        )

        k = generate_classifier("acl", 10, seed=0)
        engine = SaxPacEngine(k)
        assert engine.report().total_rules == 10
        assert classbench_schema().total_width == 120
        assert Classifier and make_rule  # imported, usable


class TestExperimentInternals:
    def test_decompose_invariants(self):
        from repro.bench.experiments import _decompose
        from repro.analysis.order_independence import is_order_independent
        from repro.workloads.generator import generate_classifier

        k = generate_classifier("ipc", 150, seed=77)
        decomposition = _decompose(k)
        assert (
            len(decomposition.independent) + len(decomposition.dependent)
            == len(k.body)
        )
        sub = k.subset(decomposition.independent)
        assert is_order_independent(sub, decomposition.kept_fields)

    def test_hybrid_space_between_bounds(self):
        from repro.bench.experiments import (
            _BINARY,
            _decompose,
            _hybrid_space,
        )
        from repro.tcam.cost import classifier_entry_count
        from repro.workloads.generator import generate_classifier

        k = generate_classifier("acl", 150, seed=78)
        decomposition = _decompose(k)
        reduced = _hybrid_space(
            k, decomposition, _BINARY, decomposition.kept_fields
        )
        full = (
            classifier_entry_count(k, _BINARY)
            * k.schema.total_width
            / 1024.0
        )
        assert 0 < reduced <= full + 1e-9
