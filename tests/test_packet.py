"""Tests for repro.core.packet."""

import pytest

from repro.core import (
    Packet,
    classbench_schema,
    format_header,
    uniform_schema,
    validate_header,
)


class TestValidation:
    def test_valid_header_passes(self):
        schema = uniform_schema(2, 4)
        assert validate_header([3, 15], schema) == (3, 15)

    def test_arity_checked(self):
        schema = uniform_schema(2, 4)
        with pytest.raises(ValueError):
            validate_header([3], schema)

    def test_range_checked(self):
        schema = uniform_schema(2, 4)
        with pytest.raises(ValueError):
            validate_header([3, 16], schema)
        with pytest.raises(ValueError):
            validate_header([-1, 3], schema)


class TestFormatting:
    def test_ipv4_fields_dotted(self):
        schema = classbench_schema()
        header = (0xC0A80101, 0, 80, 443, 6, 0)
        text = format_header(header, schema)
        assert "src_ip=192.168.1.1" in text
        assert "dst_port=443" in text

    def test_plain_fields_numeric(self):
        schema = uniform_schema(2, 4)
        assert format_header((3, 9), schema) == "f0=3 f1=9"


class TestPacket:
    def test_of_validates(self):
        schema = uniform_schema(2, 4)
        packet = Packet.of([1, 2], schema)
        assert packet[0] == 1 and packet[1] == 2

    def test_of_rejects_bad(self):
        schema = uniform_schema(2, 4)
        with pytest.raises(ValueError):
            Packet.of([1, 99], schema)
