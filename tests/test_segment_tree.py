"""Tests for the segment tree."""

import math
import random

import pytest

from repro.core import Interval
from repro.lookup.segment_tree import SegmentTree


def _random_intervals(rng, count, universe=100, span=20):
    out = []
    for _ in range(count):
        lo = rng.randint(0, universe)
        out.append(Interval(lo, lo + rng.randint(0, span)))
    return out


class TestStab:
    def test_single_interval(self):
        tree = SegmentTree([Interval(3, 7)])
        tree.insert(Interval(3, 7), "x")
        assert list(tree.stab(5)) == [(Interval(3, 7), "x")]
        assert list(tree.stab(2)) == []
        assert list(tree.stab(8)) == []

    def test_boundaries_inclusive(self):
        tree = SegmentTree([Interval(3, 7)])
        tree.insert(Interval(3, 7), "x")
        assert list(tree.stab(3)) and list(tree.stab(7))

    @pytest.mark.parametrize("seed", range(6))
    def test_stab_equals_linear_scan(self, seed):
        rng = random.Random(seed)
        intervals = _random_intervals(rng, 40)
        tree = SegmentTree(intervals)
        for i, iv in enumerate(intervals):
            tree.insert(iv, i)
        for value in range(-1, 130):
            got = sorted(p for _iv, p in tree.stab(value))
            expected = sorted(
                i for i, iv in enumerate(intervals) if iv.contains(value)
            )
            assert got == expected

    def test_insert_unknown_interval_rejected(self):
        tree = SegmentTree([Interval(0, 5)])
        with pytest.raises(ValueError):
            tree.insert(Interval(1, 4), "x")

    def test_empty_tree(self):
        tree = SegmentTree([])
        assert list(tree.stab(0)) == []


class TestComplexity:
    def test_logarithmic_node_usage(self):
        # Each insertion touches at most ~2 log2(leaves) + 2 nodes.
        rng = random.Random(42)
        intervals = _random_intervals(rng, 200, universe=5000, span=500)
        tree = SegmentTree(intervals)
        bound = 2 * math.ceil(math.log2(2 * len(intervals) + 2)) + 2
        for iv in intervals:
            assert tree.insert(iv, 0) <= bound

    def test_num_slots_linearithmic(self):
        rng = random.Random(43)
        intervals = _random_intervals(rng, 300, universe=10000, span=800)
        tree = SegmentTree(intervals)
        for iv in intervals:
            tree.insert(iv, 0)
        n = len(intervals)
        assert tree.num_slots <= n * (2 * math.ceil(math.log2(2 * n)) + 2)


class TestFreeze:
    def test_freeze_transforms_buckets(self):
        rng = random.Random(44)
        intervals = _random_intervals(rng, 30)
        tree = SegmentTree(intervals)
        for i, iv in enumerate(intervals):
            tree.insert(iv, i)
        frozen = tree.freeze(lambda bucket: [p for _iv, p in bucket])
        for value in range(0, 125, 5):
            got = sorted(p for bucket in frozen.path(value) for p in bucket)
            expected = sorted(
                i for i, iv in enumerate(intervals) if iv.contains(value)
            )
            assert got == expected
