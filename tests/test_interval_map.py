"""Tests for the disjoint-interval lookup map."""


import pytest
from hypothesis import given, strategies as st

from repro.core import Interval
from repro.lookup.interval_map import DisjointIntervalMap


class TestBasics:
    def test_lookup_hits_and_misses(self):
        m = DisjointIntervalMap(
            [(Interval(1, 3), "a"), (Interval(7, 9), "b")]
        )
        assert m.lookup(2) == "a"
        assert m.lookup(1) == "a"
        assert m.lookup(3) == "a"
        assert m.lookup(8) == "b"
        assert m.lookup(0) is None
        assert m.lookup(5) is None
        assert m.lookup(10) is None

    def test_empty_map(self):
        m = DisjointIntervalMap([])
        assert len(m) == 0
        assert m.lookup(0) is None

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            DisjointIntervalMap(
                [(Interval(1, 5), "a"), (Interval(5, 9), "b")]
            )

    def test_adjacent_allowed(self):
        m = DisjointIntervalMap(
            [(Interval(1, 4), "a"), (Interval(5, 9), "b")]
        )
        assert m.lookup(4) == "a"
        assert m.lookup(5) == "b"

    def test_unsorted_input_sorted_internally(self):
        m = DisjointIntervalMap(
            [(Interval(7, 9), "b"), (Interval(1, 3), "a")]
        )
        assert m.intervals() == [Interval(1, 3), Interval(7, 9)]
        assert m.payloads() == ["a", "b"]


class TestProperty:
    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(0, 8)),
                    max_size=30))
    def test_lookup_matches_linear_scan(self, raw):
        # Build a disjoint set by greedy filtering, then compare against a
        # linear scan on every probe point.
        intervals = []
        occupied = set()
        for lo, span in raw:
            candidate = Interval(lo, lo + span)
            points = set(range(candidate.low, candidate.high + 1))
            if points & occupied:
                continue
            occupied |= points
            intervals.append(candidate)
        m = DisjointIntervalMap(
            (iv, i) for i, iv in enumerate(intervals)
        )
        for value in range(0, 215, 3):
            expected = None
            for i, iv in enumerate(intervals):
                if iv.contains(value):
                    expected = i
                    break
            assert m.lookup(value) == expected
