"""Tests for the multi-group software engine (Theorem 3 dataflow)."""

import random

import pytest

from repro.analysis.mgr import Group, l_mgr
from repro.lookup.group_engine import (
    LinearGroupIndex,
    MultiGroupEngine,
    build_group_index,
)
from repro.core import Classifier, make_rule, uniform_schema
from conftest import random_classifier


class TestBuildGroupIndex:
    def test_dispatch_by_field_count(self, example3_classifier):
        one = build_group_index(example3_classifier, Group((3, 4), (2,)))
        two = build_group_index(example3_classifier, Group((0, 1, 2), (0, 1)))
        three = build_group_index(
            example3_classifier, Group((0,), (0, 1, 2))
        )
        assert one.fields == (2,)
        assert two.fields == (0, 1)
        assert isinstance(three, LinearGroupIndex)

    def test_probe_only_sees_group_fields(self, example3_classifier):
        index = build_group_index(example3_classifier, Group((3, 4), (2,)))
        # Header matching R4's field 2 but nothing else still probes R4.
        assert index.probe((15, 15, 2)) == 3

    def test_linear_probe(self, example3_classifier):
        index = LinearGroupIndex(example3_classifier, Group((0, 1), (0, 1, 2)))
        assert index.probe((6, 5, 4)) == 0
        assert index.probe((2, 5, 4)) == 1
        assert index.probe((15, 15, 15)) is None


class TestEngineSemantics:
    def test_example3_full_lookup(self, example3_classifier):
        grouping = l_mgr(example3_classifier, l=2)
        engine = MultiGroupEngine(example3_classifier, grouping.groups)
        # Figure 4's walkthrough: packet (2, 4, 5) matches R2 and R5;
        # R2 wins by priority.
        assert engine.lookup((2, 4, 5)) == 1

    def test_false_positive_filtered(self, example3_classifier):
        grouping = l_mgr(example3_classifier, l=2)
        engine = MultiGroupEngine(example3_classifier, grouping.groups)
        # Header inside R3 on fields {0,1} but outside on field 2: the
        # candidate must fail the false-positive check.
        header = (2, 2, 15)
        assert engine.lookup(header) is None
        assert engine.stats.false_positives >= 1

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("l", [1, 2])
    def test_equivalent_to_linear_scan(self, seed, l):
        rng = random.Random(seed)
        k = random_classifier(rng, num_rules=30)
        grouping = l_mgr(k, l=l)
        engine = MultiGroupEngine(k, grouping.groups)
        for header in k.sample_headers(200, rng):
            expected = k.match(header)
            got = engine.match(header)
            assert got.index == expected.index

    def test_match_falls_back_to_catch_all(self, example3_classifier):
        grouping = l_mgr(example3_classifier, l=2)
        engine = MultiGroupEngine(example3_classifier, grouping.groups)
        result = engine.match((15, 15, 15))
        assert result.rule is example3_classifier.catch_all

    def test_stats_counters(self, example3_classifier):
        grouping = l_mgr(example3_classifier, l=2)
        engine = MultiGroupEngine(example3_classifier, grouping.groups)
        engine.lookup((2, 4, 5))
        assert engine.stats.lookups == 1
        assert engine.stats.probes == len(engine.groups)

    def test_num_rules(self, example3_classifier):
        grouping = l_mgr(example3_classifier, l=2)
        engine = MultiGroupEngine(example3_classifier, grouping.groups)
        assert engine.num_rules == 5


class TestShadow:
    def test_shadow_rule_found_via_host(self):
        schema = uniform_schema(2, 5)
        k = Classifier(
            schema,
            [
                make_rule([(0, 7), (0, 31)], name="host"),
                make_rule([(2, 5), (3, 3)], name="shadowed"),
            ],
        )
        # Only the host is in the group; the shadowed rule rides along.
        engine = MultiGroupEngine(
            k, [Group((0,), (0,))], shadow={0: (1,)}
        )
        # Header matching both: min priority (the host) wins.
        assert engine.lookup((3, 3)) == 0
        # Header matching only the shadowed region in field 1? The host
        # covers field 0 fully, so the probe still surfaces it.
        assert engine.lookup((3, 4)) == 0

    def test_shadow_priority_merge(self):
        schema = uniform_schema(2, 5)
        k = Classifier(
            schema,
            [
                make_rule([(2, 5), (3, 3)], name="shadowed"),
                make_rule([(0, 7), (0, 31)], name="host"),
            ],
        )
        engine = MultiGroupEngine(
            k, [Group((1,), (0,))], shadow={1: (0,)}
        )
        # The shadowed rule has higher priority and must win when both hit.
        assert engine.lookup((3, 3)) == 0
        assert engine.lookup((6, 9)) == 1
        assert engine.stats.shadow_checks >= 1

    def test_shadow_load(self):
        schema = uniform_schema(1, 4)
        k = Classifier(schema, [make_rule([(0, 3)]), make_rule([(1, 2)])])
        engine = MultiGroupEngine(
            k, [Group((0,), (0,))], shadow={0: (1,)}
        )
        assert engine.shadow_load == 1
        empty = MultiGroupEngine(k, [Group((0,), (0,))])
        assert empty.shadow_load == 0
