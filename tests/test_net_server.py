"""NetServer over real loopback sockets: correctness, coalescing,
backpressure, shedding, chaos, drain, and telemetry exposition."""

import random
import socket

import numpy as np
import pytest
from conftest import random_classifier
from netutil import settle

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.net import (
    ErrorCode,
    NetClient,
    NetConfig,
    NetError,
    serve_background,
)
from repro.net.protocol import (
    FrameDecoder,
    FrameType,
    decode_error,
    encode_match_request,
)
from repro.obs import Tracer, render_prometheus
from repro.runtime import LoadShedError, RuntimeService, Telemetry
from repro.workloads import generate_trace


@pytest.fixture
def served():
    """A RuntimeService behind a loopback NetServer, plus its handle."""
    classifier = random_classifier(random.Random(7), num_rules=40)
    service = RuntimeService(classifier)
    handle = serve_background(service, NetConfig(coalesce_wait_ms=0.2))
    yield service, handle
    handle.stop()


def expected_indices(service, headers):
    results = service.serving_classifier().match_batch(headers)
    return [r.index for r in results]


def trace_blocks(service, total, size, seed):
    trace = generate_trace(service.serving_classifier(), total, seed)
    return [trace[i : i + size] for i in range(0, total, size)]


class TestRequests:
    def test_single_request_matches_classifier(self, served):
        service, handle = served
        headers = generate_trace(service.serving_classifier(), 200, 11)
        with NetClient(port=handle.port) as client:
            got = client.match_batch(headers)
        assert list(got) == expected_indices(service, headers)

    def test_empty_batch(self, served):
        service, handle = served
        block = np.zeros((0, 3), dtype=np.uint32)
        with NetClient(port=handle.port) as client:
            got = client.match_batch(block)
        assert got.shape == (0,)

    def test_ping(self, served):
        _, handle = served
        with NetClient(port=handle.port) as client:
            assert client.ping() < 5.0

    def test_pipelined_coalesces(self, served):
        """Pipelined small requests merge: lookups < requests."""
        service, handle = served
        blocks = trace_blocks(service, 1200, 8, seed=3)
        with NetClient(port=handle.port) as client:
            answers = client.match_many(blocks, window=32)
        for block, got in zip(blocks, answers):
            assert list(got) == expected_indices(service, block)
        telemetry = service.telemetry
        settle(lambda: telemetry.counter("net.lookup_packets") == 1200)
        assert telemetry.counter("net.requests") == len(blocks)
        assert telemetry.counter("net.lookups") < len(blocks)
        assert telemetry.counter("net.coalesced_requests") > 0
        assert telemetry.counter("net.request_packets") == 1200
        assert telemetry.counter("net.lookup_packets") == 1200

    def test_two_clients_share_batches(self, served):
        service, handle = served
        blocks = trace_blocks(service, 400, 10, seed=5)
        with NetClient(port=handle.port) as a, NetClient(
            port=handle.port
        ) as b:
            for block in blocks:
                assert list(a.match_batch(block)) == expected_indices(
                    service, block
                )
                assert list(b.match_batch(block)) == expected_indices(
                    service, block
                )
        settle(lambda: service.telemetry.counter("net.connections") == 2)
        assert service.telemetry.counter("net.connections") == 2

    def test_tight_inflight_window_still_correct(self):
        """max_inflight=1 throttles the socket but answers everything."""
        classifier = random_classifier(random.Random(9), num_rules=25)
        service = RuntimeService(classifier)
        handle = serve_background(service, NetConfig(max_inflight=1))
        try:
            blocks = trace_blocks(service, 300, 6, seed=8)
            with NetClient(port=handle.port) as client:
                answers = client.match_many(blocks, window=16)
            for block, got in zip(blocks, answers):
                assert list(got) == expected_indices(service, block)
        finally:
            assert handle.stop()

    def test_inflight_gauge_settles_to_zero(self, served):
        service, handle = served
        blocks = trace_blocks(service, 200, 4, seed=2)
        with NetClient(port=handle.port) as client:
            client.match_many(blocks, window=16)
        settle(lambda: handle.server.inflight == 0)
        assert handle.server.inflight == 0
        assert service.gauges()["net.inflight"] == 0.0


class TestErrors:
    def test_wrong_field_count_answers_then_keeps_connection(self, served):
        service, handle = served
        with NetClient(port=handle.port) as client:
            bad = np.zeros((2, 9), dtype=np.uint32)  # schema has 3
            with pytest.raises(NetError) as excinfo:
                client.match_batch(bad)
            assert excinfo.value.code == ErrorCode.PROTOCOL
            # Same connection still serves good requests.
            headers = generate_trace(service.serving_classifier(), 50, 4)
            assert list(client.match_batch(headers)) == expected_indices(
                service, headers
            )
        settle(
            lambda: service.telemetry.counter("net.protocol_errors") == 1
            and handle.server.inflight == 0
        )
        assert service.telemetry.counter("net.protocol_errors") == 1
        assert handle.server.inflight == 0

    def test_garbage_bytes_answer_error_then_close(self, served):
        service, handle = served
        with socket.create_connection(
            ("127.0.0.1", handle.port), timeout=5.0
        ) as sock:
            # Long enough to cover a full frame header (20 bytes).
            sock.sendall(b"GET /classify HTTP/1.1\r\nHost: x\r\n\r\n")
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(1 << 16)
                if not data:
                    break
                frames.extend(decoder.feed(data))
            assert frames, "server closed without an error frame"
            assert frames[0].type == FrameType.ERROR
            code, _ = decode_error(frames[0])
            assert code == ErrorCode.PROTOCOL
            assert sock.recv(1 << 16) == b""  # then it hangs up
        settle(
            lambda: service.telemetry.counter("net.protocol_errors") == 1
        )
        assert service.telemetry.counter("net.protocol_errors") == 1

    def test_transient_shed_is_retried(self, served):
        service, handle = served
        real = service.match_indices
        state = {"left": 2}

        def flaky(block):
            if state["left"] > 0:
                state["left"] -= 1
                raise LoadShedError("synthetic overload")
            return real(block)

        service.match_indices = flaky
        try:
            headers = generate_trace(service.serving_classifier(), 60, 6)
            with NetClient(port=handle.port) as client:
                got = client.match_batch(headers)
            assert list(got) == expected_indices(service, headers)
            assert client.stats["shed_retries"] >= 1
        finally:
            service.match_indices = real
        settle(lambda: service.telemetry.counter("net.shed") >= 1)
        assert service.telemetry.counter("net.shed") >= 1

    def test_permanent_shed_exhausts_budget(self, served):
        service, handle = served

        def always(block):
            raise LoadShedError("synthetic overload")

        real = service.match_indices
        service.match_indices = always
        try:
            client = NetClient(
                port=handle.port, shed_backoff_s=0.0, max_shed_retries=3
            )
            with client:
                with pytest.raises(NetError) as excinfo:
                    client.match_batch([[1, 2, 3]])
            assert excinfo.value.code == ErrorCode.SHED
            assert client.stats["shed_retries"] == 3
        finally:
            service.match_indices = real

    def test_lookup_crash_answers_internal(self, served):
        service, handle = served

        def boom(block):
            raise RuntimeError("engine exploded")

        real = service.match_indices
        service.match_indices = boom
        try:
            with NetClient(port=handle.port) as client:
                with pytest.raises(NetError) as excinfo:
                    client.match_batch([[1, 2, 3]])
            assert excinfo.value.code == ErrorCode.INTERNAL
        finally:
            service.match_indices = real
        settle(
            lambda: service.telemetry.counter("net.lookup_errors") == 1
            and handle.server.inflight == 0
        )
        assert service.telemetry.counter("net.lookup_errors") == 1
        assert handle.server.inflight == 0


class TestChaos:
    def _serve_with_faults(self, *specs):
        classifier = random_classifier(random.Random(13), num_rules=30)
        injector = FaultInjector(FaultPlan(specs=specs, seed=3))
        service = RuntimeService(classifier, injector=injector)
        handle = serve_background(service, NetConfig())
        return service, handle

    def test_injected_disconnect_is_survived(self):
        service, handle = self._serve_with_faults(
            FaultSpec(site="net.conn", kind="crash", times=2, after=5)
        )
        try:
            blocks = trace_blocks(service, 400, 8, seed=4)
            client = NetClient(port=handle.port, retries=4)
            with client:
                answers = client.match_many(blocks, window=8)
            for block, got in zip(blocks, answers):
                assert list(got) == expected_indices(service, block)
            assert client.stats["reconnects"] >= 1
            assert client.stats["retried_requests"] >= 1
        finally:
            handle.stop()
        assert service.telemetry.counter("net.chaos_disconnects") == 2

    def test_injected_corrupt_frame_is_survived(self):
        service, handle = self._serve_with_faults(
            FaultSpec(site="net.conn", kind="corrupt", times=1, after=3)
        )
        try:
            blocks = trace_blocks(service, 200, 5, seed=6)
            client = NetClient(port=handle.port, retries=4)
            with client:
                answers = client.match_many(blocks, window=4)
            for block, got in zip(blocks, answers):
                assert list(got) == expected_indices(service, block)
            assert client.stats["reconnects"] >= 1
        finally:
            handle.stop()
        assert service.telemetry.counter("net.corrupted_frames") == 1


class TestDrain:
    def test_clean_drain(self, served):
        service, handle = served
        headers = generate_trace(service.serving_classifier(), 100, 2)
        with NetClient(port=handle.port) as client:
            client.match_batch(headers)
        assert handle.stop() is True
        assert service.telemetry.counter("net.drains") == 1
        assert service.telemetry.counter("net.dirty_drains") == 0

    def test_draining_rejects_new_requests(self, served):
        service, handle = served
        server = handle.server
        server._draining = True
        with NetClient(port=handle.port) as client:
            with pytest.raises(NetError) as excinfo:
                client.match_batch([[1, 2, 3]])
        assert excinfo.value.code == ErrorCode.DRAINING
        settle(
            lambda: service.telemetry.counter("net.drain_rejects") == 1
        )
        assert service.telemetry.counter("net.drain_rejects") == 1
        server._draining = False

    def test_stop_is_idempotent(self, served):
        _, handle = served
        assert handle.stop() is True
        assert handle.stop() is True


class TestExposition:
    def test_net_metrics_have_curated_help(self, served):
        service, handle = served
        headers = generate_trace(service.serving_classifier(), 80, 9)
        with NetClient(port=handle.port) as client:
            client.match_batch(headers)
        # The latency observation lands after the response frame is
        # written; wait for it before rendering the snapshot.
        settle(
            lambda: "net.request"
            in service.telemetry.snapshot().latencies
        )
        text = render_prometheus(
            service.telemetry.snapshot(), extra_gauges=service.gauges()
        )
        assert "# HELP saxpac_net_requests_total" in text
        assert "coalesc" in text  # curated HELP, not the fallback
        assert "saxpac_net_request_latency_seconds_bucket" in text
        assert "saxpac_net_inflight" in text

    def test_batch_span_is_traced(self):
        classifier = random_classifier(random.Random(17), num_rules=20)
        tracer = Tracer()
        service = RuntimeService(
            classifier, recorder=Telemetry(tracer=tracer)
        )
        handle = serve_background(service, NetConfig())
        try:
            headers = generate_trace(service.serving_classifier(), 40, 10)
            with NetClient(port=handle.port) as client:
                client.match_batch(headers)
        finally:
            handle.stop()
        names = {span.name for span in tracer.spans()}
        assert "net.batch" in names
        assert "net.request" in names


class TestRawWire:
    def test_oversized_frame_is_rejected_not_buffered(self):
        classifier = random_classifier(random.Random(21), num_rules=10)
        service = RuntimeService(classifier)
        handle = serve_background(
            service, NetConfig(max_payload=1024)
        )
        try:
            big = np.zeros((2000, 3), dtype=np.uint32)
            with socket.create_connection(
                ("127.0.0.1", handle.port), timeout=5.0
            ) as sock:
                sock.sendall(encode_match_request(1, big))
                decoder = FrameDecoder()
                frames = []
                while not frames:
                    data = sock.recv(1 << 16)
                    if not data:
                        break
                    frames.extend(decoder.feed(data))
                assert frames and frames[0].type == FrameType.ERROR
        finally:
            handle.stop()
        assert service.telemetry.counter("net.protocol_errors") == 1
