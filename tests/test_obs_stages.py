"""StageWaterfall: ticket recording, the commit_row fast path, ring
reuse, and the per-stage log2 aggregates with exemplar trace ids."""

import pytest

from repro.obs.stages import STAGES, StageWaterfall


def test_capacity_validated():
    with pytest.raises(ValueError):
        StageWaterfall(capacity=0)


class TestTicketFlow:
    def test_open_record_commit_roundtrip(self):
        wf = StageWaterfall(capacity=8)
        ticket = wf.open(request_id=7, trace_id=0xBEEF)
        wf.record(ticket, "decode", 1e-6)
        wf.record(ticket, "lookup", 5e-6)
        wf.record(ticket, "lookup", 4e-6)  # last write wins
        wf.add(ticket, "write", 1e-6)
        wf.add(ticket, "write", 2e-6)  # add accumulates
        wf.commit(ticket)
        record = wf.lookup(7)
        assert record is not None
        assert record.trace_id == 0xBEEF
        assert record.stages == {
            "decode": 1e-6,
            "lookup": 4e-6,
            "write": pytest.approx(3e-6),
        }
        assert record.total_s == pytest.approx(8e-6)
        assert wf.committed_total == 1

    def test_open_row_visible_to_peek_but_not_lookup(self):
        wf = StageWaterfall(capacity=8)
        ticket = wf.open(request_id=9, trace_id=1)
        wf.record(ticket, "queue_wait", 2e-6)
        # The flight recorder peeks in-flight rows...
        assert wf.peek(ticket).stages == {"queue_wait": 2e-6}
        # ...but lookup only serves committed ones.
        assert wf.lookup(9) is None
        assert wf.committed_total == 0

    def test_reopened_row_starts_clean(self):
        wf = StageWaterfall(capacity=1)
        ticket = wf.open(request_id=1)
        wf.record(ticket, "decode", 9e-6)
        wf.commit(ticket)
        ticket = wf.open(request_id=2)  # same row, recycled
        wf.record(ticket, "encode", 1e-6)
        wf.commit(ticket)
        record = wf.lookup(2)
        assert record.stages == {"encode": 1e-6}  # no stale decode
        assert wf.lookup(1) is None  # overwritten

    def test_lookup_returns_most_recent_commit_for_id(self):
        wf = StageWaterfall(capacity=8)
        for seconds in (1e-6, 2e-6):
            ticket = wf.open(request_id=5)
            wf.record(ticket, "lookup", seconds)
            wf.commit(ticket)
        assert wf.lookup(5).stages == {"lookup": 2e-6}


class TestCommitRow:
    def test_single_call_matches_ticket_dance(self):
        """commit_row (the serving fast path) publishes exactly what the
        equivalent open/record/commit sequence would."""
        row = [1e-6, 2e-6, 0.0, 4e-6, 0.0, 6e-6]
        fast = StageWaterfall(capacity=8)
        fast.commit_row(11, 0xCAFE, list(row))
        slow = StageWaterfall(capacity=8)
        ticket = slow.open(11, 0xCAFE)
        for name, seconds in zip(STAGES, row):
            slow.record(ticket, name, seconds)
        slow.commit(ticket)
        assert fast.lookup(11).stages == slow.lookup(11).stages
        assert fast.stage_stats() == slow.stage_stats()

    def test_rejects_wrong_arity(self):
        wf = StageWaterfall(capacity=4)
        with pytest.raises(ValueError, match="stages"):
            wf.commit_row(1, 0, [1e-6, 2e-6])

    def test_rows_interleave_with_tickets(self):
        wf = StageWaterfall(capacity=4)
        ticket = wf.open(1)
        wf.commit_row(2, 0, [0.0, 0.0, 0.0, 3e-6, 0.0, 0.0])
        wf.record(ticket, "decode", 1e-6)
        wf.commit(ticket)
        assert wf.lookup(1).stages == {"decode": 1e-6}
        assert wf.lookup(2).stages == {"lookup": 3e-6}


class TestAggregates:
    def test_stage_stats_buckets_and_exemplars(self):
        wf = StageWaterfall(capacity=8)
        # 3us lands in bucket index 2 ((2, 4] microseconds).
        wf.commit_row(1, 0x77, [0.0, 0.0, 0.0, 3e-6, 0.0, 0.0])
        stats = wf.stage_stats()
        assert set(stats) == set(STAGES)
        lookup = stats["lookup"]
        assert lookup["count"] == 1
        assert lookup["sum_s"] == pytest.approx(3e-6)
        assert lookup["buckets"][2] == 1
        assert sum(lookup["buckets"]) == 1
        assert lookup["exemplars"] == {2: 0x77}
        assert wf.bucket_upper_bound(2) == pytest.approx(4e-6)
        # Untouched stages stay empty.
        assert stats["decode"]["count"] == 0
        assert stats["decode"]["exemplars"] == {}

    def test_zero_trace_id_leaves_no_exemplar(self):
        wf = StageWaterfall(capacity=8)
        wf.commit_row(1, 0, [1e-6, 0.0, 0.0, 0.0, 0.0, 0.0])
        assert wf.stage_stats()["decode"]["exemplars"] == {}

    def test_aggregates_survive_ring_wraparound(self):
        """The ring bounds per-request rows, not the histograms: commits
        beyond capacity keep accumulating."""
        wf = StageWaterfall(capacity=4)
        for i in range(10):
            wf.commit_row(i, 0, [1e-6, 0.0, 0.0, 0.0, 0.0, 0.0])
        assert wf.committed_total == 10
        assert wf.stage_stats()["decode"]["count"] == 10
        assert len(wf.recent(limit=50)) == 4

    def test_recent_newest_first(self):
        wf = StageWaterfall(capacity=8)
        for i in range(3):
            wf.commit_row(i, 0, [float(i + 1) * 1e-6, 0.0, 0.0, 0.0, 0.0, 0.0])
        recent = wf.recent(limit=2)
        assert [r.request_id for r in recent] == [2, 1]

    def test_as_dict_shape(self):
        wf = StageWaterfall(capacity=4)
        wf.commit_row(3, 0x9, [0.0, 0.0, 0.0, 2e-6, 0.0, 0.0])
        payload = wf.lookup(3).as_dict()
        assert payload["request_id"] == 3
        assert payload["trace_id"] == 0x9
        assert payload["stages_s"] == {"lookup": 2e-6}
        assert payload["total_s"] == pytest.approx(2e-6)
