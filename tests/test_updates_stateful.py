"""Stateful (model-based) testing of the dynamic classifier.

Hypothesis drives arbitrary interleavings of insert / remove / modify /
recompute against DynamicSaxPac while a priority-ordered reference model
tracks the intended semantics; after every step a batch of probe headers
must classify identically.  This is the strongest correctness artifact for
Section 7.2: it explores schedules no hand-written test would.
"""

import random

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core import make_rule, uniform_schema
from repro.core.actions import DENY, PERMIT
from repro.saxpac.updates import DynamicSaxPac

_NUM_FIELDS = 3
_WIDTH = 5
_MAX = (1 << _WIDTH) - 1


def _interval(draw_low, draw_span):
    low = draw_low
    high = min(_MAX, low + draw_span)
    return (low, high)


_rule_strategy = st.builds(
    lambda bounds, deny: make_rule(
        [_interval(lo, span) for lo, span in bounds],
        DENY if deny else PERMIT,
    ),
    st.lists(
        st.tuples(st.integers(0, _MAX), st.integers(0, 10)),
        min_size=_NUM_FIELDS,
        max_size=_NUM_FIELDS,
    ),
    st.booleans(),
)


class DynamicSaxPacMachine(RuleBasedStateMachine):
    @initialize(
        max_groups=st.one_of(st.none(), st.integers(1, 4)),
        budget=st.integers(0, 2),
    )
    def setup(self, max_groups, budget):
        self.schema = uniform_schema(_NUM_FIELDS, _WIDTH)
        self.dyn = DynamicSaxPac(
            self.schema,
            max_group_fields=2,
            max_groups=max_groups,
            fp_budget=budget,
        )
        self.live = []  # rule ids in the dynamic classifier
        self.rng = random.Random(1234)

    @rule(new_rule=_rule_strategy)
    def insert(self, new_rule):
        report = self.dyn.insert(new_rule)
        if report.accepted:
            self.live.append(report.rule_id)

    @precondition(lambda self: self.live)
    @rule(pick=st.integers(0, 10**6))
    def remove(self, pick):
        victim = self.live.pop(pick % len(self.live))
        self.dyn.remove(victim)

    @precondition(lambda self: self.live)
    @rule(pick=st.integers(0, 10**6), new_rule=_rule_strategy)
    def modify(self, pick, new_rule):
        target = self.live[pick % len(self.live)]
        report = self.dyn.modify(target, new_rule)
        if not report.accepted:
            self.live.remove(target)

    @rule()
    def recompute(self):
        self.dyn.recompute()

    @invariant()
    def agrees_with_reference(self):
        reference = self.dyn.to_classifier()
        headers = reference.sample_headers(25, self.rng)
        for header in headers:
            expected = reference.match(header)
            got = self.dyn.match_id(header)
            if got is None:
                assert expected.rule is reference.catch_all
            else:
                assert self.dyn.rule(got) == expected.rule

    @invariant()
    def bookkeeping_consistent(self):
        assert len(self.dyn) == len(self.live)
        assert self.dyn.software_size + self.dyn.d_size == len(self.live)


TestDynamicSaxPacStateful = pytest.mark.slow(DynamicSaxPacMachine.TestCase)
TestDynamicSaxPacStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
