"""Chaos tests: fault injection against the hardened runtime.

Two layers:

* directed tests — one failure mode at a time (worker crash, hung
  worker vs the deadline, swap-build failure and quarantine, corrupted
  engine report, load shedding), each asserting the degradation
  invariant: every answer produced *during* a failure still equals the
  linear reference of the serving snapshot;
* a hypothesis :class:`RuleBasedStateMachine` interleaving batches, hot
  swaps and mid-run fault arming, asserting no batch result is lost or
  duplicated, telemetry counters stay monotonic, and health transitions
  only happen when faults (or recoveries) explain them.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from conftest import random_classifier
from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.runtime.batch import linear_match_batch, verify_against_linear
from repro.runtime.health import HealthMonitor, HealthState
from repro.runtime.service import (
    LoadShedError,
    RuntimeConfig,
    RuntimeService,
)
from repro.runtime.shard import ShardedRuntime, ShardWorkerError
from repro.runtime.telemetry import Telemetry
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.traces import generate_trace


@pytest.fixture
def setup():
    rng = random.Random(33)
    classifier = random_classifier(rng, num_rules=30)
    trace = generate_trace(classifier, 240, seed=9)
    return classifier, trace


def _injector(*specs, seed=0):
    return FaultInjector(FaultPlan(tuple(specs), seed=seed))


def _want(classifier, headers):
    return [r.index for r in linear_match_batch(classifier, headers)]


class TestPoolTeardown:
    """Regression: close() used to terminate() the process pool without
    joining, leaking children; worker errors surfaced as a bare pool
    exception with no traceback."""

    def test_close_joins_process_workers(self, setup):
        classifier, trace = setup
        sharded = ShardedRuntime(
            classifier=classifier, num_shards=2, mode="process"
        )
        sharded.match_indices(trace[:60])
        workers = [
            p for p in multiprocessing.active_children()
        ]
        assert workers, "expected live pool workers before close"
        sharded.close()
        assert not multiprocessing.active_children(), (
            "close() must join() pool workers, not orphan them"
        )

    def test_process_worker_traceback_surfaces(self, setup):
        classifier, trace = setup
        injector = _injector(FaultSpec(site="shard.worker", kind="crash"))
        with ShardedRuntime(
            classifier=classifier, num_shards=2, mode="process",
            injector=injector, max_retries=0, on_error="raise",
        ) as sharded:
            with pytest.raises(ShardWorkerError) as excinfo:
                sharded.match_indices(trace[:60])
        text = str(excinfo.value)
        assert "worker traceback" in text
        assert "InjectedCrash" in text  # the real cause, not a pool error
        assert excinfo.value.worker_traceback

    def test_thread_worker_traceback_surfaces(self, setup):
        classifier, trace = setup
        engine = SaxPacEngine(classifier)
        injector = _injector(FaultSpec(site="shard.worker", kind="error"))
        with ShardedRuntime(
            engine=engine, num_shards=2, injector=injector,
            max_retries=0, on_error="raise",
        ) as sharded:
            with pytest.raises(ShardWorkerError) as excinfo:
                sharded.match_indices(trace[:60])
        assert "InjectedFault" in str(excinfo.value)


class TestShardRetries:
    def test_transient_errors_are_retried(self, setup):
        classifier, trace = setup
        engine = SaxPacEngine(classifier)
        tel = Telemetry()
        injector = _injector(
            FaultSpec(site="shard.worker", kind="error", times=2)
        )
        with ShardedRuntime(
            engine=engine, num_shards=2, injector=injector,
            max_retries=2, backoff_s=0.001, recorder=tel,
        ) as sharded:
            got = sharded.match_indices(trace)
        assert got == _want(classifier, trace)
        assert tel.counter("runtime.retries") >= 1
        assert tel.counter("runtime.worker_errors") == 2

    def test_persistent_errors_fall_back_linearly(self, setup):
        classifier, trace = setup
        engine = SaxPacEngine(classifier)
        tel = Telemetry()
        health = HealthMonitor(tel)
        injector = _injector(FaultSpec(site="shard.worker", kind="crash"))
        with ShardedRuntime(
            engine=engine, num_shards=2, injector=injector,
            max_retries=1, backoff_s=0.001, on_error="fallback",
            recorder=tel, health=health,
        ) as sharded:
            got = sharded.match_indices(trace)
        assert got == _want(classifier, trace)  # zero wrong answers
        assert tel.counter("runtime.chunk_fallbacks") == 2
        assert sharded.last_worker_error is not None
        assert health.state is not HealthState.HEALTHY

    def test_hung_worker_hits_deadline_and_respawns(self, setup):
        classifier, trace = setup
        engine = SaxPacEngine(classifier)
        tel = Telemetry()
        injector = _injector(
            FaultSpec(
                site="shard.worker", kind="hang", times=1, delay_s=0.5
            )
        )
        with ShardedRuntime(
            engine=engine, num_shards=2, injector=injector,
            deadline_ms=60, recorder=tel,
        ) as sharded:
            got = sharded.match_indices(trace)
            assert got == _want(classifier, trace)
            assert tel.counter("runtime.deadline_timeouts") >= 1
            assert tel.counter("runtime.worker_respawns") >= 1
            assert tel.counter("runtime.chunk_fallbacks") >= 1
            # The respawned pool serves normally afterwards.
            assert sharded.match_indices(trace[:40]) == _want(
                classifier, trace[:40]
            )


class TestSwapQuarantine:
    def test_failed_rebuild_quarantines_old_engine(self, setup):
        classifier, trace = setup
        tel = Telemetry()
        injector = _injector(
            FaultSpec(site="swap.build", kind="error", after=1, times=1)
        )
        service = RuntimeService(
            classifier,
            RuntimeConfig(batch_size=64),
            recorder=tel,
            injector=injector,
        )
        with service:
            generation = service.swap.generation
            stale = service.serving_classifier()
            service.insert(random.Random(1).choice(classifier.body))
            # The rebuild failed: old engine serves, generation frozen.
            assert service.swap.quarantined
            assert service.swap.generation == generation
            assert not service.swap.degraded
            results = service.match_batch(trace[:64])
            # Answers are exact for the *quarantined* snapshot.
            assert verify_against_linear(
                service.serving_classifier(), trace[:64], results
            ) == []
            assert service.serving_classifier() is stale
            assert tel.counter("swap.quarantined") == 1
            assert service.health.state is not HealthState.HEALTHY
            # Next good rebuild clears the quarantine.
            service.insert(random.Random(2).choice(classifier.body))
            assert not service.swap.quarantined
            assert service.swap.generation > generation

    def test_corrupted_report_is_rejected(self, setup):
        classifier, _ = setup
        tel = Telemetry()
        injector = _injector(
            FaultSpec(site="engine.report", kind="corrupt", times=1)
        )
        with RuntimeService(
            classifier, recorder=tel, injector=injector
        ) as service:
            assert service.engine_report() is None  # corrupted -> rejected
            assert tel.counter("runtime.report_corruptions") == 1
            report = service.engine_report()  # next one is sane again
            assert report is not None and report.is_sane()


class TestServiceDegradation:
    def test_ladder_descends_serves_linearly_and_recovers(self, setup):
        classifier, trace = setup
        tel = Telemetry()
        injector = _injector(
            FaultSpec(site="service.batch", kind="error", times=2)
        )
        config = RuntimeConfig(
            batch_size=64, fallback_after=2, recover_after=1,
            probe_every=2,
        )
        with RuntimeService(
            classifier, config, recorder=tel, injector=injector
        ) as service:
            batch = trace[:64]
            want = _want(classifier, batch)
            # Two faulted batches: healthy -> degraded -> linear-fallback,
            # both still answered correctly via the linear path.
            for _ in range(2):
                assert [r.index for r in service.match_batch(batch)] == want
            assert service.health.state is HealthState.LINEAR_FALLBACK
            assert tel.counter("runtime.batch_fallbacks") == 2
            assert tel.counter("health.to_linear_fallback") == 1
            # Faults exhausted: linear serving continues, probes prove the
            # fast path, the ladder steps back to healthy.
            for _ in range(6):
                assert [r.index for r in service.match_batch(batch)] == want
            assert service.health.state is HealthState.HEALTHY
            assert tel.counter("runtime.fallback_batches") >= 1
            assert tel.counter("runtime.fallback_probes") >= 1
            healthy, payload = service.health_payload()
            assert healthy and payload["status"] == "ok"

    def test_healthz_reports_ladder_state(self, setup):
        classifier, _ = setup
        with RuntimeService(classifier) as service:
            service.health.record_failure("test")
            healthy, payload = service.health_payload()
            assert not healthy
            assert payload["health"] == "degraded"

    def test_load_shedding_past_watermark(self, setup):
        classifier, trace = setup
        tel = Telemetry()
        config = RuntimeConfig(batch_size=64, shed_watermark=1)
        with RuntimeService(classifier, config, recorder=tel) as service:
            # Simulate a stuck in-flight batch; the next one is shed.
            service._inflight = 1
            with pytest.raises(LoadShedError):
                service.match_batch(trace[:8])
            assert tel.counter("runtime.shed") == 1
            service._inflight = 0
            assert service.match_batch(trace[:8])  # serves again

    def test_gauges_expose_health_and_shed(self, setup):
        classifier, _ = setup
        with RuntimeService(classifier) as service:
            gauges = service.gauges()
            for name in (
                "runtime.health", "runtime.shed", "runtime.retries",
                "runtime.worker_respawns", "runtime.quarantined",
            ):
                assert name in gauges
            assert gauges["runtime.health"] == float(HealthState.HEALTHY)


_MONOTONIC = (
    "runtime.batches", "runtime.packets", "runtime.retries",
    "runtime.worker_errors", "runtime.batch_fallbacks",
    "health.failures", "health.transitions", "swap.rebuild_failures",
    "swap.quarantined",
)

_ARMABLE = (
    ("shard.worker", "error"),
    ("shard.worker", "crash"),
    ("swap.build", "error"),
    ("engine.lookup", "error"),
    ("service.batch", "error"),
)


class ChaosMachine(RuleBasedStateMachine):
    """Interleave serving, hot swaps and fault arming; the service must
    never lose/duplicate results, answer wrongly, or move the health
    ladder without a recorded cause."""

    @initialize()
    def start(self):
        rng = random.Random(77)
        self.classifier = random_classifier(rng, num_rules=20)
        self.rng = random.Random(101)
        self.telemetry = Telemetry()
        self.injector = FaultInjector(FaultPlan(seed=5))
        self.service = RuntimeService(
            self.classifier,
            RuntimeConfig(
                batch_size=32, num_shards=2, fallback_after=2,
                recover_after=1, probe_every=3, max_retries=1,
            ),
            recorder=self.telemetry,
            injector=self.injector,
        )
        self.counters = {}
        self.transitions_seen = 0

    def teardown(self):
        if hasattr(self, "service"):
            self.service.close()

    @rule(n=st.integers(min_value=1, max_value=48))
    def serve_batch(self, n):
        batch = [
            tuple(
                self.rng.randint(0, spec.max_value)
                for spec in self.classifier.schema
            )
            for _ in range(n)
        ]
        reference = self.service.serving_classifier()
        results = self.service.match_batch(batch)
        # No lost or duplicated results: exactly one answer per packet,
        # in input order, equal to the serving snapshot's reference.
        assert len(results) == n
        assert verify_against_linear(reference, batch, results) == []

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def hot_swap(self, pick):
        body = self.classifier.body
        report = self.service.insert(body[pick % len(body)])
        assert report.accepted
        # Swap either succeeded (fresh generation serves) or quarantined
        # (old engine serves); in both cases serving stays consistent.
        results = self.service.match_batch([tuple(
            0 for _ in self.classifier.schema
        )])
        assert len(results) == 1

    @rule(which=st.sampled_from(_ARMABLE))
    def arm_fault(self, which):
        site, kind = which
        self.injector.arm(FaultSpec(site=site, kind=kind, times=1))

    @invariant()
    def counters_monotonic(self):
        if not hasattr(self, "service"):
            return
        snapshot = self.service.snapshot()
        for name in _MONOTONIC:
            value = snapshot.counter(name)
            assert value >= self.counters.get(name, 0), name
            self.counters[name] = value

    @invariant()
    def transitions_have_causes(self):
        if not hasattr(self, "service"):
            return
        transitions = self.service.health.transitions
        if transitions > self.transitions_seen:
            # Any ladder movement must be explained by recorded failures
            # or recoveries, never spontaneous.
            assert (
                self.telemetry.counter("health.failures") > 0
            ), "health moved with no recorded failure"
        self.transitions_seen = transitions
        if self.service.health.state is HealthState.HEALTHY:
            assert self.telemetry.counter(
                "health.to_linear_fallback"
            ) <= self.telemetry.counter("health.transitions")


ChaosMachine.TestCase.settings = settings(
    max_examples=12,
    stateful_step_count=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestChaosStateMachine = ChaosMachine.TestCase
