"""Cross-module property tests (hypothesis) on the core invariants.

These are the "whole system" guarantees the paper's construction rests on:
every engine is semantically equivalent to the first-match linear scan;
every grouping partitions correctly; every encoding matches exactly the
same keys as the rule it encodes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.mgr import l_mgr
from repro.analysis.mrc import greedy_independent_set
from repro.analysis.order_independence import (
    is_order_independent,
    is_order_independent_pairwise,
)
from repro.analysis.sweep import is_order_independent_sweep
from repro.lookup.group_engine import MultiGroupEngine
from repro.saxpac.cache import ClassificationCache
from repro.saxpac.engine import EngineConfig, SaxPacEngine
from strategies import classifiers, headers_for

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestOrderIndependenceAgreement:
    @given(st.data())
    @_SETTINGS
    def test_three_implementations_agree(self, data):
        k = data.draw(classifiers())
        reference = is_order_independent_pairwise(k)
        assert is_order_independent(k) == reference
        assert is_order_independent_sweep(k) == reference


class TestEngineEquivalence:
    @given(st.data())
    @_SETTINGS
    def test_hybrid_engine_is_drop_in(self, data):
        k = data.draw(classifiers())
        engine = SaxPacEngine(k)
        for _ in range(15):
            header = data.draw(headers_for(k))
            assert engine.match(header).index == k.match(header).index

    @given(st.data())
    @_SETTINGS
    def test_cache_engine_is_drop_in(self, data):
        k = data.draw(classifiers())
        cache = ClassificationCache(k)
        for _ in range(15):
            header = data.draw(headers_for(k))
            assert cache.match(header).index == k.match(header).index

    @given(st.data())
    @_SETTINGS
    def test_mrcc_engine_is_drop_in(self, data):
        k = data.draw(classifiers())
        engine = SaxPacEngine(k, EngineConfig(enforce_cache=True))
        for _ in range(15):
            header = data.draw(headers_for(k))
            assert engine.match(header).index == k.match(header).index


class TestGroupingInvariants:
    @given(st.data())
    @_SETTINGS
    def test_mgr_partitions_and_respects_l(self, data):
        k = data.draw(classifiers())
        l = data.draw(st.integers(1, 3))
        result = l_mgr(k, l=l)
        seen = set()
        for group in result.groups:
            assert 1 <= len(group.fields) <= l
            for idx in group.rule_indices:
                assert idx not in seen
                seen.add(idx)
            # Within-group order-independence on the chosen fields.
            members = [k.rules[i] for i in group.rule_indices]
            for a in range(len(members) - 1):
                for b in range(a + 1, len(members)):
                    assert not members[a].intersects_on(
                        members[b], group.fields
                    )
        assert seen == set(range(len(k.body)))

    @given(st.data())
    @_SETTINGS
    def test_multi_group_engine_equivalence(self, data):
        k = data.draw(classifiers())
        result = l_mgr(k, l=2)
        engine = MultiGroupEngine(k, result.groups)
        for _ in range(15):
            header = data.draw(headers_for(k))
            assert engine.match(header).index == k.match(header).index

    @given(st.data())
    @_SETTINGS
    def test_independent_subset_is_independent(self, data):
        k = data.draw(classifiers())
        result = greedy_independent_set(k)
        chosen = [k.rules[i] for i in result.rule_indices]
        for a in range(len(chosen) - 1):
            for b in range(a + 1, len(chosen)):
                assert not chosen[a].intersects(chosen[b])


class TestTheorems:
    @given(st.data())
    @_SETTINGS
    def test_theorem2_reduction_is_semantically_equivalent(self, data):
        """Theorem 2, end to end: reduced lookup + single FP check equals
        the full classifier, on order-independent inputs."""
        from repro.analysis.fsm import fsm

        k = data.draw(classifiers(max_rules=10))
        if not is_order_independent(k) or not k.body:
            return
        result = fsm(k)
        kept = result.kept_fields
        for _ in range(15):
            header = data.draw(headers_for(k))
            # Reduced lookup: scan on the kept fields only.
            candidate = None
            for i, rule in enumerate(k.body):
                if rule.matches_on(header, kept):
                    candidate = i
                    break
            expected = k.match(header)
            if candidate is not None and k.rules[candidate].matches(header):
                assert expected.index == candidate
            else:
                assert expected.rule is k.catch_all
