"""Wire-protocol robustness: round trips, truncation, corruption.

The framing layer must uphold two properties: every encode/decode pair
is the identity (checked property-style with hypothesis, including
random stream chunking), and no byte stream — truncated, oversized,
corrupted or simply garbage — ever makes the decoder crash, hang, or
silently misparse: it either waits for more bytes, yields frames, or
raises :class:`ProtocolError`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import uniform_schema
from repro.net.protocol import (
    FRAME_HEADER,
    MAGIC,
    ErrorCode,
    FrameDecoder,
    FrameType,
    PayloadError,
    ProtocolError,
    check_wire_schema,
    decode_error,
    decode_match_request,
    decode_match_response,
    encode_error,
    encode_frame,
    encode_match_request,
    encode_match_response,
)


@st.composite
def header_blocks(draw):
    """(count, k) uint32 header blocks."""
    k = draw(st.integers(1, 8))
    count = draw(st.integers(0, 40))
    values = draw(
        st.lists(
            st.integers(0, 0xFFFFFFFF),
            min_size=count * k,
            max_size=count * k,
        )
    )
    return np.array(values, dtype=np.uint32).reshape(count, k)


class TestRoundTrips:
    @given(block=header_blocks(), request_id=st.integers(0, 2**64 - 1))
    @settings(max_examples=60, deadline=None)
    def test_match_request(self, block, request_id):
        data = encode_match_request(request_id, block)
        frames = FrameDecoder().feed(data)
        assert len(frames) == 1
        frame = frames[0]
        assert frame.type == FrameType.MATCH_REQUEST
        assert frame.request_id == request_id
        decoded = decode_match_request(frame)
        assert decoded.shape == block.shape
        assert (decoded == block).all()

    @given(
        indices=st.lists(st.integers(0, 0xFFFFFFFF), max_size=100),
        request_id=st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_match_response(self, indices, request_id):
        data = encode_match_response(request_id, indices)
        (frame,) = FrameDecoder().feed(data)
        assert frame.type == FrameType.MATCH_RESPONSE
        assert list(decode_match_response(frame)) == indices

    @given(
        code=st.sampled_from(list(ErrorCode)),
        message=st.text(max_size=200),
        request_id=st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_error(self, code, message, request_id):
        data = encode_error(request_id, code, message)
        (frame,) = FrameDecoder().feed(data)
        assert frame.type == FrameType.ERROR
        got_code, got_message = decode_error(frame)
        assert got_code == code
        assert got_message == message

    @given(
        blocks=st.lists(header_blocks(), min_size=1, max_size=5),
        chunk=st.integers(1, 64),
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_reassembly_any_chunking(self, blocks, chunk):
        """Frames survive arbitrary re-chunking of the byte stream."""
        stream = b"".join(
            encode_match_request(i, block) for i, block in enumerate(blocks)
        )
        decoder = FrameDecoder()
        frames = []
        for start in range(0, len(stream), chunk):
            frames.extend(decoder.feed(stream[start : start + chunk]))
        assert len(frames) == len(blocks)
        assert len(decoder) == 0
        for i, (frame, block) in enumerate(zip(frames, blocks)):
            assert frame.request_id == i
            assert (decode_match_request(frame) == block).all()

    def test_ping_pong_empty_payload(self):
        (frame,) = FrameDecoder().feed(encode_frame(FrameType.PING, 9))
        assert frame.type == FrameType.PING
        assert frame.payload == b""


class TestTruncation:
    """A prefix of a valid stream never errors — it waits for bytes."""

    @given(block=header_blocks(), cut=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_any_prefix_yields_nothing(self, block, cut):
        data = encode_match_request(3, block)
        prefix = data[: int(cut * (len(data) - 1))]
        decoder = FrameDecoder()
        assert decoder.feed(prefix) == []
        # The remainder completes the frame.
        (frame,) = decoder.feed(data[len(prefix) :])
        assert (decode_match_request(frame) == block).all()

    def test_truncated_payload_prefix(self):
        frame = encode_match_request(1, np.zeros((4, 3), dtype=np.uint32))
        decoder = FrameDecoder()
        assert decoder.feed(frame[: FRAME_HEADER.size + 5]) == []
        assert len(decoder) == FRAME_HEADER.size + 5


class TestCorruption:
    def test_bad_magic(self):
        data = b"XXXX" + encode_frame(FrameType.PING, 1)[4:]
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(data)

    def test_bad_version(self):
        good = bytearray(encode_frame(FrameType.PING, 1))
        good[4] = 99
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(bytes(good))

    def test_oversized_declared_payload(self):
        header = FRAME_HEADER.pack(
            MAGIC, 1, int(FrameType.MATCH_REQUEST), 0, 1, 2**31
        )
        with pytest.raises(ProtocolError, match="cap"):
            FrameDecoder().feed(header)

    def test_oversized_respects_configured_cap(self):
        data = encode_match_request(
            1, np.zeros((100, 6), dtype=np.uint32)
        )
        with pytest.raises(ProtocolError, match="cap"):
            FrameDecoder(max_payload=64).feed(data)

    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame(FrameType.PING, 1, b"x" * (17 * 1024 * 1024))

    def test_unknown_frame_type_keeps_framing(self):
        """An unknown type is a per-frame problem, not a stream one."""
        data = encode_frame(77, 5, b"abc") + encode_frame(FrameType.PING, 6)
        frames = FrameDecoder().feed(data)
        assert [int(f.type) for f in frames] == [77, int(FrameType.PING)]

    def test_garbage_raises(self):
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(b"\x00" * 64)


class TestPayloadErrors:
    """Well-framed nonsense is rejected per frame, recoverably."""

    def test_count_length_mismatch(self):
        good = encode_match_request(1, np.zeros((4, 3), dtype=np.uint32))
        bad = good[:-4]  # drop one uint32: length disagrees with count
        header = bad[: FRAME_HEADER.size - 4]
        length = len(bad) - FRAME_HEADER.size
        reframed = (
            header
            + length.to_bytes(4, "little")
            + bad[FRAME_HEADER.size :]
        )
        (frame,) = FrameDecoder().feed(reframed)
        with pytest.raises(PayloadError, match="declares"):
            decode_match_request(frame)

    def test_zero_fields(self):
        payload = (0).to_bytes(2, "little") + (0).to_bytes(4, "little")
        (frame,) = FrameDecoder().feed(
            encode_frame(FrameType.MATCH_REQUEST, 1, payload)
        )
        with pytest.raises(PayloadError, match="zero fields"):
            decode_match_request(frame)

    def test_short_prefixes(self):
        for ftype, decoder in [
            (FrameType.MATCH_REQUEST, decode_match_request),
            (FrameType.MATCH_RESPONSE, decode_match_response),
            (FrameType.ERROR, decode_error),
        ]:
            (frame,) = FrameDecoder().feed(encode_frame(ftype, 1, b"\x01"))
            with pytest.raises(PayloadError, match="prefix"):
                decoder(frame)

    def test_response_count_mismatch(self):
        payload = (9).to_bytes(4, "little") + b"\x00" * 8
        (frame,) = FrameDecoder().feed(
            encode_frame(FrameType.MATCH_RESPONSE, 1, payload)
        )
        with pytest.raises(PayloadError, match="declares"):
            decode_match_response(frame)

    def test_request_rejects_wide_values(self):
        with pytest.raises(PayloadError, match="uint32"):
            encode_match_request(1, [[2**33]])

    def test_request_rejects_bad_shape(self):
        with pytest.raises(PayloadError, match="count, k"):
            encode_match_request(1, np.zeros(3, dtype=np.uint32))


class TestWireSchema:
    def test_accepts_32bit_fields(self):
        check_wire_schema(uniform_schema(6, 32))

    def test_rejects_wide_fields(self):
        with pytest.raises(ProtocolError, match="wider than 32"):
            check_wire_schema(uniform_schema(2, 128))
