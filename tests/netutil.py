"""Shared timing helpers for the net-layer test suites.

The wire tests race the server's event-loop thread: a client returns as
soon as it has read its response frame, but the loop bumps counters,
releases semaphores and decrements inflight *after* writing it.  Fixed
``sleep`` waits for that accounting are either too short (flaky) or too
long (slow suite) — these helpers poll a condition with a bounded
deadline instead, so tests wait exactly as long as they must.
"""

import time


def wait_until(predicate, timeout=5.0, interval=0.01):
    """Poll ``predicate`` until truthy or ``timeout`` elapses; returns
    the predicate's final value either way (so callers can still assert
    on it for a readable failure)."""
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value or time.monotonic() >= deadline:
            return value
        time.sleep(interval)


def settle(predicate, timeout=5.0):
    """Wait for server-side accounting to catch up with the client.

    Same contract as :func:`wait_until`; the name states the intent at
    call sites that wait for counters/inflight to settle after the
    client already has its answers.
    """
    return wait_until(predicate, timeout=timeout)
