"""Tests for repro.core.rule."""

import pytest

from repro.core import (
    DENY,
    Interval,
    TRANSMIT,
    catch_all_rule,
    make_rule,
    uniform_schema,
)


class TestMatching:
    def test_match_inside(self):
        rule = make_rule([(1, 3), (4, 8)])
        assert rule.matches((2, 5))

    def test_match_boundaries(self):
        rule = make_rule([(1, 3), (4, 8)])
        assert rule.matches((1, 4))
        assert rule.matches((3, 8))

    def test_no_match_one_field_out(self):
        rule = make_rule([(1, 3), (4, 8)])
        assert not rule.matches((2, 9))
        assert not rule.matches((0, 5))

    def test_arity_mismatch_raises(self):
        rule = make_rule([(1, 3)])
        with pytest.raises(ValueError):
            rule.matches((1, 2))

    def test_matches_on_subset(self):
        rule = make_rule([(1, 3), (4, 8), (0, 0)])
        header = (2, 5, 9)  # fails field 2 only
        assert rule.matches_on(header, [0, 1])
        assert not rule.matches(header)


class TestIntersection:
    def test_paper_section2_pairs(self):
        r1 = make_rule([(1, 3), (4, 5)])
        r2 = make_rule([(5, 6), (4, 5)])
        r3 = make_rule([(1, 3), (4, 5)])
        r4 = make_rule([(2, 4), (4, 5)])
        assert not r1.intersects(r2)  # order-independent pair
        assert r3.intersects(r4)  # (3, 4) matches both

    def test_intersects_on_subset(self):
        r1 = make_rule([(1, 3), (4, 5)])
        r2 = make_rule([(5, 6), (4, 5)])
        assert r1.intersects_on(r2, [1])
        assert not r1.intersects_on(r2, [0])

    def test_disjoint_fields_witnesses(self):
        r1 = make_rule([(1, 3), (4, 5), (0, 9)])
        r2 = make_rule([(5, 6), (4, 5), (10, 12)])
        assert r1.disjoint_fields(r2) == (0, 2)

    def test_self_intersects(self):
        rule = make_rule([(1, 3), (4, 5)])
        assert rule.intersects(rule)


class TestFieldSurgery:
    def test_restrict(self):
        rule = make_rule([(1, 3), (4, 5), (6, 7)], DENY, name="r")
        reduced = rule.restrict([0, 2])
        assert reduced.intervals == (Interval(1, 3), Interval(6, 7))
        assert reduced.action is DENY
        assert reduced.name == "r"

    def test_drop_fields(self):
        rule = make_rule([(1, 3), (4, 5), (6, 7)])
        assert rule.drop_fields([1]).intervals == (
            Interval(1, 3),
            Interval(6, 7),
        )

    def test_extend(self):
        rule = make_rule([(1, 3)])
        extended = rule.extend([Interval(2, 9)])
        assert extended.num_fields == 2
        assert extended.intervals[1] == Interval(2, 9)

    def test_restrict_then_match_theorem2_shape(self):
        # The reduced rule matches a superset of the original headers.
        rule = make_rule([(1, 3), (4, 5)])
        reduced = rule.restrict([0])
        for header in [(2, 4), (2, 9)]:
            if rule.matches(header):
                assert reduced.matches(header[:1])


class TestCatchAll:
    def test_catch_all_matches_everything(self):
        schema = uniform_schema(2, 4)
        rule = catch_all_rule(schema)
        assert rule.is_catch_all(schema)
        assert rule.action == TRANSMIT
        for header in [(0, 0), (15, 15), (7, 3)]:
            assert rule.matches(header)

    def test_specific_rule_is_not_catch_all(self):
        schema = uniform_schema(2, 4)
        assert not make_rule([(0, 15), (0, 14)]).is_catch_all(schema)

    def test_empty_rule_rejected(self):
        from repro.core.rule import Rule

        with pytest.raises(ValueError):
            Rule(())
