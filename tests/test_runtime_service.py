"""Tests for repro.runtime.service and the ``runtime`` CLI command."""

import json
import random

import pytest

from conftest import random_classifier
from repro.cli import main
from repro.core import make_rule
from repro.runtime.service import RunReport, RuntimeConfig, RuntimeService
from repro.workloads.traces import generate_trace


@pytest.fixture
def setup():
    rng = random.Random(55)
    classifier = random_classifier(rng, num_rules=30)
    trace = generate_trace(classifier, 300, seed=8)
    return classifier, trace


class TestRuntimeConfig:
    def test_defaults(self):
        config = RuntimeConfig()
        assert config.batch_size == 1024
        assert config.num_shards == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"num_shards": 0},
            {"shard_mode": "fiber"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeConfig(**kwargs)


class TestRuntimeService:
    def test_run_trace_report(self, setup):
        classifier, trace = setup
        with RuntimeService(
            classifier, RuntimeConfig(batch_size=64)
        ) as service:
            report = service.run_trace(trace)
        assert isinstance(report, RunReport)
        assert report.packets == len(trace)
        assert report.packets_per_second > 0
        snap = report.telemetry
        assert snap.counter("runtime.packets") == len(trace)
        assert snap.counter("runtime.batches") == 5  # ceil(300 / 64)
        assert snap.counter("engine.lookups") == len(trace)
        data = report.as_dict()
        assert data["packets"] == len(trace)
        assert "telemetry" in data

    def test_matches_reference(self, setup):
        classifier, trace = setup
        with RuntimeService(classifier) as service:
            got = [r.index for r in service.match_batch(trace)]
        assert got == [classifier.match(h).index for h in trace]

    def test_sharded_matches_unsharded(self, setup):
        classifier, trace = setup
        config = RuntimeConfig(batch_size=128, num_shards=3)
        with RuntimeService(classifier, config) as service:
            got = [r.index for r in service.match_batch(trace)]
        assert got == [classifier.match(h).index for h in trace]

    def test_hot_insert_visible_to_shards(self, setup):
        classifier, trace = setup
        config = RuntimeConfig(num_shards=2)
        with RuntimeService(classifier, config) as service:
            service.match_batch(trace[:100])
            gen = service.swap.generation
            service.insert(make_rule([(0, 3)] * classifier.num_fields))
            assert service.swap.generation > gen
            got = [r.index for r in service.match_batch(trace)]
            snapshot = service.swap.snapshot_classifier()
        assert got == [snapshot.match(h).index for h in trace]

    def test_report_text(self, setup):
        classifier, trace = setup
        with RuntimeService(classifier) as service:
            service.match_batch(trace[:50])
            text = service.report_text()
        assert "runtime" in text
        assert "engine" in text


class TestRuntimeCli:
    def test_runtime_command(self, tmp_path, capsys):
        path = str(tmp_path / "acl.txt")
        assert main(["generate", "--style", "acl", "--rules", "80",
                     "--seed", "3", "--out", path]) == 0
        capsys.readouterr()
        rc = main(["runtime", path, "--trace", "1000",
                   "--batch-size", "128", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pkt/s" in out
        assert "telemetry" in out

    def test_runtime_command_json(self, tmp_path, capsys):
        path = str(tmp_path / "acl.txt")
        assert main(["generate", "--style", "acl", "--rules", "60",
                     "--seed", "4", "--out", path]) == 0
        capsys.readouterr()
        rc = main(["runtime", path, "--trace", "500", "--seed", "2",
                   "--shards", "2", "--updates", "3", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["packets"] == 500
        assert data["telemetry"]["counters"]["runtime.packets"] == 500

    def test_runtime_seed_reproducible(self, tmp_path, capsys):
        path = str(tmp_path / "acl.txt")
        assert main(["generate", "--style", "acl", "--rules", "50",
                     "--seed", "5", "--out", path]) == 0
        capsys.readouterr()
        outs = []
        for _ in range(2):
            assert main(["runtime", path, "--trace", "400",
                         "--seed", "9", "--json"]) == 0
            outs.append(json.loads(capsys.readouterr().out))
        # Same seed -> identical trace -> identical match counters.
        assert (outs[0]["telemetry"]["counters"]
                == outs[1]["telemetry"]["counters"])
