"""Tests for rule actions."""

from repro.core.actions import (
    Action,
    ActionKind,
    DENY,
    PERMIT,
    TRANSMIT,
)


class TestAction:
    def test_builtins_kinds(self):
        assert TRANSMIT.kind is ActionKind.TRANSMIT
        assert PERMIT.kind is ActionKind.PERMIT
        assert DENY.kind is ActionKind.DENY

    def test_equality_by_value(self):
        assert Action(ActionKind.MARK, 3) == Action(ActionKind.MARK, 3)
        assert Action(ActionKind.MARK, 3) != Action(ActionKind.MARK, 4)

    def test_payload_defaults_none(self):
        assert TRANSMIT.payload is None

    def test_custom_payload(self):
        action = Action(ActionKind.REDIRECT, payload="port7")
        assert action.payload == "port7"

    def test_hashable(self):
        assert len({TRANSMIT, PERMIT, DENY, TRANSMIT}) == 3
