#!/usr/bin/env python
"""Expressive classification: add range fields for free (Theorem 1).

The paper's motivating scenario: services increasingly want to classify on
*ranges* — dates, packet lengths, VLAN ranges — but every extra range field
multiplies TCAM cost.  This example takes an ACL, adds two expressive
range fields (packet length and a time-of-day window), and compares:

* the regular TCAM cost of the extended classifier (binary and SRGE), vs
* the SAX-PAC cost, where the order-independent 90+% of rules ignore the
  new fields during lookup and verify them in the false-positive check.

Run:  python examples/expressive_acl.py
"""

import random

from repro import (
    BinaryRangeEncoder,
    SaxPacEngine,
    SrgeRangeEncoder,
    generate_classifier,
)
from repro.analysis import fsm, greedy_independent_set
from repro.core import FieldSpec, Interval
from repro.tcam import classifier_entry_count


def add_expressive_fields(classifier, seed):
    """Append a 16-bit packet-length range and a 16-bit time window
    (minutes since midnight) to every rule."""
    rng = random.Random(seed)
    specs = [
        FieldSpec("pkt_len", 16),
        FieldSpec("time_of_day", 16),
    ]
    lengths = [(0, 1500), (64, 1500), (0, 128), (1200, 1500), (0, 65535)]
    windows = [(480, 1080), (0, 479), (1081, 1439), (0, 65535), (540, 1020)]
    extra = []
    for _rule in classifier.body:
        extra.append(
            [
                Interval(*rng.choice(lengths)),
                Interval(*rng.choice(windows)),
            ]
        )
    return classifier.extend(specs, extra)


def kb(entries, width):
    return entries * width / 1024.0


def main():
    base = generate_classifier("acl", 1500, seed=99)
    extended = add_expressive_fields(base, seed=100)
    print(f"ACL: {len(base.body)} rules, {base.schema.total_width} bits; "
          f"extended to {extended.schema.total_width} bits with "
          f"pkt_len + time_of_day ranges")

    binary, srge = BinaryRangeEncoder(), SrgeRangeEncoder()
    width = extended.schema.total_width
    for encoder in (binary, srge):
        entries = classifier_entry_count(extended, encoder)
        print(f"  regular TCAM ({encoder.name:6}): {entries:>9} entries "
              f"= {kb(entries, width):>12.1f} Kb")

    # SAX-PAC / Theorem 1: pick the order-independent part on the BASE
    # fields; the new range fields then never enter the lookup at all and
    # only appear in the single false-positive check.
    independent = greedy_independent_set(base)
    fraction = independent.size / len(extended.body)
    sub = base.subset(independent.rule_indices)
    reduction = fsm(sub)
    print(f"\norder-independent: {independent.size} rules "
          f"({fraction:.1%}); FSM lookup fields {reduction.kept_fields} "
          f"({reduction.lookup_width} bits)")
    for encoder in (binary, srge):
        i_entries = classifier_entry_count(
            extended, encoder,
            fields=reduction.kept_fields,
            rule_indices=independent.rule_indices,
        )
        d_entries = classifier_entry_count(
            extended, encoder,
            rule_indices=independent.complement(len(extended.body)),
        )
        total = kb(i_entries, reduction.lookup_width) + kb(d_entries, width)
        print(f"  SAX-PAC     ({encoder.name:6}): {i_entries:>9} reduced + "
              f"{d_entries} full entries = {total:>12.1f} Kb")

    # And the engine actually classifies correctly on the wider header.
    engine = SaxPacEngine(extended)
    rng = random.Random(7)
    for header in extended.sample_headers(500, rng):
        assert engine.match(header).index == extended.match(header).index
    print("\nSAX-PAC engine verified on 500 sampled 152-bit headers.")


if __name__ == "__main__":
    main()
