#!/usr/bin/env python
"""Live rule churn on a SAX-PAC classifier (Section 7.2).

Streams inserts, removals and modifications through the dynamic hybrid
classifier, reporting where rules land (existing group / new group /
shadow with budget C / order-dependent part D) and verifying semantic
equivalence against the reference linear scan after every phase.

Run:  python examples/dynamic_updates.py
"""

import random

from repro import DynamicSaxPac, generate_classifier
from repro.core import classbench_schema
from repro.saxpac.updates import InsertOutcome


def verify(dyn, label, rng):
    reference = dyn.to_classifier()
    for header in reference.sample_headers(400, rng):
        expected = reference.match(header)
        got = dyn.match_id(header)
        if got is None:
            assert expected.rule is reference.catch_all, label
        else:
            assert dyn.rule(got) == expected.rule, label
    print(f"  [{label}] verified on 400 headers")


def main():
    rng = random.Random(2014)
    source = generate_classifier("ipc", 500, seed=77)
    dyn = DynamicSaxPac(
        classbench_schema(), max_group_fields=2, max_groups=8, fp_budget=2
    )

    # Phase 1: bulk insertion.
    outcomes = {}
    ids = []
    for rule in source.body:
        report = dyn.insert(rule)
        outcomes[report.outcome] = outcomes.get(report.outcome, 0) + 1
        if report.accepted:
            ids.append(report.rule_id)
    print(f"inserted {len(ids)} rules:")
    for outcome in InsertOutcome:
        if outcomes.get(outcome):
            print(f"  {outcome.value:>16}: {outcomes[outcome]}")
    print(f"  groups: {dyn.num_groups}, D: {dyn.d_size}, "
          f"software: {dyn.software_size}")
    verify(dyn, "after inserts", rng)

    # Phase 2: remove a random 20%.
    victims = rng.sample(ids, len(ids) // 5)
    for rule_id in victims:
        dyn.remove(rule_id)
        ids.remove(rule_id)
    print(f"\nremoved {len(victims)} rules "
          f"(groups: {dyn.num_groups}, D: {dyn.d_size})")
    verify(dyn, "after removals", rng)

    # Phase 3: modify 50 surviving rules (widen their port ranges).
    from dataclasses import replace
    from repro.core import Interval

    modified = 0
    for rule_id in rng.sample(ids, 50):
        rule = dyn.rule(rule_id)
        widened = replace(
            rule,
            intervals=rule.intervals[:3]
            + (Interval(0, 65535),)
            + rule.intervals[4:],
        )
        report = dyn.modify(rule_id, widened)
        if report.accepted:
            modified += 1
    print(f"\nmodified {modified} rules in place or re-placed "
          f"(recomputations so far: {dyn.recomputations})")
    verify(dyn, "after modifications", rng)

    # Phase 4: background re-optimization.
    dyn.recompute()
    print(f"\nafter recompute: groups: {dyn.num_groups}, D: {dyn.d_size}, "
          f"software fraction: {dyn.software_size / len(dyn):.1%}")
    verify(dyn, "after recompute", rng)


if __name__ == "__main__":
    main()
