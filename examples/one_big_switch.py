#!/usr/bin/env python
"""Distributing one big classifier over a switch path (Section 9).

Order-independent rules never need priority coordination: at most one of
them matches any packet, so they can be scattered over the path's spare
capacity freely.  This example splits a 600-rule policy over three small
switches, shows the placement, measures how a *naive* split would have
misbehaved (priority inversions), and verifies path semantics packet by
packet.

Run:  python examples/one_big_switch.py
"""

import random

from repro import generate_classifier
from repro.saxpac import PathDistribution, priority_inversions


def main():
    policy = generate_classifier("ipc", 600, seed=2718)
    capacities = [260, 220, 220]
    dist = PathDistribution(policy, capacities)

    print(f"policy: {len(policy.body)} rules over "
          f"{len(capacities)} switches {capacities}")
    for i, load in enumerate(dist.loads()):
        print(f"  switch {i}: {load.independent_rules:>4} independent + "
              f"{load.dependent_rules:>3} dependent rules "
              f"({load.utilization:.0%} of {load.capacity})")

    # What a naive, priority-oblivious split would cost: reverse
    # round-robin of the whole rule list.
    naive = [[], [], []]
    for pos, idx in enumerate(reversed(range(len(policy.body)))):
        naive[pos % 3].append(idx)
    print(f"\npriority inversions (intersecting pairs split with the "
          f"higher-priority rule later on the path):")
    print(f"  naive whole-classifier split: "
          f"{priority_inversions(policy, naive)}")
    print(f"  order-independence-aware split: "
          f"{priority_inversions(policy, dist.assignments)} "
          f"(zero by construction: I rules never intersect, and the "
          f"D part sits last)")

    rng = random.Random(1)
    for header in policy.sample_headers(1000, rng):
        assert dist.match(header).index == policy.match(header).index
    print("\npath semantics verified against the monolithic classifier "
          "on 1000 headers.")


if __name__ == "__main__":
    main()
