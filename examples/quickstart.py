#!/usr/bin/env python
"""Quickstart: build a classifier, wrap it in a SAX-PAC engine, classify.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    Classifier,
    EngineConfig,
    SaxPacEngine,
    classbench_schema,
    make_rule,
)
from repro.core import DENY, PERMIT, format_header
from repro.core.intervals import interval_from_prefix


def ip(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


def prefix(a, b, c, d, length):
    iv = interval_from_prefix(ip(a, b, c, d), length, 32)
    return (iv.low, iv.high)


def main():
    schema = classbench_schema()  # src/dst IP, ports, proto, flags: 120 bits
    wildcard16 = (0, 0xFFFF)
    wildcard8 = (0, 0xFF)

    rules = [
        # Block a noisy subnet outright (highest priority).
        make_rule(
            [prefix(10, 66, 0, 0, 16), (0, (1 << 32) - 1),
             wildcard16, wildcard16, wildcard8, wildcard16],
            DENY, name="quarantine"),
        # Permit the web servers.
        make_rule(
            [prefix(10, 0, 0, 0, 8), prefix(192, 168, 1, 10, 32),
             wildcard16, (80, 80), (6, 6), wildcard16],
            PERMIT, name="web-http"),
        make_rule(
            [prefix(10, 0, 0, 0, 8), prefix(192, 168, 1, 10, 32),
             wildcard16, (443, 443), (6, 6), wildcard16],
            PERMIT, name="web-https"),
        # DNS to the resolver.
        make_rule(
            [prefix(10, 0, 0, 0, 8), prefix(192, 168, 1, 53, 32),
             wildcard16, (53, 53), (17, 17), wildcard16],
            PERMIT, name="dns"),
    ]
    classifier = Classifier(schema, rules)

    engine = SaxPacEngine(classifier, EngineConfig(max_group_fields=2))
    report = engine.report()
    print("Engine built:")
    print(f"  {report.software_rules}/{report.total_rules} rules in software "
          f"({report.num_groups} groups), {report.tcam_rules} in TCAM")
    print(f"  TCAM entries: {report.tcam_entries} "
          f"(a TCAM-only deployment would need {report.tcam_entries_full})")
    print()

    packets = [
        (ip(10, 1, 2, 3), ip(192, 168, 1, 10), 51000, 443, 6, 0),
        (ip(10, 66, 9, 9), ip(192, 168, 1, 10), 51000, 443, 6, 0),
        (ip(10, 4, 4, 4), ip(192, 168, 1, 53), 40000, 53, 17, 0),
        (ip(172, 16, 0, 1), ip(8, 8, 8, 8), 1234, 22, 6, 0),
    ]
    for header in packets:
        result = engine.match(header)
        name = result.rule.name or "catch-all"
        print(f"{format_header(header, schema)}")
        print(f"  -> {name}: {result.action!r}")

    # The engine is a drop-in for the linear scan:
    rng = random.Random(1)
    for header in classifier.sample_headers(1000, rng):
        assert engine.match(header).index == classifier.match(header).index
    print("\nVerified against the reference linear scan on 1000 headers.")


if __name__ == "__main__":
    main()
