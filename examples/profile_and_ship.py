#!/usr/bin/env python
"""Standardized classifier configuration (Section 7.1).

The paper proposes computing classifier traits *offline* and shipping them
with the classifier, so each network element picks the implementation that
fits its constraints.  This example plays both roles:

1. the *operator* generates an ACL, computes the profile (max
   order-independent part, FSM field subset, group assignments for several
   β budgets) and ships classifier+profile as one JSON artifact;
2. the *device* loads the artifact and instantiates an engine from the
   precomputed assignment matching its own parallel-lookup budget, without
   re-running any optimization.

Run:  python examples/profile_and_ship.py
"""

import os
import random
import tempfile

from repro import generate_classifier
from repro.analysis import group_statistics
from repro.lookup import MultiGroupEngine
from repro.saxpac import load_classifier, profile_classifier, save_classifier


def operator_side(path):
    classifier = generate_classifier("acl", 800, seed=123)
    print(f"[operator] built ACL: {len(classifier.body)} rules")
    profile = profile_classifier(classifier, betas=(2, 4, 8))
    print(f"[operator] profile: {profile.independent_fraction:.1%} "
          f"order-independent; FSM width "
          f"{profile.fsm_on_independent.lookup_width} bits; "
          f"{profile.min_groups_two_fields} two-field groups uncapped")
    for beta, assignment in sorted(profile.group_assignments.items()):
        stats = group_statistics(assignment)
        print(f"[operator]   beta={beta}: {stats.covered_rules} rules "
              f"grouped, {len(assignment.ungrouped)} to D")
    save_classifier(classifier, path, profile)
    print(f"[operator] shipped {os.path.getsize(path) / 1024:.0f} KiB "
          f"artifact -> {path}")
    return classifier


def device_side(path, parallel_lookups):
    classifier, profile = load_classifier(path)
    assert profile is not None, "artifact must embed the profile"
    assignment = profile.group_assignments[parallel_lookups]
    engine = MultiGroupEngine(classifier, assignment.groups)
    d_rules = set(assignment.ungrouped)
    print(f"[device] budget beta={parallel_lookups}: instantiated "
          f"{len(engine.groups)} group engines, {len(d_rules)} rules to "
          f"TCAM — no optimization re-run")

    def classify(header):
        best = engine.lookup(header)
        for idx in d_rules:  # the TCAM path, simulated
            if classifier.rules[idx].matches(header) and (
                best is None or idx < best
            ):
                best = idx
        return best if best is not None else len(classifier.rules) - 1

    return classifier, classify


def main():
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "acl_with_profile.json")
        original = operator_side(path)
        for beta in (2, 8):
            classifier, classify = device_side(path, beta)
            rng = random.Random(beta)
            for header in original.sample_headers(500, rng):
                assert classify(header) == original.match(header).index
            print(f"[device] beta={beta}: verified on 500 headers")


if __name__ == "__main__":
    main()
