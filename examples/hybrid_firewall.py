#!/usr/bin/env python
"""Hybrid deployment of a firewall classifier: software I + TCAM D.

Firewall rule sets are the paper's hardest case: broad sources, port
ranges, deny tails — still ~90% order-independent.  This example builds
the full hybrid engine, prints the decomposition (Section 8's story),
exercises the power-saving cache mode (Section 4.3), and measures relative
lookup cost on a ClassBench-style trace.

Run:  python examples/hybrid_firewall.py
"""

import time

from repro import EngineConfig, SaxPacEngine, generate_classifier
from repro.saxpac import ClassificationCache
from repro.workloads import generate_trace


def main():
    classifier = generate_classifier("fw", 1200, seed=42)
    trace = generate_trace(classifier, 4000, seed=43, hit_fraction=0.9)

    engine = SaxPacEngine(
        classifier, EngineConfig(max_group_fields=2, min_group_size=3)
    )
    report = engine.report()
    print(f"firewall: {report.total_rules} rules")
    print(f"  software: {report.software_rules} rules "
          f"({report.software_fraction:.1%}) in {report.num_groups} groups")
    for i, fields in enumerate(report.group_fields, 1):
        names = [classifier.schema[f].name for f in fields]
        size = engine.grouping.groups[i - 1].size
        print(f"    group {i:>2}: {size:>5} rules on {names}")
    print(f"  TCAM (D): {report.tcam_rules} rules -> "
          f"{report.tcam_entries} entries "
          f"(all-TCAM would need {report.tcam_entries_full}; "
          f"saving {report.tcam_saving:.1%})")

    # Relative lookup cost on the trace.
    t0 = time.perf_counter()
    for header in trace:
        classifier.match(header)
    linear_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for header in trace:
        engine.match(header)
    engine_s = time.perf_counter() - t0
    print(f"\ntrace of {len(trace)} packets: linear scan {linear_s:.2f}s, "
          f"SAX-PAC engine {engine_s:.2f}s "
          f"({linear_s / engine_s:.1f}x faster)")

    # Power-saving cache: an I match preempts the TCAM lookup entirely.
    cache = ClassificationCache(classifier)
    for header in trace:
        cache.match(header)
    print(f"\nMRCC cache: {cache.cached_rules} rules cached, "
          f"hit rate {cache.stats.hit_rate:.1%} "
          f"({cache.stats.hits} TCAM lookups avoided)")

    # Semantics are identical to the reference classifier.
    for header in trace[:500]:
        assert engine.match(header).index == classifier.match(header).index
        assert cache.match(header).index == classifier.match(header).index
    print("verified: engine and cache agree with the linear scan.")


if __name__ == "__main__":
    main()
