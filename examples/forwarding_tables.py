#!/usr/bin/env python
"""Forwarding tables as one-field classifiers (Section 4.4).

Builds IPv4 and IPv6 forwarding tables, shows that longest-prefix-match is
just first-match after sorting by prefix length, extracts the *exact*
maximal order-independent prefix set with EDF, and measures how few bits
distinguish it — the paper's closing conjecture that wider (IPv6) keys
make order-independence cheaper, not more expensive.

Run:  python examples/forwarding_tables.py
"""

import random

from repro.analysis import edf_single_field
from repro.boolean import virtual_field_fsm, words_from_classifier
from repro.workloads import generate_forwarding_table, longest_prefix_match


def analyze(version):
    table = generate_forwarding_table(
        800, seed=4242, version=version, aggregation=0.35
    )
    width = table.schema.total_width
    print(f"IPv{version}: {len(table.body)} prefixes, {width}-bit key")

    # LPM == first-match (the generator sorts longest-prefix-first).
    rng = random.Random(version)
    for header in table.sample_headers(400, rng):
        reference = longest_prefix_match(table, header[0])
        winner = table.match(header)
        if reference is None:
            assert winner.rule is table.catch_all
        else:
            assert winner.rule == reference
    print("  LPM == first-match verified on 400 addresses")

    independent = edf_single_field(table, 0)
    fraction = independent.size / len(table.body)
    print(f"  maximal order-independent set (EDF, exact): "
          f"{independent.size} ({fraction:.1%})")

    words = words_from_classifier(table, independent.rule_indices[:400])
    reduction = virtual_field_fsm(words, width, 1)
    print(f"  distinguishing bits for the independent set: "
          f"{reduction.reduced_width} of {width}")
    return fraction, reduction.reduced_width, width


def main():
    v4 = analyze(4)
    print()
    v6 = analyze(6)
    print()
    print("Section 4.4's conjecture:")
    print(f"  order-independent fraction: IPv4 {v4[0]:.1%} vs "
          f"IPv6 {v6[0]:.1%}")
    print(f"  bits needed per lookup:     IPv4 {v4[1]}/{v4[2]} vs "
          f"IPv6 {v6[1]}/{v6[2]}")
    print("  -> the 128-bit keys need barely more distinguishing bits "
          "than the 32-bit ones.")


if __name__ == "__main__":
    main()
