#!/usr/bin/env python
"""Walk through the paper's worked examples (Figures 2-5 and 7).

Reproduces, with the library's real data structures, the lookup
procedures the paper illustrates:

* Example 1 / Figure 2 — Theorem 1 (fields expansion + FP check);
* Example 2 / Figure 3 — Theorem 2 (fields reduction + FP check);
* Example 3 / Figure 4 — multi-group lookup and priority merge;
* Example 5 / Figure 5 — trading a few D rules for fewer groups;
* Example 10 / Figure 7 — dynamic insertion with a line-rate budget C.

Run:  python examples/paper_walkthrough.py
"""

from repro import Classifier, make_rule, uniform_schema
from repro.analysis import fsm_exact, greedy_independent_set, l_mgr
from repro.core import FieldSpec, Interval
from repro.lookup import MultiGroupEngine
from repro.saxpac import DynamicSaxPac
from repro.saxpac.updates import InsertOutcome


def banner(title):
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def example1():
    banner("Example 1 / Figure 2 - Theorem 1 (fields expansion)")
    k = Classifier(
        uniform_schema(2, 5),
        [
            make_rule([(1, 3), (4, 31)], name="R1"),
            make_rule([(4, 4), (2, 30)], name="R2"),
            make_rule([(7, 9), (5, 21)], name="R3"),
        ],
    )
    extended = k.extend(
        [FieldSpec("new", 5)],
        [[Interval(1, 28)], [Interval(4, 27)], [Interval(3, 18)]],
    )
    packet = (4, 2, 2)
    candidate = k.match(packet[:2])
    print(f"packet {packet}: lookup on the ORIGINAL fields -> "
          f"{candidate.rule.name}")
    full_rule = extended.rules[candidate.index]
    ok = full_rule.matches(packet)
    print(f"false-positive check on the added field: "
          f"{'pass' if ok else 'FAIL -> catch-all'}")
    assert extended.match(packet).rule is extended.catch_all


def example2():
    banner("Example 2 / Figure 3 - Theorem 2 (fields reduction)")
    k = Classifier(
        uniform_schema(3, 5),
        [
            make_rule([(1, 3), (4, 31), (1, 28)], name="R1"),
            make_rule([(4, 4), (2, 30), (4, 27)], name="R2"),
            make_rule([(7, 9), (5, 21), (3, 18)], name="R3"),
        ],
    )
    result = fsm_exact(k)
    print(f"FSM keeps fields {result.kept_fields} "
          f"({result.lookup_width} of {k.schema.total_width} bits)")
    packet = (4, 2, 2)
    reduced = k.restrict(result.kept_fields)
    candidate = reduced.match(tuple(packet[f] for f in result.kept_fields))
    print(f"packet {packet}: reduced lookup -> {candidate.rule.name}")
    ok = k.rules[candidate.index].matches(packet)
    print(f"false-positive check on the removed fields: "
          f"{'pass' if ok else 'FAIL -> catch-all'}")


def example3():
    banner("Example 3 / Figure 4 - multi-group lookup")
    k = Classifier(
        uniform_schema(3, 4),
        [
            make_rule([(5, 10), (4, 7), (4, 5)], name="R1"),
            make_rule([(1, 4), (4, 7), (4, 5)], name="R2"),
            make_rule([(1, 9), (1, 3), (4, 6)], name="R3"),
            make_rule([(1, 9), (4, 7), (1, 3)], name="R4"),
            make_rule([(1, 9), (4, 7), (5, 6)], name="R5"),
        ],
    )
    grouping = l_mgr(k, l=2)
    for i, group in enumerate(grouping.groups, 1):
        names = [k.rules[j].name for j in group.rule_indices]
        print(f"group {i}: {names} on fields {group.fields}")
    engine = MultiGroupEngine(k, grouping.groups)
    packet = (2, 4, 5)
    for i, group in enumerate(engine.groups, 1):
        cand = group.probe(packet)
        print(f"packet {packet}: group {i} candidate -> "
              f"{k.rules[cand].name if cand is not None else None}")
    winner = engine.lookup(packet)
    print(f"priority merge -> {k.rules[winner].name}")


def example5():
    banner("Example 5 / Figure 5 - fewer groups by growing D")
    k = Classifier(
        uniform_schema(3, 5),
        [
            make_rule([(5, 9), (4, 4), (4, 4)], name="R1"),
            make_rule([(2, 4), (5, 7), (5, 5)], name="R2"),
            make_rule([(2, 3), (1, 4), (4, 6)], name="R3"),
            make_rule([(1, 5), (1, 7), (1, 3)], name="R4"),
            make_rule([(1, 9), (1, 7), (1, 6)], name="R5"),
        ],
    )
    independent = greedy_independent_set(k)
    names = [k.rules[i].name for i in independent.rule_indices]
    print(f"maximal order-independent subset: {names}")
    two_groups = l_mgr(k, l=2, rule_subset=independent.rule_indices)
    print(f"grouping it needs {two_groups.num_groups} groups")
    compact = l_mgr(k, l=1, rule_subset=[0, 1, 3])
    print(f"sending R3 (and R5) to D leaves {compact.num_groups} group "
          f"on fields {compact.groups[0].fields}")


def example10():
    banner("Example 10 / Figure 7 - insertion with budget C")
    dyn = DynamicSaxPac(
        uniform_schema(3, 4), max_group_fields=1, max_groups=1, fp_budget=2
    )
    for ranges, name in [
        ([(1, 3), (4, 8), (1, 5)], "R1"),
        ([(7, 7), (1, 8), (4, 5)], "R2"),
        ([(4, 5), (6, 9), (4, 6)], "R3"),
    ]:
        dyn.insert(make_rule(ranges, name=name))
    print(f"I = one group on fields {dyn._groups[0].fields}")
    report = dyn.insert(make_rule([(2, 4), (2, 2), (3, 3)], name="R4"))
    assert report.outcome is InsertOutcome.SHADOW
    hosts = [dyn.rule(h).name for h in report.hosts]
    print(f"R4 inserted as a shadow of {hosts} (checked only when one of "
          f"them matches; C=2 suffices)")
    rid = dyn.match_id((3, 2, 3))
    print(f"packet (3, 2, 3) -> {dyn.rule(rid).name}")


def main():
    example1()
    example2()
    example3()
    example5()
    example10()
    print()


if __name__ == "__main__":
    main()
