"""Table 3 — MRC/MGR simulation: maximal order-independent subsets, FSM
field subsets, and one-/two-field multi-group representations on the whole
classifier and on the k-MRC result.

Expected shape (paper): the vast majority of rules land in very few
one- or two-field order-independent groups; 95% coverage needs only a
handful of groups; running MGR on the k-MRC result removes most of the
tiny (size <= 2 / <= 5) groups created by general bottom rules.
"""

from repro.bench.experiments import render_table3, run_table3


def test_table3_groups(benchmark, suite, save_result):
    rows = benchmark.pedantic(run_table3, args=(suite,), rounds=1, iterations=1)
    save_result("table3_groups", render_table3(rows))
    for row in rows:
        # 95% of grouped rules covered by a small number of groups.
        assert row.mgr2.groups_for_95 <= max(10, row.mgr2.num_groups)
        assert row.mgr2_on_kmrc.num_groups <= row.mgr2.num_groups
