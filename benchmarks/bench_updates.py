"""Dynamic update cost (Section 7.2, extra experiment).

Measures insertion throughput into the dynamic hybrid classifier and
reports where rules landed (group / new group / shadow / D), plus removal
cost.  Expected shape: the overwhelming majority of acl-style rules join
existing groups in (vectorized) O(|group|) time without any rebuild.
"""

import random

import pytest

from repro.bench.harness import bench_rules, cached_suite
from repro.core import classbench_schema
from repro.saxpac.updates import DynamicSaxPac, InsertOutcome

NUM_RULES = 600


@pytest.fixture(scope="module")
def rules():
    suite = cached_suite(rules=max(NUM_RULES, min(bench_rules(), 2000)))
    return list(suite["acl2"].body)[:NUM_RULES]


def test_insert_throughput(benchmark, rules, save_result):
    outcomes = {}

    def run():
        dyn = DynamicSaxPac(classbench_schema(), fp_budget=2)
        outcomes.clear()
        for rule in rules:
            report = dyn.insert(rule)
            outcomes[report.outcome] = outcomes.get(report.outcome, 0) + 1
        return dyn

    dyn = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Dynamic insertion of {len(rules)} acl rules:"]
    for outcome in InsertOutcome:
        lines.append(f"  {outcome.value:>16}: {outcomes.get(outcome, 0)}")
    lines.append(f"  groups: {dyn.num_groups}  D size: {dyn.d_size}")
    save_result("updates_insert", "\n".join(lines))
    software = sum(
        outcomes.get(o, 0)
        for o in (InsertOutcome.GROUP, InsertOutcome.NEW_GROUP,
                  InsertOutcome.SHADOW)
    )
    assert software / len(rules) >= 0.5


def test_managed_tcam_move_cost(benchmark, rules, save_result):
    """Physical move cost of ordered TCAM updates: program the D part of a
    classifier (expanded entries) in random priority order and count
    moves — the partial-order insight keeps most inserts move-free."""
    import random

    from repro.tcam.encoding import BinaryRangeEncoder, expand_rule
    from repro.tcam.updates import ManagedTcam

    schema = classbench_schema()
    encoder = BinaryRangeEncoder()
    flat = []
    for priority, rule in enumerate(rules[:250]):
        for entry in expand_rule(rule, schema, encoder):
            flat.append((entry, priority))
    rng = random.Random(13)
    rng.shuffle(flat)

    def run():
        tcam = ManagedTcam(width=schema.total_width,
                           capacity=len(flat) + 64)
        for entry, priority in flat:
            tcam.insert(entry, priority)
        return tcam

    tcam = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = tcam.stats
    save_result(
        "updates_tcam_moves",
        "\n".join(
            [
                f"Ordered TCAM churn: {stats.inserts} inserts "
                f"(random priority order)",
                f"  physical moves: {stats.moves} "
                f"({stats.moves_per_insert:.3f} per insert)",
                f"  recompactions: {stats.recompactions}",
            ]
        ),
    )
    assert tcam.check_invariant()
    assert stats.moves_per_insert < 2.0


def test_remove_throughput(benchmark, rules):
    def setup():
        dyn = DynamicSaxPac(classbench_schema(), fp_budget=2)
        ids = [dyn.insert(rule).rule_id for rule in rules]
        rng = random.Random(7)
        rng.shuffle(ids)
        return (dyn, ids), {}

    def run(dyn, ids):
        for rule_id in ids:
            dyn.remove(rule_id)

    benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
