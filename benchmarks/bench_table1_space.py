"""Table 1 — TCAM space: original vs Theorem 2 reduced, and the +2-range
extension vs Theorem 1 reduced, under binary and SRGE encodings.

Expected shape (paper): the order-independent subset holds 90-95%+ of the
rules; Theorem 2 cuts the original space by a small factor; extending with
two 16-bit range fields multiplies the regular encodings by orders of
magnitude while the Theorem 1 representation stays within a small multiple
of the original.
"""

from repro.bench.experiments import render_table1, run_table1


def test_table1_space(benchmark, suite, save_result):
    rows = benchmark.pedantic(run_table1, args=(suite,), rounds=1, iterations=1)
    save_result("table1_space", render_table1(rows))
    for row in rows:
        assert row.independent_rules / row.rules >= 0.5
        assert row.ext_red_binary_kb < row.ext_binary_kb
