"""Shared benchmark fixtures.

Benchmarks default to REPRO_BENCH_RULES (2000) rules per ClassBench-style
classifier; raise it for closer-to-paper scale.  Every rendered table is
printed and also written to ``results/<name>.txt`` so a benchmark run
leaves the full reproduction record on disk.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import bench_rules, cached_suite

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def suite():
    """The 17-classifier benchmark suite (module-cached)."""
    return cached_suite(rules=bench_rules())


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered table under results/ and echo it."""

    def _save(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return _save
