"""Figure 1 — average TCAM space as a function of the number of added
synthetic 16-bit range fields (0, 2, 4, 6), four series: regular and
Theorem 1 representations under binary and SRGE encodings, over the
ClassBench and cisco panels.

Expected shape (paper): regular encodings grow by a multiplicative factor
per added range field (exponential overall); the Theorem 1 scheme's growth
is "significantly deterred" because added fields never enter the
order-independent lookup.
"""

from repro.bench.experiments import render_figure1, run_figure1
from repro.bench.plotting import plot_figure1

FIELD_COUNTS = (0, 2, 4, 6)


def test_figure1_range_growth(benchmark, suite, save_result):
    points = benchmark.pedantic(
        run_figure1, args=(suite, FIELD_COUNTS), rounds=1, iterations=1
    )
    save_result(
        "figure1_range_growth",
        render_figure1(points) + "\n\n" + plot_figure1(points),
    )
    by_panel = {}
    for p in points:
        by_panel.setdefault(p.panel, []).append(p)
    for panel_points in by_panel.values():
        panel_points.sort(key=lambda p: p.extra_fields)
        for earlier, later in zip(panel_points, panel_points[1:]):
            # Regular space grows with every added range field pair...
            assert later.regular_binary_kb > earlier.regular_binary_kb
        # ...and the final-ratio gap demonstrates Theorem 1's deterrence.
        final = panel_points[-1]
        assert final.theorem1_binary_kb < final.regular_binary_kb
