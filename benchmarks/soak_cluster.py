"""Million-request chaos soak over the replicated serving tier.

Standalone script (not a pytest module) so CI can run it:

    python benchmarks/soak_cluster.py --quick

Stands up a 3-replica :class:`~repro.net.cluster.LocalCluster` with
per-replica chaos armed (``net.conn`` connection crashes + corrupt
response frames, ``shard.worker`` crashes inside each replica's thread
shards) and pushes ``--requests`` pipelined requests through a
:class:`~repro.net.cluster.ReplicaSet`.  Mid-stream, on a schedule tied
to progress, it:

* **kills** one replica hard (connections abort mid-request) at ~25%,
* **restarts** it on a fresh port and rejoins it at ~50%,
* runs a **rolling swap** (decision-identical inserts, so the oracle
  stays fixed) *under load* at ~60%.

Every answer is compared against the linear-scan oracle computed once
over the packet pool (:func:`~repro.net.cluster.fold_catch_all`
normalizes the catch-all index across the swap).  The soak fails unless:

* **zero** requests mismatch the oracle,
* every replica converges to the final engine generation,
* the latency probes' p99 stays bounded — the gate is the
  **p99/p50 ratio** against the checked-in ``SOAK_cluster.json``, so
  runner speed cancels out and only tail *shape* regressions fail it.

A dedicated prober thread samples a window=1 request through its own
:class:`~repro.net.cluster.ReplicaSet` every few milliseconds for the
whole load phase — including the kill, restart and swap windows — so
the percentiles come from thousands of uniformly spread samples rather
than a handful of checkpoints, and the probe *maximum* (recorded, not
gated) captures the worst single failover any request experienced.

Chaos injection is asserted to have actually fired (a soak that never
hurt anything proves nothing); it is disarmed before the convergence
check so post-load control-plane probes measure the cluster, not the
fault plan.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Dict, List, Optional

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _SRC = os.path.join(os.path.dirname(__file__), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import numpy as np

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultPlan, FaultSpec
from repro.net import NetConfig
from repro.net.cluster import (
    LocalCluster,
    decision_identical_updates,
    fold_catch_all,
)
from repro.runtime.batch import linear_match_indices
from repro.runtime.service import RuntimeConfig, RuntimeService
from repro.workloads.generator import STYLES, generate_classifier
from repro.workloads.traces import generate_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="SAX-PAC replicated-serving chaos soak"
    )
    parser.add_argument("--style", choices=sorted(STYLES), default="acl")
    parser.add_argument("--rules", type=int, default=500)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--requests", type=int, default=1_000_000,
                        help="wire requests pushed through the set")
    parser.add_argument("--request-size", type=int, default=4,
                        help="packets per request")
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--shards", type=int, default=2,
                        help="thread shards per replica (the shard.worker "
                             "chaos site lives inside them)")
    parser.add_argument("--pool", type=int, default=50_000,
                        help="distinct packets in the cycled pool (the "
                             "linear oracle is computed once over these)")
    parser.add_argument("--window", type=int, default=16,
                        help="pipelining depth per replica connection")
    parser.add_argument("--chunk", type=int, default=64,
                        help="requests per wire call inside the router")
    parser.add_argument("--slice", type=int, default=4000,
                        help="requests per match_many round through the set")
    parser.add_argument("--policy", default="rendezvous",
                        choices=["rendezvous", "least_inflight"])
    parser.add_argument("--updates", type=int, default=4,
                        help="decision-identical inserts per rolling swap")
    parser.add_argument("--probe-interval-ms", type=float, default=5.0,
                        help="delay between window=1 latency probes (a "
                             "dedicated thread probes for the whole run)")
    parser.add_argument("--no-chaos", action="store_true",
                        help="run the soak without fault injection")
    parser.add_argument("--kill-at", type=float, default=0.25,
                        help="progress fraction at which a replica dies")
    parser.add_argument("--restart-at", type=float, default=0.50,
                        help="progress fraction at which it restarts")
    parser.add_argument("--swap-at", type=float, default=0.60,
                        help="progress fraction at which the rolling swap "
                             "starts (under load)")
    parser.add_argument("--quick", action="store_true",
                        help="100k-request PR-lane configuration")
    parser.add_argument("--baseline", default=None,
                        help="SOAK_cluster.json to gate the probe p99/p50 "
                             "ratio against")
    parser.add_argument("--regression", type=float, default=1.0,
                        help="allowed relative growth of the p99/p50 ratio "
                             "over the baseline")
    parser.add_argument("--artifacts-dir", default=None,
                        help="write per-replica telemetry snapshots here")
    parser.add_argument("--out", default="SOAK_cluster.json")
    return parser


def chaos_plan(seed: int) -> FaultPlan:
    """Per-replica fault plan: rare but steady connection teardowns,
    corrupt response frames, and shard-worker crashes.  All three are
    *recoverable* by design — the client resends through its retry
    budget, the shard ladder falls back to the linear path — so the soak
    asserts zero wrong answers *while* faults keep firing."""
    return FaultPlan(
        specs=(
            FaultSpec(site="net.conn", kind="crash", probability=3e-4,
                      message="soak connection teardown"),
            FaultSpec(site="net.conn", kind="corrupt", probability=1e-4),
            FaultSpec(site="shard.worker", kind="crash", probability=3e-4,
                      message="soak shard crash"),
        ),
        seed=seed,
    )


def percentile(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


class Prober(threading.Thread):
    """Samples one window=1 request through its own replica set every
    ``interval_s`` until stopped, verifying each answer against the
    oracle.  Runs through every disruption window, so the recorded
    distribution is the latency a light concurrent tenant actually saw
    while replicas died, rejoined, and swapped."""

    def __init__(self, replica_set, blocks, expected, n_body, interval_s):
        super().__init__(name="soak-prober", daemon=True)
        self.replica_set = replica_set
        self.blocks = blocks
        self.expected = expected
        self.n_body = n_body
        self.interval_s = interval_s
        self.latencies: List[float] = []
        self.mismatches = 0
        self.errors: List[str] = []
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        i = 0
        n_pool = len(self.blocks)
        while not self._halt.is_set():
            key = (i * 131) % n_pool
            i += 1
            t0 = time.perf_counter()
            try:
                answer = self.replica_set.match_many(
                    [self.blocks[key]], window=1, keys=[key]
                )[0]
            except Exception as exc:  # ClusterError etc. — a probe that
                # cannot complete is a finding, not a crash of the soak.
                self.errors.append(f"{type(exc).__name__}: {exc}")
                if len(self.errors) >= 5:
                    return
                continue
            self.latencies.append(time.perf_counter() - t0)
            if not np.array_equal(
                fold_catch_all(answer, self.n_body), self.expected[key]
            ):
                self.mismatches += 1
            self._halt.wait(self.interval_s)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 100_000)
        args.pool = min(args.pool, 20_000)
    if args.requests < args.slice:
        args.slice = args.requests

    classifier = generate_classifier(args.style, args.rules, args.seed)
    n_body = len(classifier.body)

    # The packet pool and its oracle, computed exactly once.  Requests
    # cycle through the pool, so a million requests cost one linear scan
    # of `--pool` packets on the verification side.
    pool_packets = max(args.pool, args.request_size)
    trace = generate_trace(classifier, pool_packets, seed=args.seed + 1)
    pool_blocks = [
        np.asarray(trace[i : i + args.request_size], dtype=np.uint32)
        for i in range(
            0, pool_packets - args.request_size + 1, args.request_size
        )
    ]
    n_pool = len(pool_blocks)
    oracle = fold_catch_all(linear_match_indices(classifier, trace), n_body)
    expected = [
        oracle[i * args.request_size : (i + 1) * args.request_size]
        for i in range(n_pool)
    ]

    # Chaos per replica: injector_factory runs first in LocalCluster's
    # _start, so service_factory can pick the same injector up and the
    # shard.worker site fires inside the very shards serving traffic.
    # A restarted replica gets a fresh injector from the same plan.
    injectors: Dict[str, List[FaultInjector]] = {}

    def make_injector(name: str):
        if args.no_chaos:
            return None
        injector = FaultInjector(chaos_plan(args.seed + len(injectors)))
        injectors.setdefault(name, []).append(injector)
        return injector

    def make_service(name: str) -> RuntimeService:
        injector = injectors[name][-1] if name in injectors else None
        return RuntimeService(
            classifier,
            config=RuntimeConfig(num_shards=args.shards),
            injector=injector,
        )

    updates = decision_identical_updates(
        classifier, args.updates, seed=args.seed + 2
    )
    kill_name = "replica-1" if args.replicas > 1 else None
    kill_after = int(args.requests * args.kill_at)
    restart_after = int(args.requests * args.restart_at)
    swap_after = int(args.requests * args.swap_at)

    swap_report: Dict[str, object] = {}
    mismatch_requests = 0
    first_mismatch: Optional[Dict[str, object]] = None
    sent = 0
    killed = restarted = False

    cluster = LocalCluster(
        classifier,
        replicas=args.replicas,
        net_config=NetConfig(coalesce_wait_ms=0.2),
        service_factory=make_service,
        injector_factory=make_injector,
    )
    replica_set = cluster.replica_set(
        policy=args.policy,
        chunk=args.chunk,
        retries=6,
        timeout_s=60.0,
    )
    probe_set = cluster.replica_set(
        policy=args.policy,
        retries=6,
        timeout_s=60.0,
    )
    prober = Prober(
        probe_set,
        pool_blocks,
        expected,
        n_body,
        args.probe_interval_ms / 1e3,
    )

    def run_swap() -> None:
        swap_report.update(cluster.rolling_swap(updates, grace_s=10.0))

    swapper = threading.Thread(target=run_swap, name="soak-rolling-swap")
    try:
        start = time.perf_counter()
        prober.start()
        while sent < args.requests:
            if kill_name is not None and not killed and sent >= kill_after:
                killed = True
                # Mid-slice, so requests are genuinely in flight when the
                # connections abort.
                threading.Timer(0.05, cluster.kill, args=(kill_name,)).start()
            if killed and not restarted and sent >= restart_after:
                restarted = True
                port = cluster.restart(kill_name)
                replica_set.rejoin(kill_name, port=port)
                probe_set.rejoin(kill_name, port=port)
            if not swapper.is_alive() and not swap_report and (
                sent >= swap_after
            ):
                swapper.start()

            n = min(args.slice, args.requests - sent)
            keys = [(sent + j) % n_pool for j in range(n)]
            answers = replica_set.match_many(
                [pool_blocks[k] for k in keys],
                window=args.window,
                keys=keys,
            )
            got = fold_catch_all(np.concatenate(answers), n_body)
            want = np.concatenate([expected[k] for k in keys])
            bad_rows = np.flatnonzero(
                (got != want).reshape(n, args.request_size).any(axis=1)
            )
            if bad_rows.size:
                mismatch_requests += int(bad_rows.size)
                if first_mismatch is None:
                    row = int(bad_rows[0])
                    first_mismatch = {
                        "request": sent + row,
                        "pool_block": keys[row],
                        "got": got.reshape(n, -1)[row].tolist(),
                        "want": want.reshape(n, -1)[row].tolist(),
                    }
            sent += n
        if not swapper.is_alive() and not swap_report:
            swapper.start()  # tiny workloads: swap still must happen
        swapper.join()
        prober.stop()
        prober.join(timeout=120.0)
        seconds = time.perf_counter() - start

        # Disarm chaos before the control-plane phase: the convergence
        # probes should measure the cluster, not the fault plan.
        for stack in injectors.values():
            for injector in stack:
                injector.plan = FaultPlan((), injector.plan.seed)

        target = max(cluster.generations().values())
        generations = replica_set.wait_converged(target, timeout_s=60.0)
        replica_requests = {
            name: cluster.services[name].telemetry.counter("net.requests")
            for name in cluster.names
        }
        if args.artifacts_dir:
            os.makedirs(args.artifacts_dir, exist_ok=True)
            for name in cluster.names:
                snap = cluster.services[name].snapshot()
                path = os.path.join(
                    args.artifacts_dir, f"telemetry_{name}.json"
                )
                with open(path, "w") as fh:
                    json.dump(
                        {
                            "counters": snap.counters,
                            "latencies": snap.latencies,
                        },
                        fh,
                        indent=2,
                        default=str,
                    )
                    fh.write("\n")
    finally:
        prober.stop()
        drains = cluster.stop()
        replica_set.close()
        probe_set.close()

    chaos_injected: Dict[str, int] = {}
    for stack in injectors.values():
        for injector in stack:
            for (site, kind), count in injector.injected.items():
                key = f"{site}:{kind}"
                chaos_injected[key] = chaos_injected.get(key, 0) + count

    p50_ms = percentile(prober.latencies, 50) * 1e3
    p99_ms = percentile(prober.latencies, 99) * 1e3
    max_ms = max(prober.latencies) * 1e3
    ratio = p99_ms / p50_ms if p50_ms else float("inf")

    baseline_ratio = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline_ratio = json.load(fh)["probe"]["ratio_p99_p50"]

    checks = {
        "zero_mismatches": mismatch_requests == 0,
        "zero_probe_mismatches": prober.mismatches == 0,
        "probes_completed": not prober.errors,
        "converged": all(
            g == target for g in generations.values()
        ),
        "swap_generation_advanced": target > 1,
        "all_replicas_served": all(
            count > 0 for count in replica_requests.values()
        ),
        "failover_exercised": kill_name is None
        or replica_set.stats["cluster.replica_deaths"] >= 1,
        "chaos_fired": args.no_chaos or sum(chaos_injected.values()) > 0,
        "clean_drains": all(drains.values()),
        "p99_ratio_bounded": baseline_ratio is None
        or ratio <= baseline_ratio * (1.0 + args.regression),
    }
    passed = all(checks.values())

    result = {
        "benchmark": "cluster-soak",
        "config": {
            "style": args.style,
            "rules": n_body,
            "replicas": args.replicas,
            "shards": args.shards,
            "requests": args.requests,
            "request_size": args.request_size,
            "pool_packets": pool_packets,
            "window": args.window,
            "chunk": args.chunk,
            "policy": args.policy,
            "updates": args.updates,
            "chaos": not args.no_chaos,
            "seed": args.seed,
            "quick": args.quick,
        },
        "requests": sent,
        "packets": sent * args.request_size,
        "seconds": round(seconds, 3),
        "requests_per_second": round(sent / seconds, 1) if seconds else 0.0,
        "mismatch_requests": mismatch_requests,
        "first_mismatch": first_mismatch,
        "probe": {
            "count": len(prober.latencies),
            "mismatches": prober.mismatches,
            "errors": prober.errors,
            "p50_ms": round(p50_ms, 3),
            "p99_ms": round(p99_ms, 3),
            "max_ms": round(max_ms, 3),
            "ratio_p99_p50": round(ratio, 3),
            "baseline_ratio": baseline_ratio,
            "regression_allowed": args.regression,
        },
        "events": {
            "kill_after_request": kill_after if kill_name else None,
            "restart_after_request": restart_after if kill_name else None,
            "swap_after_request": swap_after,
            "swap": swap_report,
        },
        "target_generation": target,
        "generations": generations,
        "replica_requests": replica_requests,
        "cluster_stats": replica_set.stats,
        "chaos_injected": chaos_injected,
        "drains": drains,
        "checks": checks,
        "passed": passed,
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    print(
        f"soak: {sent:,} requests ({sent * args.request_size:,} packets) "
        f"over {args.replicas} replicas in {seconds:.1f}s "
        f"({sent / seconds:,.0f} req/s)"
    )
    print(
        f"  mismatches: {mismatch_requests} "
        f"(+{prober.mismatches} probe)  "
        f"{len(prober.latencies)} probes p50 {p50_ms:.2f}ms "
        f"p99 {p99_ms:.2f}ms max {max_ms:.0f}ms "
        f"(ratio {ratio:.2f}"
        + (
            f", baseline {baseline_ratio:.2f} +{args.regression:.0%}"
            if baseline_ratio is not None
            else ""
        )
        + ")"
    )
    print(
        f"  failover: deaths={replica_set.stats['cluster.replica_deaths']} "
        f"rejoins={replica_set.stats['cluster.rejoins']} "
        f"rerouted={replica_set.stats['cluster.rerouted']} "
        f"(shed={replica_set.stats['cluster.shed_reroutes']} "
        f"drain={replica_set.stats['cluster.drain_reroutes']} "
        f"internal={replica_set.stats['cluster.internal_reroutes']})"
    )
    print(f"  swap: {swap_report}  generations -> {generations} "
          f"(target {target})")
    if chaos_injected:
        fired = " ".join(
            f"{key} x{count}" for key, count in sorted(chaos_injected.items())
        )
        print(f"  chaos: {fired}")
    for name in sorted(drains):
        print(f"  {name} drain: {'clean' if drains[name] else 'dirty'}")
    for name, ok in sorted(checks.items()):
        if not ok:
            print(f"  CHECK FAILED: {name}")
    print(f"wrote {args.out}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
