"""Observability overhead: is the NULL_RECORDER path really free?

Standalone script (not a pytest-benchmark module) so CI can gate on it:

    python benchmarks/bench_obs_overhead.py --quick \
        --baseline BENCH_runtime.json

Replays the same batched workload as ``bench_runtime.py`` through three
recorder configurations:

* **disabled** — the default ``NULL_RECORDER`` (what production uses when
  observability is off); this is the path that must stay zero-cost;
* **telemetry** — counters + latency histograms only;
* **obs** — full stack: counters, histograms, span tracing and heat
  profiling (the ``--obs`` CLI configuration).

The gate: the disabled path's throughput must be within ``--tolerance``
(default 5%) of the ``batched`` number in a baseline
``BENCH_runtime.json`` measured on the same machine with the same seed —
i.e. wiring observability hooks into the engines must not tax users who
never turn them on.  Exit status is non-zero when the gate fails.

Each configuration is measured ``--repeats`` times and the best run is
kept (throughput noise is one-sided: interference only ever slows you
down).  The full-obs run also exports its Chrome trace and heat report
(``--trace-out`` / ``--heat-out``) so CI can archive them as artifacts.

A final pass drives the same workload through a traced loopback
:class:`~repro.net.NetServer` and records the **per-stage waterfall
breakdown** (decode / queue-wait / coalesce-wait / lookup / encode /
write) as *shares of total request time* — ratios, not absolute
seconds, so the numbers are comparable across machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _SRC = os.path.join(os.path.dirname(__file__), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.obs import Observability
from repro.runtime.batch import iter_batches
from repro.runtime.telemetry import Telemetry
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.generator import STYLES, generate_classifier
from repro.workloads.traces import generate_trace


def _replay(engine, trace: Sequence, batch_size: int) -> float:
    """One batched replay; returns packets/sec."""
    start = time.perf_counter()
    for batch in iter_batches(trace, batch_size):
        engine.match_batch(batch)
    seconds = time.perf_counter() - start
    return len(trace) / seconds if seconds else float("inf")


def _measure(engine, trace, batch_size: int, repeats: int) -> dict:
    rates = [_replay(engine, trace, batch_size) for _ in range(repeats)]
    return {
        "packets": len(trace),
        "repeats": repeats,
        "packets_per_second": round(max(rates), 1),
        "packets_per_second_all": [round(r, 1) for r in rates],
    }


def _overhead(base: float, rate: float) -> float:
    """Fractional throughput loss of ``rate`` relative to ``base``."""
    if base <= 0:
        return 0.0
    return max(0.0, 1.0 - rate / base)


def _wire_stage_breakdown(classifier, trace, request_size: int = 16,
                          window: int = 32) -> dict:
    """Drive a traced loopback NetServer and return each waterfall
    stage's share of total request time (ratio-based)."""
    from repro.net import NetClient, NetConfig, serve_background
    from repro.obs import Observability, Tracer
    from repro.runtime.service import RuntimeService

    obs = Observability.create(tracing=True, heat=False)
    service = RuntimeService(classifier, recorder=obs.recorder)
    handle = serve_background(service, NetConfig(coalesce_wait_ms=0.2))
    blocks = [
        trace[i : i + request_size]
        for i in range(0, len(trace) - request_size + 1, request_size)
    ]
    try:
        with NetClient(port=handle.port, retries=4, tracer=Tracer()) \
                as client:
            client.match_many(blocks, window=window)
        stats = handle.server.stages.stage_stats()
    finally:
        handle.stop()
    total = sum(entry["sum_s"] for entry in stats.values()) or 1.0
    return {
        "requests": len(blocks),
        "request_size": request_size,
        "window": window,
        "stages": {
            name: {
                "count": entry["count"],
                "share_of_total": round(entry["sum_s"] / total, 4),
                "mean_us": round(
                    entry["sum_s"] / entry["count"] * 1e6, 2
                )
                if entry["count"]
                else 0.0,
            }
            for name, entry in stats.items()
        },
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="SAX-PAC observability overhead benchmark"
    )
    parser.add_argument("--style", choices=sorted(STYLES), default="acl")
    parser.add_argument("--rules", type=int, default=10000)
    parser.add_argument("--trace", type=int, default=20000)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--repeats", type=int, default=3,
                        help="replays per configuration; best run kept")
    parser.add_argument("--seed", type=int, default=2014,
                        help="workload RNG seed (match the baseline's)")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration for CI")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="BENCH_runtime.json to gate the disabled "
                             "path against (its batched pkt/s)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="max fractional regression of the disabled "
                             "path vs the baseline (default 0.05)")
    parser.add_argument("--heat-sample", type=int, default=1)
    parser.add_argument("--trace-out", default="BENCH_obs_trace.json",
                        help="Chrome trace artifact from the full-obs run")
    parser.add_argument("--heat-out", default="BENCH_obs_heat.json",
                        help="heat report artifact from the full-obs run")
    parser.add_argument("--out", default="BENCH_obs_overhead.json")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.rules = min(args.rules, 600)
        args.trace = min(args.trace, 3000)
    classifier = generate_classifier(args.style, args.rules, args.seed)
    trace = generate_trace(classifier, args.trace, seed=args.seed + 1)

    # Build each engine fresh so recorder wiring happens at construction,
    # exactly as RuntimeService does it.
    disabled_engine = SaxPacEngine(classifier)
    telemetry_engine = SaxPacEngine(classifier, recorder=Telemetry())
    obs = Observability.create(
        tracing=True, heat=True, sample_period=args.heat_sample
    )
    obs_engine = SaxPacEngine(classifier, recorder=obs.recorder)

    # Warm every path once (JITs nothing, but faults pages / fills caches)
    # before timing.
    warm = trace[: min(len(trace), args.batch_size)]
    for engine in (disabled_engine, telemetry_engine, obs_engine):
        engine.match_batch(warm)

    disabled = _measure(disabled_engine, trace, args.batch_size,
                        args.repeats)
    telemetry = _measure(telemetry_engine, trace, args.batch_size,
                         args.repeats)
    full = _measure(obs_engine, trace, args.batch_size, args.repeats)

    obs.tracer.export_chrome(args.trace_out)
    obs.heat.to_json(args.heat_out)

    base_rate = disabled["packets_per_second"]
    result = {
        "benchmark": "obs-overhead",
        "config": {
            "style": args.style,
            "rules": len(classifier.body),
            "trace": len(trace),
            "batch_size": args.batch_size,
            "repeats": args.repeats,
            "seed": args.seed,
            "quick": args.quick,
            "tolerance": args.tolerance,
        },
        "disabled": disabled,
        "telemetry": dict(
            telemetry,
            overhead_vs_disabled=round(
                _overhead(base_rate, telemetry["packets_per_second"]), 4
            ),
        ),
        "obs": dict(
            full,
            overhead_vs_disabled=round(
                _overhead(base_rate, full["packets_per_second"]), 4
            ),
            spans=len(obs.tracer),
            spans_dropped=obs.tracer.dropped,
        ),
        "artifacts": {"trace": args.trace_out, "heat": args.heat_out},
        "wire_stages": _wire_stage_breakdown(classifier, trace),
    }

    failed = False
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        baseline_rate = baseline["batched"]["packets_per_second"]
        regression = _overhead(baseline_rate, base_rate)
        failed = regression > args.tolerance
        result["gate"] = {
            "baseline": args.baseline,
            "baseline_packets_per_second": baseline_rate,
            "disabled_packets_per_second": base_rate,
            "regression": round(regression, 4),
            "tolerance": args.tolerance,
            "passed": not failed,
        }

    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    print(f"rules={len(classifier.body)} trace={len(trace)} "
          f"batch={args.batch_size} best-of-{args.repeats}")
    print(f"  disabled : {base_rate:>12,.0f} pkt/s (NULL_RECORDER)")
    print(f"  telemetry: {telemetry['packets_per_second']:>12,.0f} pkt/s "
          f"({result['telemetry']['overhead_vs_disabled']:.1%} overhead)")
    print(f"  full obs : {full['packets_per_second']:>12,.0f} pkt/s "
          f"({result['obs']['overhead_vs_disabled']:.1%} overhead, "
          f"{len(obs.tracer)} spans, heat on)")
    stage_shares = result["wire_stages"]["stages"]
    breakdown = " ".join(
        f"{name}={entry['share_of_total']:.0%}"
        for name, entry in stage_shares.items()
        if entry["count"]
    )
    print(f"  wire     : stage shares {breakdown}")
    if args.baseline:
        gate = result["gate"]
        verdict = "OK" if gate["passed"] else "FAIL"
        print(f"  gate     : disabled vs baseline "
              f"{gate['baseline_packets_per_second']:,.0f} pkt/s -> "
              f"{gate['regression']:.1%} regression "
              f"(tolerance {args.tolerance:.0%}) [{verdict}]")
    print(f"wrote {args.out} (+ {args.trace_out}, {args.heat_out})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
