"""Table 2 — MinDNF heuristics (resolution + subsumption) applied to the
order-independent subsets, vs the FSM width.

Expected shape (paper): prefix expansion multiplies the rule count; MinDNF
barely reduces the rule count and leaves the lookup width essentially
unchanged (~88-112 of 120 bits), while FSM's false-positive-check trick
reduces width much further.
"""

from repro.bench.experiments import render_table2, run_table2


def test_table2_mindnf(benchmark, suite, save_result):
    rows = benchmark.pedantic(run_table2, args=(suite,), rounds=1, iterations=1)
    save_result("table2_mindnf", render_table2(rows))
    for row in rows:
        assert row.mindnf_binary_terms <= row.binary_terms
        assert row.fsm_width <= row.mindnf_binary_red_width
