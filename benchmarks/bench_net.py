"""Wire-serving benchmark: requests/s and latency over loopback TCP.

Standalone script (not a pytest-benchmark module) so CI can smoke it:

    python benchmarks/bench_net.py --quick

Stands a :class:`~repro.net.server.NetServer` up on a background thread,
drives it over real loopback sockets with a
:class:`~repro.net.client.NetClient`, and sweeps the request size
(packets per frame).  Each size is measured twice:

* a **latency** pass — strict request/response (window 1), recording
  per-request round trips for p50/p99;
* a **throughput** pass — pipelined (``--window``), which is what lets
  the server's micro-batcher coalesce frames; the coalescing ratio
  (requests per vectorized lookup, from the server's own ``net.*``
  telemetry) is part of the output.

A trace sample is verified against the linear-scan reference before any
timing, and the results land in ``BENCH_net.json``.

``--obs-gate`` switches to the observability-overhead comparison CI
gates on: the same pipelined workload is measured with the full request
observability stack off (no tracer, stage waterfall and flight recorder
disabled) and on (traced client + traced server + waterfall + flight
recorder), best-of-``--obs-repeats`` each, and the run fails when the
traced configuration loses more than ``--obs-threshold-pct`` of the
untraced requests/s.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _SRC = os.path.join(os.path.dirname(__file__), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import numpy as np

from repro.net import NetClient, NetConfig, serve_background
from repro.runtime.batch import linear_match_batch
from repro.runtime.service import RuntimeService
from repro.workloads.generator import STYLES, generate_classifier
from repro.workloads.traces import generate_trace


def _blocks(trace, size: int) -> List[np.ndarray]:
    return [
        np.asarray(trace[i : i + size], dtype=np.uint32)
        for i in range(0, len(trace) - size + 1, size)
    ]


def _percentile(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def _verify_sample(client: NetClient, classifier, trace, sample: int) -> int:
    sub = list(trace[:sample])
    got = client.match_batch(sub)
    want = np.array(
        [r.index for r in linear_match_batch(classifier, sub)],
        dtype=got.dtype,
    )
    bad = int((got != want).sum())
    if bad:
        raise AssertionError(
            f"wire answers diverge from the linear reference on "
            f"{bad}/{len(sub)} sampled packets"
        )
    return len(sub)


def _measure_size(client, telemetry, trace, size, window, latency_requests):
    blocks = _blocks(trace, size)

    # Latency pass: strict request/response round trips.
    lat_blocks = blocks[:latency_requests]
    latencies = []
    for block in lat_blocks:
        start = time.perf_counter()
        client.match_batch(block)
        latencies.append(time.perf_counter() - start)

    # Throughput pass: pipelined, which is what feeds the coalescer.
    before_requests = telemetry.counter("net.requests")
    before_lookups = telemetry.counter("net.lookups")
    start = time.perf_counter()
    client.match_many(blocks, window=window)
    seconds = time.perf_counter() - start
    requests = telemetry.counter("net.requests") - before_requests
    lookups = telemetry.counter("net.lookups") - before_lookups
    packets = sum(len(b) for b in blocks)

    return {
        "request_size": size,
        "window": window,
        "requests": requests,
        "packets": packets,
        "seconds": round(seconds, 6),
        "requests_per_second": round(requests / seconds, 1)
        if seconds
        else float("inf"),
        "packets_per_second": round(packets / seconds, 1)
        if seconds
        else float("inf"),
        "lookups": lookups,
        "requests_per_lookup": round(requests / lookups, 2)
        if lookups
        else float("inf"),
        "latency_requests": len(lat_blocks),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 4),
        "p99_ms": round(_percentile(latencies, 99) * 1e3, 4),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="SAX-PAC wire-serving benchmark (loopback TCP)"
    )
    parser.add_argument("--style", choices=sorted(STYLES), default="acl")
    parser.add_argument("--rules", type=int, default=2000)
    parser.add_argument("--trace", type=int, default=40000,
                        help="packets per request-size sweep point")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[1, 16, 128, 1024],
                        help="request sizes (packets per frame) to sweep")
    parser.add_argument("--window", type=int, default=32,
                        help="pipelining depth for the throughput pass")
    parser.add_argument("--latency-requests", type=int, default=400,
                        help="round trips sampled for p50/p99 per size")
    parser.add_argument("--coalesce-wait-ms", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration for CI")
    parser.add_argument("--out", default="BENCH_net.json")
    parser.add_argument("--obs-gate", action="store_true",
                        help="measure tracing+stages on vs off instead of "
                             "the size sweep; exit 1 past the threshold")
    parser.add_argument("--obs-threshold-pct", type=float, default=5.0,
                        help="max req/s regression of the traced "
                             "configuration (percent)")
    parser.add_argument("--obs-repeats", type=int, default=5,
                        help="interleaved passes per configuration; "
                             "best kept")
    parser.add_argument("--gate-size", type=int, default=256,
                        help="request size (packets per frame) for the "
                             "--obs-gate passes; per-request tracing "
                             "cost is fixed (~tens of us), so the gate "
                             "measures it against a throughput-sized "
                             "request")
    return parser


def _gate_pass(handle, trace, size, window, tracer):
    """One pipelined pass; returns (requests/s, server cpu s/request).

    Server CPU = whole-process CPU minus this (client) thread's CPU, so
    it covers the serving loop *and* its lookup executor threads while
    excluding the driving client — i.e. what the server side actually
    burns per request.
    """
    blocks = _blocks(trace, size)
    with NetClient(port=handle.port, retries=4, tracer=tracer) as client:
        proc0 = time.process_time()
        self0 = time.thread_time()
        start = time.perf_counter()
        client.match_many(blocks, window=window)
        seconds = time.perf_counter() - start
        server_cpu = (time.process_time() - proc0) - (
            time.thread_time() - self0
        )
    rps = len(blocks) / seconds if seconds else float("inf")
    return rps, server_cpu / len(blocks)


def run_obs_gate(args) -> int:
    """Tracing+stages on-vs-off comparison; the CI serve-overhead gate.

    Both servers stay up for the whole measurement and the passes
    alternate off/on/off/on: loopback throughput on a shared box drifts
    by tens of percent over seconds, so back-to-back blocks of one mode
    would measure the drift, not the instrumentation.  Interleaving puts
    both modes through the same weather and best-of-N keeps the cleanest
    pass of each (interference is one-sided — it only slows you down).

    The gate itself compares **server-side CPU seconds per request**
    (process CPU minus the client thread's CPU — the serving loop plus
    its lookup executors), not wall requests/s: wall throughput over
    loopback swings tens of percent with whatever else the runner is
    doing, while the server's CPU cost per request is what the
    observability stack actually adds and bounds the req/s a saturated
    server can sustain.  Wall req/s for both modes is still measured
    and reported in the JSON.
    """
    from repro.obs import Observability, Tracer

    classifier = generate_classifier(args.style, args.rules, args.seed)
    trace = generate_trace(classifier, args.trace, seed=args.seed + 1)

    obs = Observability.create(tracing=True, heat=False)
    handles = {
        "off": serve_background(
            RuntimeService(classifier),
            NetConfig(
                coalesce_wait_ms=args.coalesce_wait_ms,
                stage_waterfall=False,
                flight_recorder=False,
            ),
        ),
        "on": serve_background(
            RuntimeService(classifier, recorder=obs.recorder),
            NetConfig(coalesce_wait_ms=args.coalesce_wait_ms),
        ),
    }
    tracers = {"off": lambda: None, "on": Tracer}
    rates = {"off": [], "on": []}
    cpus = {"off": [], "on": []}
    try:
        warm = trace[: len(trace) // 4 or len(trace)]
        for mode in ("off", "on"):
            _gate_pass(  # warm both paths before timing
                handles[mode], warm, args.gate_size, args.window,
                tracers[mode](),
            )
        for _ in range(args.obs_repeats):
            for mode in ("off", "on"):
                rps, cpu = _gate_pass(
                    handles[mode], trace, args.gate_size,
                    args.window, tracers[mode](),
                )
                rates[mode].append(rps)
                cpus[mode].append(cpu)
    finally:
        for handle in handles.values():
            handle.stop()
    modes = {
        mode: {
            "requests_per_second": round(max(rates[mode]), 1),
            "requests_per_second_all": [round(r, 1) for r in rates[mode]],
            "server_cpu_us_per_request": round(min(cpus[mode]) * 1e6, 2),
            "server_cpu_us_per_request_all": [
                round(c * 1e6, 2) for c in cpus[mode]
            ],
        }
        for mode in ("off", "on")
    }

    off_cpu = modes["off"]["server_cpu_us_per_request"]
    on_cpu = modes["on"]["server_cpu_us_per_request"]
    regression = max(0.0, on_cpu / off_cpu - 1.0) if off_cpu else 0.0
    passed = regression * 100.0 <= args.obs_threshold_pct
    result = {
        "benchmark": "net-obs-gate",
        "config": {
            "style": args.style,
            "rules": len(classifier.body),
            "trace": len(trace),
            "request_size": args.gate_size,
            "window": args.window,
            "coalesce_wait_ms": args.coalesce_wait_ms,
            "repeats": args.obs_repeats,
            "seed": args.seed,
            "quick": args.quick,
        },
        "off": modes["off"],
        "on": modes["on"],
        "gate": {
            "metric": "server_cpu_us_per_request",
            "regression_pct": round(regression * 100.0, 2),
            "threshold_pct": args.obs_threshold_pct,
            "passed": passed,
        },
    }
    with open(args.out, "w") as handle_out:
        json.dump(result, handle_out, indent=2)
        handle_out.write("\n")

    print(f"obs gate: size={args.gate_size} window={args.window} "
          f"best-of-{args.obs_repeats}")
    print(f"  tracing off: {off_cpu:>8.1f} us cpu/req  "
          f"({modes['off']['requests_per_second']:>8,.0f} req/s wall)")
    print(f"  tracing on : {on_cpu:>8.1f} us cpu/req  "
          f"({modes['on']['requests_per_second']:>8,.0f} req/s wall)")
    print(f"  serve overhead {regression:.1%} (threshold "
          f"{args.obs_threshold_pct:.0f}%) "
          f"[{'OK' if passed else 'FAIL'}]")
    print(f"wrote {args.out}")
    return 0 if passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.rules = min(args.rules, 400)
        args.trace = min(args.trace, 6000)
        args.latency_requests = min(args.latency_requests, 100)
        args.sizes = [s for s in args.sizes if s <= 256] or [16]
    if args.obs_gate:
        return run_obs_gate(args)

    classifier = generate_classifier(args.style, args.rules, args.seed)
    service = RuntimeService(classifier)
    handle = serve_background(
        service,
        NetConfig(coalesce_wait_ms=args.coalesce_wait_ms),
    )
    trace = generate_trace(classifier, args.trace, seed=args.seed + 1)
    sweep = []
    try:
        with NetClient(port=handle.port, retries=4) as client:
            rtt_ms = client.ping() * 1e3
            checked = _verify_sample(
                client, classifier, trace, min(500, len(trace))
            )
            for size in args.sizes:
                sweep.append(
                    _measure_size(
                        client,
                        service.telemetry,
                        trace,
                        size,
                        args.window,
                        args.latency_requests,
                    )
                )
    finally:
        clean = handle.stop()

    result = {
        "benchmark": "net-serving",
        "config": {
            "style": args.style,
            "rules": len(classifier.body),
            "trace": len(trace),
            "sizes": args.sizes,
            "window": args.window,
            "coalesce_wait_ms": args.coalesce_wait_ms,
            "seed": args.seed,
            "quick": args.quick,
        },
        "ping_rtt_ms": round(rtt_ms, 4),
        "equivalence_checked_packets": checked,
        "clean_drain": clean,
        "sweep": sweep,
    }
    with open(args.out, "w") as handle_out:
        json.dump(result, handle_out, indent=2)
        handle_out.write("\n")

    print(f"rules={len(classifier.body)} trace={len(trace)} "
          f"ping={rtt_ms:.2f}ms (equivalence checked on {checked}, "
          f"drain {'clean' if clean else 'dirty'})")
    for row in sweep:
        print(f"  size {row['request_size']:>5}: "
              f"{row['requests_per_second']:>10,.0f} req/s  "
              f"{row['packets_per_second']:>12,.0f} pkt/s  "
              f"p50 {row['p50_ms']:.2f}ms  p99 {row['p99_ms']:.2f}ms  "
              f"{row['requests_per_lookup']:.1f} req/lookup")
    print(f"wrote {args.out}")
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
