"""Ablations of the design choices called out in DESIGN.md.

1. k-MRC greedy scan order: priority order vs most-specific-first.
2. SRGE vs binary expansion across field widths (entry-count ratio).
3. Two-field segment-tree probe vs linear group probe.
4. False-positive budget C vs software placement rate under a tight group
   budget.
"""

import random

import pytest

from repro.analysis.mgr import l_mgr
from repro.analysis.mrc import greedy_independent_set
from repro.bench.harness import bench_rules, cached_suite, format_table
from repro.core import Interval, classbench_schema
from repro.lookup.group_engine import LinearGroupIndex, build_group_index
from repro.saxpac.updates import DynamicSaxPac
from repro.tcam.encoding import binary_expand, srge_expand
from repro.workloads.traces import generate_trace


@pytest.fixture(scope="module")
def suite_small():
    return cached_suite(rules=min(bench_rules(), 1000))


def _specificity(rule):
    return sum(iv.size for iv in rule.intervals)


def test_ablation_mrc_scan_order(benchmark, suite_small, save_result):
    """Priority order is the deployment-faithful choice; does it cost
    independent-set size vs a most-specific-first scan?"""

    def run():
        rows = []
        for name, classifier in suite_small.items():
            by_priority = greedy_independent_set(classifier).size
            order = sorted(
                range(len(classifier.body)),
                key=lambda i: _specificity(classifier.rules[i]),
            )
            by_specificity = greedy_independent_set(
                classifier, order=order
            ).size
            rows.append([name, len(classifier.body), by_priority,
                         by_specificity])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_mrc_order",
        format_table(
            ["name", "rules", "k-MRC (priority)", "k-MRC (specific-first)"],
            rows,
            title="Ablation - greedy k-MRC scan order",
        ),
    )


def test_ablation_srge_vs_binary(benchmark, save_result):
    """Average entry counts per random range, by field width."""
    rng = random.Random(17)

    def run():
        rows = []
        for width in (8, 12, 16):
            max_value = (1 << width) - 1
            total_b = total_s = 0
            samples = 300
            for _ in range(samples):
                lo = rng.randint(0, max_value)
                hi = rng.randint(lo, max_value)
                iv = Interval(lo, hi)
                total_b += len(binary_expand(iv, width))
                total_s += len(srge_expand(iv, width))
            rows.append(
                [
                    width,
                    f"{total_b / samples:.2f}",
                    f"{total_s / samples:.2f}",
                    f"{total_b / total_s:.2f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_srge",
        format_table(
            ["width", "binary avg", "srge avg", "binary/srge"],
            rows,
            title="Ablation - range expansion entry counts",
        ),
    )


def test_ablation_cache_power(benchmark, suite_small, save_result):
    """Section 4.3's power argument, measured: the MRCC cache property
    lets an I-match skip the (all-rows-active) TCAM lookup entirely."""
    from repro.saxpac.engine import EngineConfig, SaxPacEngine

    classifier = suite_small["acl3"]
    trace = generate_trace(classifier, 3000, seed=37)

    def run():
        rows = []
        for enforce in (False, True):
            engine = SaxPacEngine(
                classifier, EngineConfig(enforce_cache=enforce)
            )
            for header in trace:
                engine.match(header)
            tcam = engine._tcam
            rows.append(
                [
                    "MRCC cache" if enforce else "always probe D",
                    tcam.lookups,
                    tcam.row_activations,
                    engine.d_lookups_skipped,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_cache_power",
        format_table(
            ["mode", "TCAM lookups", "row activations", "skipped"],
            rows,
            title=f"Ablation - MRCC power proxy ({len(trace)} packets, acl3)",
        ),
    )
    assert rows[1][1] <= rows[0][1]  # cache mode issues fewer TCAM lookups


def test_ablation_sweep_vs_matrix(benchmark, suite_small, save_result):
    """Output-sensitive sweep vs blockwise matrix order-independence
    check on the (mostly independent) benchmark classifiers."""
    import time

    from repro.analysis.order_independence import is_order_independent
    from repro.analysis.sweep import conflict_pairs

    def run():
        rows = []
        for name in ("acl1", "fw1", "cisco1"):
            classifier = suite_small[name]
            t0 = time.perf_counter()
            matrix_answer = is_order_independent(classifier)
            matrix_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            conflicts = conflict_pairs(classifier)
            sweep_s = time.perf_counter() - t0
            assert matrix_answer == (not conflicts)
            rows.append(
                [name, len(classifier.body), len(conflicts),
                 f"{matrix_s:.4f}", f"{sweep_s:.4f}"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_sweep",
        format_table(
            ["name", "rules", "conflicts", "matrix s", "sweep s"],
            rows,
            title="Ablation - conflict detection: matrix vs sweep",
        ),
    )


def test_ablation_negative_encoding(benchmark, save_result):
    """Signed (deny-entry) encoding [29] vs binary [36] vs SRGE [3]:
    average and worst-case rows per random 16-bit range."""
    from repro.tcam.negative import negative_range_encode
    from repro.tcam.encoding import srge_expand

    rng = random.Random(41)

    def run():
        rows = []
        for width in (8, 16):
            max_value = (1 << width) - 1
            stats = {"binary": [], "srge": [], "signed": []}
            for _ in range(300):
                lo = rng.randint(0, max_value)
                hi = rng.randint(lo, max_value)
                iv = Interval(lo, hi)
                stats["binary"].append(len(binary_expand(iv, width)))
                stats["srge"].append(len(srge_expand(iv, width)))
                stats["signed"].append(len(negative_range_encode(iv, width)))
            for name, counts in stats.items():
                rows.append(
                    [width, name, f"{sum(counts) / len(counts):.2f}",
                     max(counts)]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_negative",
        format_table(
            ["width", "encoding", "avg rows", "max rows"],
            rows,
            title="Ablation - range encodings incl. deny entries",
        ),
    )


def test_ablation_group_probe_structure(benchmark, suite_small, save_result):
    """Segment-tree two-field probe vs linear scan probe on the largest
    two-field group of acl1."""
    import time

    classifier = suite_small["acl1"]
    grouping = l_mgr(classifier, l=2)
    group = max(grouping.groups, key=lambda g: g.size)
    trace = generate_trace(classifier, 2000, seed=23)
    tree_index = build_group_index(classifier, group)
    linear_index = LinearGroupIndex(classifier, group)

    def probe_all(index):
        for header in trace:
            index.probe(header)

    def run():
        t0 = time.perf_counter()
        probe_all(tree_index)
        tree_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        probe_all(linear_index)
        linear_s = time.perf_counter() - t0
        return tree_s, linear_s

    tree_s, linear_s = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_probe_structure",
        format_table(
            ["structure", "group size", "probes", "seconds"],
            [
                ["segment-tree", group.size, len(trace), f"{tree_s:.4f}"],
                ["linear scan", group.size, len(trace), f"{linear_s:.4f}"],
            ],
            title="Ablation - two-field probe structure",
        ),
    )
    # Both structures must agree, whatever the timing.
    for header in trace[:300]:
        assert tree_index.probe(header) == linear_index.probe(header)


def test_ablation_cascading(benchmark, suite_small, save_result):
    """Fractional cascading vs plain segment-tree two-field probes on the
    largest two-field group of fw1."""
    import time

    from repro.lookup.cascading import CascadingTwoFieldIndex  # noqa: F401

    classifier = suite_small["fw1"]
    grouping = l_mgr(classifier, l=2)
    group = max(
        (g for g in grouping.groups if len(g.fields) == 2),
        key=lambda g: g.size,
        default=None,
    )
    if group is None:
        pytest.skip("no two-field group found")
    trace = generate_trace(classifier, 3000, seed=29)
    plain = build_group_index(classifier, group, cascading=False)
    cascaded = build_group_index(classifier, group, cascading=True)

    def run():
        t0 = time.perf_counter()
        for header in trace:
            plain.probe(header)
        plain_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for header in trace:
            cascaded.probe(header)
        cascaded_s = time.perf_counter() - t0
        return plain_s, cascaded_s

    plain_s, cascaded_s = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_cascading",
        format_table(
            ["structure", "group size", "probes", "seconds"],
            [
                ["segment-tree (log^2)", group.size, len(trace),
                 f"{plain_s:.4f}"],
                ["cascading (log)", group.size, len(trace),
                 f"{cascaded_s:.4f}"],
            ],
            title="Ablation - two-field probe: plain vs fractional cascading",
        ),
    )
    for header in trace[:500]:
        assert plain.probe(header) == cascaded.probe(header)


def test_ablation_fp_budget(benchmark, suite_small, save_result):
    """Effect of the line-rate budget C on software placement under a
    tight group budget (beta = 2, one lookup field per group — the regime
    where Example 10's shadow insertions actually trigger).  The effect is
    modest by design: the soundness condition for shadow attachment (the
    hosts must cover the new rule's projection) is conservative."""
    rules = list(suite_small["fw1"].body)[:400]

    def run():
        rows = []
        for budget in (0, 1, 2, 4):
            dyn = DynamicSaxPac(
                classbench_schema(),
                max_groups=2,
                max_group_fields=1,
                fp_budget=budget,
            )
            for rule in rules:
                dyn.insert(rule)
            rows.append(
                [budget, dyn.software_size, dyn.d_size,
                 f"{dyn.software_size / len(rules):.3f}"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_fp_budget",
        format_table(
            ["C", "software rules", "D rules", "software fraction"],
            rows,
            title="Ablation - false-positive budget C (beta=2, l=1, fw1)",
        ),
    )
    # More budget never decreases software placement.
    fractions = [int(r[1]) for r in rows]
    assert fractions == sorted(fractions)
