"""Compile-pipeline benchmark: full build stage breakdown + incremental
rebuild speedup.

Standalone script (not a pytest-benchmark module) so CI can smoke it:

    python benchmarks/bench_build.py --quick

Builds a :class:`~repro.saxpac.engine.SaxPacEngine` over a generated
classifier and reports:

* **full build** wall-clock with the per-stage breakdown (disjointness →
  grouping → lookup-structure construction → TCAM encoding) straight from
  ``EngineReport.build_stages``;
* the same classifier compiled through the **reference scans**
  (:func:`~repro.analysis.mgr.l_mgr_reference` + the rule-at-a-time
  greedy) so the vectorized-vs-reference ratio stays visible, with a
  structural-equality assertion between the two pipelines;
* an **incremental rebuild** of a ~1% rule change (half removals, half
  insertions) via :meth:`SaxPacEngine.rebuild`, path-equivalence-checked
  against a fresh build on sampled packets, with the rebuild-vs-full
  speedup (the headline number: >= 10x on the default config).

``--baseline BENCH_build.json`` gates regressions for CI: engine
structure (groups / software rules / TCAM entries) must be identical and
full-build time must not regress more than ``--regression`` (default
20%).  Structure is compared only when the baseline ran the same
(style, rules, seed) configuration.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _SRC = os.path.join(os.path.dirname(__file__), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import numpy as np

from repro.analysis.mgr import l_mgr_reference
from repro.analysis.mrc import _fields_or_all, _greedy_independent_scan
from repro.core.classifier import Classifier
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.generator import STYLES, generate_classifier


def _reference_compile(classifier: Classifier) -> dict:
    """Time the pre-vectorization pipeline (rule-at-a-time scans) on the
    analysis stages only — the part the columnar pipeline replaced."""
    lows, highs = classifier.bounds_arrays()
    chosen = _fields_or_all(classifier, None)
    start = time.perf_counter()
    independent = _greedy_independent_scan(
        lows[:, chosen], highs[:, chosen], range(lows.shape[0]), chosen
    )
    disjointness = time.perf_counter() - start
    start = time.perf_counter()
    grouping = l_mgr_reference(
        classifier,
        l=min(2, classifier.num_fields),
        rule_subset=independent.rule_indices,
    )
    return {
        "disjointness_seconds": round(disjointness, 4),
        "grouping_seconds": round(time.perf_counter() - start, 4),
        "num_groups": grouping.num_groups,
    }


def _mutate(classifier: Classifier, fraction: float, seed: int) -> Classifier:
    """A ~``fraction`` rule change: half removals, half fresh insertions
    at random priorities.  Surviving Rule objects are reused so the
    identity diff in :meth:`SaxPacEngine.rebuild` applies."""
    rng = random.Random(seed)
    body = list(classifier.body)
    changes = max(2, int(len(body) * fraction))
    removals = changes // 2
    insertions = changes - removals
    for index in sorted(rng.sample(range(len(body)), removals), reverse=True):
        del body[index]
    donor = generate_classifier("acl", max(64, insertions * 4), seed + 1)
    for rule in list(donor.body)[:insertions]:
        body.insert(rng.randint(0, len(body)), rule)
    return Classifier(classifier.schema, body)


def _check_equivalence(
    engine_a: SaxPacEngine, engine_b: SaxPacEngine, classifier, sample: int, seed: int
) -> int:
    """Path-equivalence of two engines (and the linear reference) on
    sampled headers; returns headers checked."""
    rng = np.random.default_rng(seed)
    headers = np.stack(
        [
            rng.integers(0, 1 << width, size=sample)
            for width in classifier.schema.widths
        ],
        axis=1,
    ).tolist()
    got = [m.index for m in engine_a.match_batch(headers)]
    want = [m.index for m in engine_b.match_batch(headers)]
    reference = [m.index for m in classifier.match_batch(headers)]
    if got != want or got != reference:
        bad = next(
            i for i in range(sample) if got[i] != want[i] or got[i] != reference[i]
        )
        raise AssertionError(
            f"rebuild mismatch on {headers[bad]}: incremental={got[bad]} "
            f"fresh={want[bad]} linear={reference[bad]}"
        )
    return sample


def _normalized_cost(payload: dict) -> Optional[float]:
    """Machine-independent build cost: vectorized full-build seconds over
    the same-run reference-scan seconds.  Runner speed cancels out of the
    ratio, so a checked-in baseline gates CI boxes of any speed."""
    reference = payload.get("reference_scan") or {}
    denominator = (
        reference.get("disjointness_seconds", 0.0)
        + reference.get("grouping_seconds", 0.0)
    )
    seconds = payload.get("full_build", {}).get("seconds")
    if not denominator or not seconds:
        return None
    return seconds / denominator


def _gate(result: dict, baseline_path: str, regression: float) -> List[str]:
    """Compare against a checked-in baseline; returns failure messages.

    Structure (groups / software rules / TCAM entries) must be identical
    when the baseline ran the same configuration.  Build time is gated on
    the :func:`_normalized_cost` ratio when both runs carry reference
    timings (robust to runner speed); otherwise on absolute seconds.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures: List[str] = []
    same_config = all(
        baseline.get("config", {}).get(key) == result["config"][key]
        for key in ("style", "rules", "seed")
    )
    if same_config:
        for key in ("num_groups", "software_rules", "tcam_entries"):
            want = baseline.get("engine", {}).get(key)
            got = result["engine"][key]
            if want is not None and got != want:
                failures.append(
                    f"engine structure changed: {key} {want} -> {got}"
                )
    if not same_config:
        return failures
    base_cost = _normalized_cost(baseline)
    got_cost = _normalized_cost(result)
    if base_cost is not None and got_cost is not None:
        if got_cost > base_cost * (1.0 + regression):
            failures.append(
                "full build regressed: normalized cost "
                f"{base_cost:.3f} -> {got_cost:.3f} "
                f"(> {regression:.0%} slower than reference-relative "
                "baseline)"
            )
    else:
        base_seconds = baseline.get("full_build", {}).get("seconds")
        got_seconds = result["full_build"]["seconds"]
        if base_seconds and got_seconds > base_seconds * (1.0 + regression):
            failures.append(
                f"full build regressed: {base_seconds:.3f}s -> "
                f"{got_seconds:.3f}s (> {regression:.0%} slower)"
            )
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="SAX-PAC compile-pipeline benchmark"
    )
    parser.add_argument("--style", choices=sorted(STYLES), default="acl")
    parser.add_argument("--rules", type=int, default=10000)
    parser.add_argument("--change-fraction", type=float, default=0.01,
                        help="rule churn for the incremental rebuild")
    parser.add_argument("--equivalence-sample", type=int, default=4000,
                        help="headers for the rebuild path-equivalence check")
    parser.add_argument("--seed", type=int, default=2014,
                        help="workload RNG seed (reproducible numbers)")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration for CI")
    parser.add_argument("--skip-reference", action="store_true",
                        help="skip timing the rule-at-a-time reference scans")
    parser.add_argument("--baseline", default=None,
                        help="gate against this BENCH_build.json")
    parser.add_argument("--regression", type=float, default=0.20,
                        help="max tolerated full-build slowdown vs baseline")
    parser.add_argument("--out", default="BENCH_build.json")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.rules = min(args.rules, 2000)
        args.equivalence_sample = min(args.equivalence_sample, 1000)
    classifier = generate_classifier(args.style, args.rules, args.seed)

    start = time.perf_counter()
    engine = SaxPacEngine(classifier)
    full_seconds = time.perf_counter() - start
    report = engine.report()

    reference = None
    if not args.skip_reference:
        reference = _reference_compile(classifier)
        if reference["num_groups"] != report.num_groups:
            raise AssertionError(
                "vectorized and reference pipelines disagree: "
                f"{report.num_groups} vs {reference['num_groups']} groups"
            )

    changed = _mutate(classifier, args.change_fraction, args.seed + 7)
    start = time.perf_counter()
    rebuilt = engine.rebuild(changed)
    rebuild_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fresh = SaxPacEngine(changed)
    fresh_seconds = time.perf_counter() - start
    checked = _check_equivalence(
        rebuilt, fresh, changed, args.equivalence_sample, args.seed + 9
    )
    rebuild_speedup = (
        fresh_seconds / rebuild_seconds if rebuild_seconds else float("inf")
    )

    result = {
        "benchmark": "compile-pipeline",
        "config": {
            "style": args.style,
            "rules": len(classifier.body),
            "change_fraction": args.change_fraction,
            "seed": args.seed,
            "quick": args.quick,
        },
        "engine": {
            "software_rules": report.software_rules,
            "tcam_rules": report.tcam_rules,
            "num_groups": report.num_groups,
            "tcam_entries": report.tcam_entries,
        },
        "full_build": {
            "seconds": round(full_seconds, 4),
            "stages": {
                name: round(seconds, 4) for name, seconds in report.build_stages
            },
        },
        "reference_scan": reference,
        "incremental_rebuild": {
            "seconds": round(rebuild_seconds, 4),
            "stages": {
                name: round(seconds, 4)
                for name, seconds in rebuilt.build_stages
            },
            "incremental": rebuilt.build_incremental,
            "fresh_build_seconds": round(fresh_seconds, 4),
            "speedup_vs_full": round(rebuild_speedup, 1),
            "equivalence_checked_packets": checked,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    print(f"rules={len(classifier.body)} style={args.style} seed={args.seed}")
    print(f"  full build : {full_seconds:8.3f}s  "
          + " ".join(f"{n}={s:.3f}s" for n, s in report.build_stages))
    if reference is not None:
        ref_total = (
            reference["disjointness_seconds"] + reference["grouping_seconds"]
        )
        print(f"  reference  : {ref_total:8.3f}s  (analysis stages only, "
              f"rule-at-a-time scans)")
    print(f"  rebuild    : {rebuild_seconds:8.3f}s  "
          f"({rebuild_speedup:.1f}x vs {fresh_seconds:.3f}s fresh, "
          f"{args.change_fraction:.1%} churn, equivalence checked on "
          f"{checked} headers)")
    print(f"wrote {args.out}")

    if args.baseline:
        failures = _gate(result, args.baseline, args.regression)
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"gate OK vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
