"""Classifier distribution and redundancy removal (extra experiments,
Section 9 related work).

* Distribution: priority inversions of a naive whole-classifier split vs
  the order-independence-aware split (always zero), per workload style.
* Redundancy: how many provably-dead rules the [20]-style cleanup finds in
  the generated workloads, and how it shifts the order-independent
  fraction.
"""

import pytest

from repro.analysis.mrc import greedy_independent_set
from repro.analysis.redundancy import remove_redundant
from repro.bench.harness import bench_rules, cached_suite, format_table
from repro.saxpac.distribution import PathDistribution, priority_inversions


@pytest.fixture(scope="module")
def suite_small():
    return cached_suite(rules=min(bench_rules(), 1000))


def test_distribution_inversions(benchmark, suite_small, save_result):
    def run():
        rows = []
        for name in ("acl1", "fw1", "ipc1", "cisco1"):
            classifier = suite_small[name]
            n = len(classifier.body)
            cap = n  # three switches, each able to hold the whole D part
            dist = PathDistribution(classifier, [cap, cap, cap])
            naive = [[], [], []]
            for pos, idx in enumerate(reversed(range(n))):
                naive[pos % 3].append(idx)
            rows.append(
                [
                    name,
                    n,
                    priority_inversions(classifier, naive),
                    priority_inversions(classifier, dist.assignments),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "distribution_inversions",
        format_table(
            ["name", "rules", "naive split inversions", "OI-aware split"],
            rows,
            title="Distribution - priority inversions across a 3-switch path",
        ),
    )
    for row in rows:
        assert row[3] == 0


def test_redundancy_removal(benchmark, suite_small, save_result):
    def run():
        rows = []
        for name in ("acl1", "fw1", "ipc1", "cisco1"):
            classifier = suite_small[name]
            cleaned, removed = remove_redundant(classifier)
            before = greedy_independent_set(classifier).size
            after = greedy_independent_set(cleaned).size
            rows.append(
                [
                    name,
                    len(classifier.body),
                    len(removed),
                    len(cleaned.body),
                    f"{before / len(classifier.body):.3f}",
                    f"{after / max(1, len(cleaned.body)):.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "redundancy_removal",
        format_table(
            ["name", "rules", "removed", "left", "OI frac before",
             "OI frac after"],
            rows,
            title="Redundancy removal - provably-dead rules per workload",
        ),
    )
