"""Forwarding tables: the Section 4.4 one-field case and the IPv6
conjecture (extra experiment).

The paper closes Section 4.4 with two claims about forwarding tables:
(1) the representation can drop below trie-entropy bounds by storing only
distinguishing bits of an order-independent prefix set; (2) IPv6 should do
even better because wider keys offer more order-independent rules on fewer
bits.  This bench measures both on generated v4/v6 tables: exact (EDF)
maximal order-independent fractions, bit-level FSM width of the
order-independent set, and the XBW-l size versus the bit-subset size.
"""


from repro.analysis.mrc import edf_single_field
from repro.bench.harness import format_table
from repro.boolean.width import virtual_field_fsm, words_from_classifier
from repro.workloads.forwarding import generate_forwarding_table

SIZES = (500, 1500)


def _analyze(version: int, size: int, seed: int):
    table = generate_forwarding_table(size, seed=seed, version=version)
    width = table.schema.total_width
    independent = edf_single_field(table, 0)
    indices = independent.rule_indices[:400]  # cap the quadratic step
    words = words_from_classifier(table, indices)
    fsm = virtual_field_fsm(words, width, 1)
    return {
        "version": f"IPv{version}",
        "rules": len(table.body),
        "oi": independent.size,
        "oi_frac": independent.size / len(table.body),
        "key_bits": width,
        "fsm_bits": fsm.reduced_width,
    }


def test_forwarding_v4_vs_v6(benchmark, save_result):
    def run():
        rows = []
        for version in (4, 6):
            for size in SIZES:
                rows.append(_analyze(version, size, seed=2014 + size))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "forwarding_v4_v6",
        format_table(
            ["family", "prefixes", "max OI (EDF)", "OI frac", "key bits",
             "distinguishing bits"],
            [
                [r["version"], r["rules"], r["oi"], f"{r['oi_frac']:.3f}",
                 r["key_bits"], r["fsm_bits"]]
                for r in rows
            ],
            title="Forwarding tables - order-independence and bit-level FSM",
        ),
    )
    v4 = [r for r in rows if r["version"] == "IPv4"]
    v6 = [r for r in rows if r["version"] == "IPv6"]
    for a, b in zip(v4, v6):
        # The Section 4.4 conjecture: IPv6 at least as order-independent,
        # using a tiny fraction of the 128-bit key.
        assert b["oi_frac"] >= a["oi_frac"] - 0.05
        assert b["fsm_bits"] < b["key_bits"] / 3


def test_forwarding_xbw_comparison(benchmark, save_result):
    """Bit-subset representation vs the XBW-l size model on the
    order-independent part of a v4 table (host routes only, where the
    trie model applies directly)."""
    from repro.boolean.trie_compression import (
        BinaryTrie,
        bit_subset_size_bits,
        distinguishing_bits,
        xbw_size_bits,
    )
    import random

    rng = random.Random(77)
    action_bits = 4  # 16 next-hops

    def run():
        rows = []
        for count in (64, 256):
            values = rng.sample(range(1 << 24), count)
            trie = BinaryTrie.from_values(values, 24)
            xbw = xbw_size_bits(trie, action_bits)
            bits = distinguishing_bits(values, 24, exact_limit=0)
            subset = bit_subset_size_bits(
                values, 24, action_bits, bits=bits
            )
            rows.append(
                [count, trie.num_nodes, xbw, len(bits), subset,
                 f"{xbw / subset:.1f}x"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "forwarding_xbw",
        format_table(
            ["routes", "trie nodes", "XBW-l bits", "distinct bits",
             "subset bits", "XBW/subset"],
            rows,
            title="Host routes - XBW-l vs order-independent bit subset",
        ),
    )
    for row in rows:
        assert row[4] < row[2]  # the bit-subset representation wins
