"""Serving-pipeline throughput: single-packet vs batched vs sharded.

Standalone script (not a pytest-benchmark module) so CI can smoke it:

    python benchmarks/bench_runtime.py --quick

Builds a generated classifier, replays a rule-targeted trace through the
three data paths of :mod:`repro.runtime`, verifies the batched results
against the linear-scan ground truth on a sample, and writes
``BENCH_runtime.json`` with packets/sec for each path plus the
batched-vs-single speedup (the headline number: per-packet cost must drop
at least 2x on a 10k-rule classifier).

The single-packet baseline is measured on a trace subsample and reported
as packets/sec — per-packet cost is what's compared, so the subsample
does not bias the ratio.  ``--seed`` controls classifier, trace and
sampling RNGs; identical seeds give identical workloads run-to-run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _SRC = os.path.join(os.path.dirname(__file__), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.runtime.batch import iter_batches
from repro.runtime.shard import ShardedRuntime
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.generator import STYLES, generate_classifier
from repro.workloads.traces import generate_trace


def _measure_single(engine, trace: Sequence) -> dict:
    match = engine.match
    start = time.perf_counter()
    for header in trace:
        match(header)
    seconds = time.perf_counter() - start
    return _rates(len(trace), seconds)


def _measure_batched(engine, trace: Sequence, batch_size: int) -> dict:
    start = time.perf_counter()
    for batch in iter_batches(trace, batch_size):
        engine.match_batch(batch)
    seconds = time.perf_counter() - start
    result = _rates(len(trace), seconds)
    result["batch_size"] = batch_size
    return result


def _measure_sharded(
    engine, trace: Sequence, batch_size: int, shards: int, mode: str
) -> dict:
    if mode == "process":
        runtime = ShardedRuntime(
            classifier=engine.classifier,
            config=engine.config,
            num_shards=shards,
            mode="process",
        )
    else:
        runtime = ShardedRuntime(engine=engine, num_shards=shards)
    with runtime:
        start = time.perf_counter()
        for batch in iter_batches(trace, batch_size):
            runtime.match_indices(batch)
        seconds = time.perf_counter() - start
    result = _rates(len(trace), seconds)
    result.update(batch_size=batch_size, shards=shards, mode=mode)
    return result


def _rates(packets: int, seconds: float) -> dict:
    return {
        "packets": packets,
        "seconds": round(seconds, 6),
        "packets_per_second": round(packets / seconds, 1)
        if seconds
        else float("inf"),
    }


def _verify_equivalence(engine, classifier, trace, sample: int) -> int:
    """Cross-check the batched path against the linear-scan reference on
    a trace sample; returns the number of headers checked."""
    sub = list(trace[:sample])
    batched = engine.match_batch(sub)
    expected = classifier.match_batch(sub)
    for header, got, want in zip(sub, batched, expected):
        if got.index != want.index:
            raise AssertionError(
                f"batched mismatch on {header}: got rule {got.index}, "
                f"expected {want.index}"
            )
    return len(sub)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="SAX-PAC runtime throughput benchmark"
    )
    parser.add_argument("--style", choices=sorted(STYLES), default="acl")
    parser.add_argument("--rules", type=int, default=10000)
    parser.add_argument("--trace", type=int, default=20000)
    parser.add_argument("--single-sample", type=int, default=2000,
                        help="packets for the (slow) single-packet "
                             "baseline; per-packet cost is extrapolated")
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--shard-mode", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--seed", type=int, default=2014,
                        help="workload RNG seed (reproducible numbers)")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration for CI")
    parser.add_argument("--out", default="BENCH_runtime.json")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.rules = min(args.rules, 600)
        args.trace = min(args.trace, 3000)
        args.single_sample = min(args.single_sample, 600)
        args.shards = min(args.shards, 2)
    classifier = generate_classifier(args.style, args.rules, args.seed)
    build_start = time.perf_counter()
    engine = SaxPacEngine(classifier)
    build_seconds = time.perf_counter() - build_start
    report = engine.report()
    trace = generate_trace(classifier, args.trace, seed=args.seed + 1)
    checked = _verify_equivalence(
        engine, classifier, trace, min(500, len(trace))
    )

    single = _measure_single(engine, trace[: args.single_sample])
    batched = _measure_batched(engine, trace, args.batch_size)
    sharded = _measure_sharded(
        engine, trace, args.batch_size, args.shards, args.shard_mode
    )
    speedup_batched = (
        batched["packets_per_second"] / single["packets_per_second"]
    )
    speedup_sharded = (
        sharded["packets_per_second"] / single["packets_per_second"]
    )
    result = {
        "benchmark": "runtime-throughput",
        "config": {
            "style": args.style,
            "rules": len(classifier.body),
            "trace": len(trace),
            "batch_size": args.batch_size,
            "shards": args.shards,
            "shard_mode": args.shard_mode,
            "seed": args.seed,
            "quick": args.quick,
        },
        "engine": {
            "software_rules": report.software_rules,
            "tcam_rules": report.tcam_rules,
            "num_groups": report.num_groups,
            "tcam_entries": report.tcam_entries,
            "build_seconds": round(build_seconds, 3),
        },
        "equivalence_checked_packets": checked,
        "single": single,
        "batched": batched,
        "sharded": sharded,
        "speedup_batched_vs_single": round(speedup_batched, 2),
        "speedup_sharded_vs_single": round(speedup_sharded, 2),
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"rules={len(classifier.body)} trace={len(trace)} "
          f"(equivalence checked on {checked})")
    print(f"  single : {single['packets_per_second']:>12,.0f} pkt/s "
          f"({single['packets']} pkts)")
    print(f"  batched: {batched['packets_per_second']:>12,.0f} pkt/s "
          f"({speedup_batched:.1f}x single)")
    print(f"  sharded: {sharded['packets_per_second']:>12,.0f} pkt/s "
          f"({speedup_sharded:.1f}x single, {args.shards} "
          f"{args.shard_mode} shards)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
