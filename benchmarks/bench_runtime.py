"""Serving-pipeline throughput: single vs batched vs the shard modes.

Standalone script (not a pytest-benchmark module) so CI can smoke it:

    python benchmarks/bench_runtime.py --quick

Builds a generated classifier, replays a rule-targeted trace through the
data paths of :mod:`repro.runtime` — single-packet, batched, and the
three shard modes (``thread`` / ``process`` / ``shm``) — verifies the
fast paths against the linear-scan ground truth on a sample, and writes
``BENCH_runtime.json`` with packets/sec for each path plus the headline
speedups.  The shm rows also sweep worker counts (1/2/4, capped by
``--shards``) into a scaling curve.

Batched and sharded rows are fed the *wire form* of the trace — one
contiguous uint32 ndarray, exactly what the net decoder hands the
service — so the numbers include no tuple-boxing overhead that real
serving would not pay.  The single-packet baseline keeps tuple headers
(that is its calling convention) and is measured on a subsample;
per-packet cost is what's compared, so the subsample does not bias the
ratio.

``--gate-shm-ratio R`` turns the run into a CI regression gate: it fails
(exit 1) unless shm throughput >= R x plain batched.  Scaling past
batched requires real parallelism, so the gate auto-skips on hosts with
fewer than 2 CPUs (recorded in the JSON as ``cpu_count``) — a 1-core
container cannot exceed the single-core compute bound no matter how good
the transport is.

``--seed`` controls classifier, trace and sampling RNGs; identical seeds
give identical workloads run-to-run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _SRC = os.path.join(os.path.dirname(__file__), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import numpy as np

from repro.runtime.batch import iter_batches
from repro.runtime.shard import ShardedRuntime
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.generator import STYLES, generate_classifier
from repro.workloads.traces import generate_trace


def _measure_single(engine, trace: Sequence) -> dict:
    match = engine.match
    start = time.perf_counter()
    for header in trace:
        match(header)
    seconds = time.perf_counter() - start
    return _rates(len(trace), seconds)


def _measure_batched(engine, block: np.ndarray, batch_size: int) -> dict:
    start = time.perf_counter()
    for batch in iter_batches(block, batch_size):
        engine.match_batch_indices(batch)
    seconds = time.perf_counter() - start
    result = _rates(len(block), seconds)
    result["batch_size"] = batch_size
    return result


def _make_sharded(engine, shards: int, mode: str) -> ShardedRuntime:
    if mode in ("process", "shm"):
        return ShardedRuntime(
            classifier=engine.classifier,
            config=engine.config,
            num_shards=shards,
            mode=mode,
        )
    return ShardedRuntime(engine=engine, num_shards=shards)


def _measure_sharded(
    engine, block: np.ndarray, batch_size: int, shards: int, mode: str
) -> dict:
    with _make_sharded(engine, shards, mode) as runtime:
        # One warm-up batch keeps pool spin-up out of the timing.
        runtime.match_indices(block[:batch_size])
        start = time.perf_counter()
        for batch in iter_batches(block, batch_size):
            runtime.match_indices(batch)
        seconds = time.perf_counter() - start
    result = _rates(len(block), seconds)
    result.update(batch_size=batch_size, shards=shards, mode=mode)
    return result


def _rates(packets: int, seconds: float) -> dict:
    return {
        "packets": packets,
        "seconds": round(seconds, 6),
        "packets_per_second": round(packets / seconds, 1)
        if seconds
        else float("inf"),
    }


def _verify_equivalence(engine, classifier, trace, sample: int) -> int:
    """Cross-check the batched path against the linear-scan reference on
    a trace sample; returns the number of headers checked."""
    sub = list(trace[:sample])
    batched = engine.match_batch(sub)
    expected = classifier.match_batch(sub)
    for header, got, want in zip(sub, batched, expected):
        if got.index != want.index:
            raise AssertionError(
                f"batched mismatch on {header}: got rule {got.index}, "
                f"expected {want.index}"
            )
    return len(sub)


def _verify_shm(engine, classifier, block: np.ndarray, sample: int) -> int:
    """Byte-identical check of the shm ring path: indices served through
    shared-memory workers must equal ``Classifier.match_batch``."""
    sub = block[:sample]
    expected = [r.index for r in classifier.match_batch(sub)]
    with _make_sharded(engine, 2, "shm") as runtime:
        got = list(runtime.match_indices(sub))
    if got != expected:
        bad = next(i for i, (g, w) in enumerate(zip(got, expected)) if g != w)
        raise AssertionError(
            f"shm mismatch on packet {bad}: got rule {got[bad]}, "
            f"expected {expected[bad]}"
        )
    return len(sub)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="SAX-PAC runtime throughput benchmark"
    )
    parser.add_argument("--style", choices=sorted(STYLES), default="acl")
    parser.add_argument("--rules", type=int, default=10000)
    parser.add_argument("--trace", type=int, default=20000)
    parser.add_argument("--single-sample", type=int, default=2000,
                        help="packets for the (slow) single-packet "
                             "baseline; per-packet cost is extrapolated")
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--shard-mode",
                        choices=("thread", "process", "shm"),
                        default="shm",
                        help="mode reported in the top-level 'sharded' "
                             "row (all three are measured)")
    parser.add_argument("--seed", type=int, default=2014,
                        help="workload RNG seed (reproducible numbers)")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration for CI")
    parser.add_argument("--gate-shm-ratio", type=float, default=None,
                        metavar="R",
                        help="fail unless shm >= R x batched throughput "
                             "(auto-skipped on hosts with < 2 CPUs)")
    parser.add_argument("--out", default="BENCH_runtime.json")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.rules = min(args.rules, 600)
        args.trace = min(args.trace, 3000)
        args.single_sample = min(args.single_sample, 600)
        args.shards = min(args.shards, 2)
    cpu_count = os.cpu_count() or 1
    classifier = generate_classifier(args.style, args.rules, args.seed)
    build_start = time.perf_counter()
    engine = SaxPacEngine(classifier)
    build_seconds = time.perf_counter() - build_start
    report = engine.report()
    trace = generate_trace(classifier, args.trace, seed=args.seed + 1)
    block = np.ascontiguousarray(np.asarray(trace, dtype=np.uint32))
    checked = _verify_equivalence(
        engine, classifier, trace, min(500, len(trace))
    )
    checked_shm = _verify_shm(
        engine, classifier, block, min(500, len(block))
    )

    single = _measure_single(engine, trace[: args.single_sample])
    batched = _measure_batched(engine, block, args.batch_size)
    modes = {
        mode: _measure_sharded(
            engine, block, args.batch_size, args.shards, mode
        )
        for mode in ("thread", "process", "shm")
    }
    scaling = [
        _measure_sharded(engine, block, args.batch_size, workers, "shm")
        for workers in (1, 2, 4)
        if workers <= args.shards
    ]
    sharded = modes[args.shard_mode]
    single_pps = single["packets_per_second"]
    batched_pps = batched["packets_per_second"]
    shm_pps = modes["shm"]["packets_per_second"]
    result = {
        "benchmark": "runtime-throughput",
        "config": {
            "style": args.style,
            "rules": len(classifier.body),
            "trace": len(trace),
            "batch_size": args.batch_size,
            "shards": args.shards,
            "shard_mode": args.shard_mode,
            "seed": args.seed,
            "quick": args.quick,
        },
        "cpu_count": cpu_count,
        "engine": {
            "software_rules": report.software_rules,
            "tcam_rules": report.tcam_rules,
            "num_groups": report.num_groups,
            "tcam_entries": report.tcam_entries,
            "build_seconds": round(build_seconds, 3),
        },
        "equivalence_checked_packets": checked,
        "shm_equivalence_checked_packets": checked_shm,
        "single": single,
        "batched": batched,
        "sharded": sharded,
        "sharded_modes": modes,
        "shm_scaling": scaling,
        "speedup_batched_vs_single": round(batched_pps / single_pps, 2),
        "speedup_sharded_vs_single": round(
            sharded["packets_per_second"] / single_pps, 2
        ),
        "speedup_shm_vs_batched": round(shm_pps / batched_pps, 2),
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"rules={len(classifier.body)} trace={len(trace)} "
          f"cpus={cpu_count} (equivalence checked on {checked}, "
          f"shm on {checked_shm})")
    print(f"  single : {single_pps:>12,.0f} pkt/s "
          f"({single['packets']} pkts)")
    print(f"  batched: {batched_pps:>12,.0f} pkt/s "
          f"({result['speedup_batched_vs_single']:.1f}x single)")
    for mode in ("thread", "process", "shm"):
        row = modes[mode]
        print(f"  {mode:<7}: {row['packets_per_second']:>12,.0f} pkt/s "
              f"({row['packets_per_second'] / single_pps:.1f}x single, "
              f"{args.shards} shards)")
    for row in scaling:
        print(f"  shm x{row['shards']}: "
              f"{row['packets_per_second']:>10,.0f} pkt/s")
    print(f"wrote {args.out}")
    if args.gate_shm_ratio is not None:
        ratio = shm_pps / batched_pps
        if cpu_count < 2:
            print(f"shm gate SKIPPED: {cpu_count} CPU(s) — parallel "
                  f"scaling is unmeasurable on this host "
                  f"(shm/batched = {ratio:.2f})")
        elif ratio < args.gate_shm_ratio:
            print(f"shm gate FAILED: shm/batched = {ratio:.2f} < "
                  f"{args.gate_shm_ratio:.2f}")
            return 1
        else:
            print(f"shm gate ok: shm/batched = {ratio:.2f} >= "
                  f"{args.gate_shm_ratio:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
