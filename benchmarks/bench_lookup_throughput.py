"""Lookup throughput of the classification engines (extra experiment).

The paper argues complexity, not absolute throughput; this bench measures
the *relative* shape on our substrate: the SAX-PAC software engine (few
group probes, each O(log N)) should scale far better than the naive linear
scan, and the hybrid engine should stay close to the pure software path
because the TCAM part D holds only a few percent of the rules (simulated
TCAM rows are scanned sequentially, so a small D matters).

Besides the pytest-benchmark micro-benchmarks, this module doubles as a
standalone **per-backend ablation** (the same pattern as
``bench_build.py``), so CI can smoke and gate it:

    python benchmarks/bench_lookup_throughput.py --quick

For every (style, rule-count) cell it builds the engine once per lookup
backend (``linear``, ``interval``, ``segment``, ``learned``, ``auto``),
replays the same trace through ``MultiGroupEngine.lookup_batch``,
asserts all backends return byte-identical decisions, and writes
``BENCH_lookup.json``: per-cell packets/sec, backend mix, memory items
and learned mispredict rates.  ``--baseline BENCH_lookup.json`` gates CI
on the *ratio* of each backend's throughput to the same-run linear
backend (runner speed cancels out of the ratio, like the
``BENCH_build.json`` normalized-cost gate).
"""

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

if __package__ in (None, ""):  # script invocation: put src/ on the path
    _SRC = os.path.join(os.path.dirname(__file__), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.bench.harness import bench_rules, cached_suite
from repro.core.packet import headers_array
from repro.saxpac.config import EngineConfig
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.generator import generate_classifier
from repro.workloads.traces import generate_trace

TRACE_LEN = 2000

#: Ablation order: linear first — it is every cell's ratio denominator.
ABLATION_BACKENDS = ("linear", "interval", "segment", "learned", "auto")


@pytest.fixture(scope="module")
def workload():
    suite = cached_suite(rules=min(bench_rules(), 2000))
    classifier = suite["acl1"]
    trace = generate_trace(classifier, TRACE_LEN, seed=31)
    return classifier, trace


def test_linear_scan_throughput(benchmark, workload):
    classifier, trace = workload

    def run():
        for header in trace:
            classifier.match(header)

    benchmark(run)


def test_saxpac_engine_throughput(benchmark, workload):
    classifier, trace = workload
    engine = SaxPacEngine(classifier)

    def run():
        for header in trace:
            engine.match(header)

    benchmark(run)
    # Sanity: the engine agrees with the reference on this trace.
    for header in trace[:200]:
        assert engine.match(header).index == classifier.match(header).index


def test_software_only_throughput(benchmark, workload):
    classifier, trace = workload
    engine = SaxPacEngine(classifier)

    def run():
        for header in trace:
            engine.software.lookup(header)

    benchmark(run)


def test_tuple_space_throughput(benchmark, workload):
    from repro.lookup.tuple_space import TupleSpaceClassifier

    classifier, trace = workload
    tss = TupleSpaceClassifier(classifier)

    def run():
        for header in trace:
            tss.match_index(header)

    benchmark(run)
    for header in trace[:200]:
        assert tss.match(header).index == classifier.match(header).index


def test_decision_tree_throughput(benchmark, workload):
    from repro.lookup.decision_tree import DecisionTreeClassifier

    classifier, trace = workload
    tree = DecisionTreeClassifier(classifier, binth=8)

    def run():
        for header in trace:
            tree.match_index(header)

    benchmark(run)
    for header in trace[:200]:
        assert tree.match(header).index == classifier.match(header).index


def test_memory_footprint(benchmark, workload, save_result):
    """Stored-item counts of each structure — the memory half of the
    space/time tradeoff the throughput numbers show one side of."""
    from repro.bench.harness import format_table
    from repro.lookup.decision_tree import DecisionTreeClassifier
    from repro.lookup.tuple_space import TupleSpaceClassifier

    classifier, _trace = workload
    n = len(classifier.body)

    def run():
        engine = SaxPacEngine(classifier)
        report = engine.report()
        tree = DecisionTreeClassifier(classifier, binth=8)
        tss = TupleSpaceClassifier(classifier)
        return [
            ["linear scan", n, "1.00x"],
            [
                "SAX-PAC (sw rules + TCAM entries)",
                report.software_rules + report.tcam_entries,
                f"{(report.software_rules + report.tcam_entries) / n:.2f}x",
            ],
            [
                "decision tree (stored rule refs)",
                tree.stats.stored_rules,
                f"{tree.stats.replication_factor(n):.2f}x",
            ],
            [
                "tuple space (hash entries)",
                tss.num_entries,
                f"{tss.num_entries / n:.2f}x",
            ],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "memory_footprint",
        format_table(
            ["structure", "stored items", "vs rules"],
            rows,
            title=f"Memory footprint on acl1 ({n} rules)",
        ),
    )


# ----------------------------------------------------------------------
# Standalone per-backend ablation (python benchmarks/bench_lookup_throughput.py)
# ----------------------------------------------------------------------
def _ablate_cell(
    style: str, rules: int, seed: int, trace_len: int, repeats: int
) -> Dict[str, object]:
    """One (style, rules) cell: every backend over the same trace, with
    a byte-identical decision check against the linear backend."""
    classifier = generate_classifier(style, rules, seed)
    trace = generate_trace(classifier, trace_len, seed=seed + 1)
    harr = headers_array(trace, classifier.schema)
    cell: Dict[str, object] = {
        "style": style,
        "rules": rules,
        "backends": {},
    }
    reference: Optional[np.ndarray] = None
    for backend in ABLATION_BACKENDS:
        engine = SaxPacEngine(
            classifier, EngineConfig(lookup_backend=backend)
        )
        software = engine.software
        out = software.lookup_batch(trace, harr)  # warmup + decisions
        if reference is None:
            reference = out
        elif not np.array_equal(out, reference):
            bad = int(np.nonzero(out != reference)[0][0])
            raise AssertionError(
                f"{style}/{rules}: backend {backend!r} diverges from "
                f"linear on header {trace[bad]}: "
                f"{int(out[bad])} != {int(reference[bad])}"
            )
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            software.lookup_batch(trace, harr)
            best = min(best, time.perf_counter() - start)
        mix: Dict[str, int] = {}
        for group in software.groups:
            mix[group.backend] = mix.get(group.backend, 0) + 1
        probes = mispredicts = 0
        for group in software.groups:
            stats = group.backend_stats()
            probes += int(stats.get("model_probes", 0))
            mispredicts += int(stats.get("mispredicts", 0))
        cell["backends"][backend] = {
            "seconds": round(best, 5),
            "packets_per_second": round(trace_len / best) if best else 0,
            "group_mix": mix,
            "memory_items": sum(
                g.memory_items() for g in software.groups
            ),
            "build_seconds": round(
                sum(g.build_seconds for g in software.groups), 5
            ),
            "mispredict_rate": (
                round(mispredicts / probes, 5) if probes else 0.0
            ),
        }
    return cell


def _cell_key(cell: Dict[str, object]) -> str:
    return f"{cell['style']}/{cell['rules']}"


def _ratios(cell: Dict[str, object]) -> Dict[str, float]:
    """Backend throughput relative to the same-run linear backend — the
    machine-independent number the CI gate compares."""
    backends = cell["backends"]
    base = backends.get("linear", {}).get("packets_per_second") or 0
    if not base:
        return {}
    return {
        name: stats["packets_per_second"] / base
        for name, stats in backends.items()
        if name != "linear"
    }


def _gate(
    result: Dict[str, object], baseline_path: str, regression: float
) -> List[str]:
    """Ratio-based regression gate: each backend's linear-relative
    throughput must not drop more than ``regression`` below the
    same-cell baseline ratio.  Cells are compared only when the baseline
    ran the same configuration."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures: List[str] = []
    same_config = all(
        baseline.get("config", {}).get(key) == result["config"][key]
        for key in ("styles", "sizes", "seed", "trace")
    )
    if not same_config:
        return failures
    base_cells = {
        _cell_key(cell): cell for cell in baseline.get("cells", [])
    }
    for cell in result["cells"]:
        base = base_cells.get(_cell_key(cell))
        if base is None:
            continue
        base_ratios = _ratios(base)
        for name, ratio in _ratios(cell).items():
            want = base_ratios.get(name)
            if want is None:
                continue
            if ratio < want * (1.0 - regression):
                failures.append(
                    f"{_cell_key(cell)}: backend {name} regressed: "
                    f"throughput ratio vs linear {want:.2f} -> "
                    f"{ratio:.2f} (> {regression:.0%} drop)"
                )
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="per-backend lookup throughput ablation"
    )
    parser.add_argument("--styles", nargs="*",
                        default=["acl", "fw", "ipc"])
    parser.add_argument("--sizes", type=int, nargs="*",
                        default=[2000, 10000],
                        help="classifier sizes (group-size sweep)")
    parser.add_argument("--trace", type=int, default=20000,
                        help="packets replayed per cell")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per backend (best-of)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke configuration for CI")
    parser.add_argument("--baseline", default=None,
                        help="gate against this BENCH_lookup.json")
    parser.add_argument("--regression", type=float, default=0.25,
                        help="max tolerated drop of a backend's "
                             "linear-relative throughput ratio")
    parser.add_argument("--out", default="BENCH_lookup.json")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.sizes = [min(s, 2000) for s in args.sizes][:1]
        args.trace = min(args.trace, 4000)
        args.repeats = min(args.repeats, 2)
    cells = [
        _ablate_cell(style, rules, args.seed, args.trace, args.repeats)
        for style in args.styles
        for rules in args.sizes
    ]
    learned_wins = [
        _cell_key(cell)
        for cell in cells
        if cell["backends"]["learned"]["packets_per_second"]
        > cell["backends"]["interval"]["packets_per_second"]
    ]
    result = {
        "benchmark": "lookup-backends",
        "config": {
            "styles": args.styles,
            "sizes": args.sizes,
            "trace": args.trace,
            "repeats": args.repeats,
            "seed": args.seed,
            "quick": args.quick,
        },
        "cells": cells,
        "summary": {
            "learned_beats_interval_cells": learned_wins,
        },
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    for cell in cells:
        print(f"{_cell_key(cell)}  (trace={args.trace}):")
        for name, stats in cell["backends"].items():
            mix = ",".join(
                f"{k}:{v}" for k, v in sorted(stats["group_mix"].items())
            )
            extra = (
                f" mispredict={stats['mispredict_rate']:.2%}"
                if stats["mispredict_rate"] else ""
            )
            print(f"  {name:<9} {stats['packets_per_second']:>12,} pkt/s"
                  f"  mem={stats['memory_items']:>8,}  [{mix}]{extra}")
    print(f"learned beats interval on: {learned_wins or 'no cell'}")
    print(f"wrote {args.out}")

    if args.baseline:
        failures = _gate(result, args.baseline, args.regression)
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"gate OK vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
