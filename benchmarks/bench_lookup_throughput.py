"""Lookup throughput of the classification engines (extra experiment).

The paper argues complexity, not absolute throughput; this bench measures
the *relative* shape on our substrate: the SAX-PAC software engine (few
group probes, each O(log N)) should scale far better than the naive linear
scan, and the hybrid engine should stay close to the pure software path
because the TCAM part D holds only a few percent of the rules (simulated
TCAM rows are scanned sequentially, so a small D matters).
"""

import pytest

from repro.bench.harness import bench_rules, cached_suite
from repro.saxpac.engine import SaxPacEngine
from repro.workloads.traces import generate_trace

TRACE_LEN = 2000


@pytest.fixture(scope="module")
def workload():
    suite = cached_suite(rules=min(bench_rules(), 2000))
    classifier = suite["acl1"]
    trace = generate_trace(classifier, TRACE_LEN, seed=31)
    return classifier, trace


def test_linear_scan_throughput(benchmark, workload):
    classifier, trace = workload

    def run():
        for header in trace:
            classifier.match(header)

    benchmark(run)


def test_saxpac_engine_throughput(benchmark, workload):
    classifier, trace = workload
    engine = SaxPacEngine(classifier)

    def run():
        for header in trace:
            engine.match(header)

    benchmark(run)
    # Sanity: the engine agrees with the reference on this trace.
    for header in trace[:200]:
        assert engine.match(header).index == classifier.match(header).index


def test_software_only_throughput(benchmark, workload):
    classifier, trace = workload
    engine = SaxPacEngine(classifier)

    def run():
        for header in trace:
            engine.software.lookup(header)

    benchmark(run)


def test_tuple_space_throughput(benchmark, workload):
    from repro.lookup.tuple_space import TupleSpaceClassifier

    classifier, trace = workload
    tss = TupleSpaceClassifier(classifier)

    def run():
        for header in trace:
            tss.match_index(header)

    benchmark(run)
    for header in trace[:200]:
        assert tss.match(header).index == classifier.match(header).index


def test_decision_tree_throughput(benchmark, workload):
    from repro.lookup.decision_tree import DecisionTreeClassifier

    classifier, trace = workload
    tree = DecisionTreeClassifier(classifier, binth=8)

    def run():
        for header in trace:
            tree.match_index(header)

    benchmark(run)
    for header in trace[:200]:
        assert tree.match(header).index == classifier.match(header).index


def test_memory_footprint(benchmark, workload, save_result):
    """Stored-item counts of each structure — the memory half of the
    space/time tradeoff the throughput numbers show one side of."""
    from repro.bench.harness import format_table
    from repro.lookup.decision_tree import DecisionTreeClassifier
    from repro.lookup.tuple_space import TupleSpaceClassifier

    classifier, _trace = workload
    n = len(classifier.body)

    def run():
        engine = SaxPacEngine(classifier)
        report = engine.report()
        tree = DecisionTreeClassifier(classifier, binth=8)
        tss = TupleSpaceClassifier(classifier)
        return [
            ["linear scan", n, "1.00x"],
            [
                "SAX-PAC (sw rules + TCAM entries)",
                report.software_rules + report.tcam_entries,
                f"{(report.software_rules + report.tcam_entries) / n:.2f}x",
            ],
            [
                "decision tree (stored rule refs)",
                tree.stats.stored_rules,
                f"{tree.stats.replication_factor(n):.2f}x",
            ],
            [
                "tuple space (hash entries)",
                tss.num_entries,
                f"{tss.num_entries / n:.2f}x",
            ],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "memory_footprint",
        format_table(
            ["structure", "stored items", "vs rules"],
            rows,
            title=f"Memory footprint on acl1 ({n} rules)",
        ),
    )
