"""Figure 6 — classifier width as a function of virtual-field width
(1, 2, 4, 8, 16, 32 bits), comparing the original width, MinDNF-style
reduction, and FSM over virtual fields.

Expected shape (paper): FSM width grows with coarser virtual fields and
sits far below both the original width and the (nearly flat, barely
reduced) MinDNF width; at bit-level resolution a few tens of bits suffice
for 120-bit classifiers.
"""

from repro.bench.experiments import render_figure6, run_figure6
from repro.bench.plotting import plot_figure6

FIELD_WIDTHS = (1, 2, 4, 8, 16, 32)


def test_figure6_resolution(benchmark, suite, save_result):
    points = benchmark.pedantic(
        run_figure6,
        args=(suite, FIELD_WIDTHS),
        kwargs={"rule_cap": 400},
        rounds=1,
        iterations=1,
    )
    save_result(
        "figure6_resolution",
        render_figure6(points) + "\n\n" + plot_figure6(points),
    )
    by_panel = {}
    for p in points:
        by_panel.setdefault(p.panel, []).append(p)
    for panel_points in by_panel.values():
        panel_points.sort(key=lambda p: p.virtual_field_width)
        widths = [p.fsm_width for p in panel_points]
        assert widths == sorted(widths)  # finer resolution never wider
        assert widths[0] < panel_points[0].original_width / 2
