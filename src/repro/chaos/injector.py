"""The fault-injection hook the runtime consults at named sites.

Two implementations share one duck-typed interface, mirroring the
``NULL_RECORDER`` pattern of :mod:`repro.runtime.telemetry`:

* :data:`NULL_INJECTOR` — the production default; ``enabled`` is False
  and every method is a no-op, so instrumented code pays one attribute
  load per site;
* :class:`FaultInjector` — armed with a :class:`~repro.chaos.plan
  .FaultPlan`, it sleeps or raises at matching sites and tallies every
  injection in :attr:`~FaultInjector.injected` so tests can assert on
  exactly what fired.

Sharing semantics: shard replicas are deep copies of a built engine, and
the injector must behave as one global fault budget across them, so
``FaultInjector`` deep-copies to *itself*.  Process workers cannot share
memory — ship them the plan (it pickles) and arm a worker-local injector.
"""

from __future__ import annotations

import copy
import random
import threading
import time
from typing import Dict, List, Optional, Tuple

from .plan import FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "NULL_INJECTOR",
    "NullInjector",
]


class InjectedFault(RuntimeError):
    """An exception raised on purpose by a chaos plan (kind ``error``)."""


class InjectedCrash(InjectedFault):
    """An injected worker/build crash (kind ``crash``)."""


class NullInjector:
    """No-op injector: the production default at every site."""

    enabled = False

    def fire(self, site: str, **ctx) -> None:
        """Do nothing."""

    def corrupted(self, site: str) -> bool:
        """Never corrupt."""
        return False


#: Shared no-op injector; the default for every chaos-aware component.
NULL_INJECTOR = NullInjector()


class FaultInjector:
    """Consults a :class:`FaultPlan` at each site visit and acts on it.

    :meth:`fire` handles the exception/sleep kinds (``crash``, ``error``,
    ``hang``, ``slow``); :meth:`corrupted` answers the data-corruption
    query for ``corrupt`` specs.  Both take the same first-match-wins
    decision over the plan's specs.
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._visits: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}
        self._rngs: Dict[int, random.Random] = {
            i: random.Random(plan.seed * 1_000_003 + i)
            for i in range(len(plan.specs))
        }
        #: ``(site, kind)`` -> number of injections so far.
        self.injected: Dict[Tuple[str, str], int] = {}
        #: Optional repro.obs Tracer; when set, each injection stamps a
        #: ``chaos.injected`` event onto the active span.  Never travels
        #: through __deepcopy__/__reduce__ (both rebuild from the plan).
        self.tracer = None

    # -- decision ------------------------------------------------------
    def _decide(
        self, site: str, exclude_corrupt: bool
    ) -> Optional[FaultSpec]:
        """Pick the spec (if any) that fires on this visit to ``site``."""
        with self._lock:
            visit = self._visits.get(site, 0)
            self._visits[site] = visit + 1
            for i, spec in enumerate(self.plan.specs):
                if spec.site != site:
                    continue
                if exclude_corrupt != (spec.kind != "corrupt"):
                    continue
                if visit < spec.after:
                    continue
                fired = self._fired.get(i, 0)
                if spec.times is not None and fired >= spec.times:
                    continue
                if spec.probability < 1.0:
                    if self._rngs[i].random() >= spec.probability:
                        continue
                self._fired[i] = fired + 1
                key = (site, spec.kind)
                self.injected[key] = self.injected.get(key, 0) + 1
                return spec
        return None

    # -- the hooks the runtime calls -----------------------------------
    def fire(self, site: str, **ctx) -> None:
        """Visit ``site``: sleep for slow/hang specs, raise for
        crash/error specs, return silently otherwise.  ``ctx`` is
        appended to the raised message for debuggability."""
        spec = self._decide(site, exclude_corrupt=True)
        if spec is None:
            return
        if self.tracer is not None:
            self.tracer.event("chaos.injected", site=site, kind=spec.kind)
        if spec.kind in ("hang", "slow"):
            time.sleep(spec.delay)
            return
        detail = spec.message or f"injected {spec.kind}"
        if ctx:
            tags = " ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
            detail = f"{detail} [{site} {tags}]"
        else:
            detail = f"{detail} [{site}]"
        if spec.kind == "crash":
            raise InjectedCrash(detail)
        raise InjectedFault(detail)

    def corrupted(self, site: str) -> bool:
        """True when a ``corrupt`` spec fires on this visit to
        ``site``."""
        spec = self._decide(site, exclude_corrupt=False)
        if spec is not None and self.tracer is not None:
            self.tracer.event("chaos.injected", site=site, kind=spec.kind)
        return spec is not None

    # -- test/observability helpers ------------------------------------
    def arm(self, spec: FaultSpec) -> None:
        """Append a spec to the live plan (stateful tests inject faults
        mid-run)."""
        with self._lock:
            specs = self.plan.specs + (spec,)
            self.plan = FaultPlan(specs, self.plan.seed)
            self._rngs[len(specs) - 1] = random.Random(
                self.plan.seed * 1_000_003 + len(specs) - 1
            )

    def total_injected(self) -> int:
        """Total number of injections across all sites."""
        with self._lock:
            return sum(self.injected.values())

    def summary(self) -> List[str]:
        """Human-readable ``site kind xN`` lines, sorted."""
        with self._lock:
            return [
                f"{site} {kind} x{count}"
                for (site, kind), count in sorted(self.injected.items())
            ]

    # -- copy/pickle ---------------------------------------------------
    # One injector == one global fault budget: replicas deep-copied from
    # an engine must keep consulting the same injector.
    def __deepcopy__(self, memo) -> "FaultInjector":
        return self

    # Process workers get a fresh injector armed from the same plan
    # (counters cannot be shared across the IPC boundary).
    def __reduce__(self):
        return (FaultInjector, (copy.deepcopy(self.plan),))
