"""repro.chaos — deterministic fault injection for the serving runtime.

The runtime's failure handling (deadlines, retries, worker respawn, the
health-state ladder, swap quarantine) is only trustworthy if it is
*exercised*; this package supplies the faults.  A :class:`FaultPlan`
declares what goes wrong where (worker crashes, hung lookups, failing
swap builds, corrupted reports), a :class:`FaultInjector` arms the plan,
and every chaos-aware component consults the injector through a hook
that defaults to :data:`NULL_INJECTOR` — a no-op whose cost on the hot
path is a single attribute load.

See ``examples/faultplan.json`` and ``python -m repro runtime --chaos``.
"""

from .injector import (
    NULL_INJECTOR,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    NullInjector,
)
from .plan import KINDS, SITES, FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "KINDS",
    "NULL_INJECTOR",
    "NullInjector",
    "SITES",
]
