"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries,
each naming an **injection site** (a dotted string the runtime consults
at a specific code location), a **fault kind**, and a firing schedule
(``after`` / ``times`` / ``probability``).  Plans are plain data: JSON in,
JSON out, no callables — so the same plan can drive an in-process test,
a ``multiprocessing`` shard worker (the plan pickles; each worker arms
its own injector from it), and the ``--chaos PLAN.json`` CLI flag.

Determinism: every spec draws from its own ``random.Random`` seeded from
``(plan.seed, spec position)``, and firing decisions depend only on the
per-site visit count — so a single-threaded replay of the same workload
injects exactly the same faults every run.  (Across thread workers the
*interleaving* of visits may vary; use ``probability=1.0`` with
``times``/``after`` schedules when exact determinism across threads is
required.)

Fault kinds
-----------

``crash``
    raise :class:`~repro.chaos.injector.InjectedCrash` — models a dying
    worker or a build machine falling over.
``error``
    raise :class:`~repro.chaos.injector.InjectedFault` — a generic
    exception at the site.
``hang``
    sleep ``delay_s`` (default 5s) — models a wedged worker; pair with a
    runtime deadline so the batch times out instead of blocking forever.
``slow``
    sleep ``delay_s`` (default 50ms) — models a degraded lookup that
    still completes.
``corrupt``
    no exception; the site's ``corrupted()`` query returns True — models
    bad data (e.g. a nonsensical engine report) that the caller must
    detect and reject.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "KINDS", "SITES"]

#: Recognised fault kinds (see module docstring).
KINDS = ("crash", "error", "hang", "slow", "corrupt")

#: The injection sites the runtime consults, for documentation and plan
#: validation.  Sites not listed here are accepted (tests name ad-hoc
#: sites), but the CLI warns about them.
SITES = (
    "shard.worker",    # inside a shard worker, before classifying a chunk
    "swap.build",      # inside HotSwapRuntime's rebuild, before building
    "engine.lookup",   # inside SaxPacEngine.match_batch, before lookup
    "engine.report",   # corrupt-only: SaxPacEngine.report() output
    "service.batch",   # RuntimeService.match_batch, before dispatch
    "net.conn",        # NetServer, per received frame: crash/error tear
                       # the connection down, slow stalls it, corrupt
                       # garbles the outgoing response frame
)

FaultKind = str


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where, what, and when.

    ``after`` skips the first N visits to the site; ``times`` caps how
    often this spec fires (None = unlimited); ``probability`` gates each
    eligible visit through a per-spec deterministic RNG.
    """

    site: str
    kind: FaultKind
    probability: float = 1.0
    times: Optional[int] = None
    after: int = 0
    delay_s: Optional[float] = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of {KINDS})"
            )
        if not self.site:
            raise ValueError("fault site must be a non-empty string")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be within [0, 1]")
        if self.times is not None and self.times < 0:
            raise ValueError("times must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay_s is not None and self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    @property
    def delay(self) -> float:
        """Sleep duration for hang/slow kinds (kind-specific default)."""
        if self.delay_s is not None:
            return self.delay_s
        return 5.0 if self.kind == "hang" else 0.05

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.times is not None:
            out["times"] = self.times
        if self.after:
            out["after"] = self.after
        if self.delay_s is not None:
            out["delay_s"] = self.delay_s
        if self.message:
            out["message"] = self.message
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        known = {
            "site", "kind", "probability", "times", "after", "delay_s",
            "message",
        }
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown FaultSpec keys: {sorted(extra)}")
        return cls(
            site=data["site"],
            kind=data["kind"],
            probability=float(data.get("probability", 1.0)),
            times=data.get("times"),
            after=int(data.get("after", 0)),
            delay_s=data.get("delay_s"),
            message=data.get("message", ""),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs plus the RNG seed.

    The first spec matching a site wins on each visit, so put more
    specific schedules first.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def sites(self) -> List[str]:
        """Distinct sites this plan can fire at, in spec order."""
        seen: List[str] = []
        for spec in self.specs:
            if spec.site not in seen:
                seen.append(spec.site)
        return seen

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        known = {"seed", "faults"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown FaultPlan keys: {sorted(extra)}")
        return cls(
            specs=tuple(
                FaultSpec.from_dict(item) for item in data.get("faults", ())
            ),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file (the ``--chaos`` CLI format)."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")
