"""Boolean view of classifiers: ternary words, DNF, MinDNF, width."""

from .dnf import (
    Dnf,
    dnf_from_classifier,
    minimize_terms,
    remove_subsumed,
    resolve_terms,
)
from .mindnf import mindnf_greedy, minterms_of, prime_implicants
from .ternary import TernaryWord, word_from_entry, word_from_pattern
from .trie_compression import (
    BinaryTrie,
    bit_subset_size_bits,
    distinguishing_bits,
    xbw_size_bits,
)
from .width import (
    VirtualFsmResult,
    enclosing_prefix_word,
    pure_width,
    same_value_reduced_width,
    virtual_field_fsm,
    words_from_classifier,
)

__all__ = [
    "BinaryTrie",
    "Dnf",
    "TernaryWord",
    "VirtualFsmResult",
    "bit_subset_size_bits",
    "distinguishing_bits",
    "xbw_size_bits",
    "dnf_from_classifier",
    "enclosing_prefix_word",
    "mindnf_greedy",
    "minimize_terms",
    "minterms_of",
    "prime_implicants",
    "pure_width",
    "remove_subsumed",
    "resolve_terms",
    "same_value_reduced_width",
    "virtual_field_fsm",
    "word_from_entry",
    "word_from_pattern",
    "words_from_classifier",
]
