"""Trie/XBW-style size accounting vs order-independent bit subsets.

Section 4.4 argues that exploiting order-independence can push a
classifier's *lookup* representation below the entropy-style bounds of
trie-compression schemes ([27], XBW-l): in the paper's example, four exact
8-bit rules need a 28-node binary trie whose XBW-l transform costs
``2 * nodes + leaves * action_bits`` bits, while two *distinguishing bit
positions* plus per-rule actions cost only ``rules * (bits + action_bits)``
— four times less.  (The extra memory for the false-positive check is
deliberately excluded on both sides, as in the paper.)

This module provides the binary trie, the XBW-l size model, and the
distinguishing-bit-subset search, so the comparison can be reproduced on
arbitrary rule sets.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Set, Tuple

__all__ = [
    "BinaryTrie",
    "xbw_size_bits",
    "distinguishing_bits",
    "bit_subset_size_bits",
]


class BinaryTrie:
    """An uncompressed binary trie over fixed-width exact values.

    Node count excludes the root (each stored value contributes one node
    per bit, shared across common prefixes), matching the paper's
    "4 * W without sharing" accounting.
    """

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._prefixes: Set[Tuple[int, int]] = set()  # (depth, prefix)
        self._values: Set[int] = set()

    @classmethod
    def from_values(cls, values: Sequence[int], width: int) -> "BinaryTrie":
        """Build a trie holding every value."""
        trie = cls(width)
        for value in values:
            trie.insert(value)
        return trie

    def insert(self, value: int) -> None:
        """Add one exact value (all its prefixes become nodes)."""
        if not 0 <= value < (1 << self.width):
            raise ValueError(f"value {value} does not fit in {self.width} bits")
        self._values.add(value)
        for depth in range(1, self.width + 1):
            self._prefixes.add((depth, value >> (self.width - depth)))

    @property
    def num_nodes(self) -> int:
        """Distinct prefix nodes (root excluded)."""
        return len(self._prefixes)

    @property
    def num_leaves(self) -> int:
        """Stored exact values."""
        return len(self._values)

    def contains(self, value: int) -> bool:
        """True if the exact value was inserted."""
        return value in self._values


def xbw_size_bits(trie: BinaryTrie, action_bits: int) -> int:
    """Size of the XBW-l transform (S_last, S_I, S_alpha) in bits [27]:
    two structure bits per node plus one action per leaf."""
    return 2 * trie.num_nodes + trie.num_leaves * action_bits


def distinguishing_bits(
    values: Sequence[int], width: int, exact_limit: int = 20
) -> Tuple[int, ...]:
    """A minimal (exact up to ``exact_limit`` candidate bits, else greedy)
    set of bit positions that tells all ``values`` apart.

    Positions are MSB-first indices (0 = most significant), matching the
    paper's "third and the seventh bits" phrasing.
    """
    distinct = sorted(set(values))
    if len(distinct) != len(values):
        raise ValueError("values must be distinct to be distinguishable")
    if len(distinct) <= 1:
        return ()
    pairs = list(itertools.combinations(distinct, 2))

    def separates(bit: int, a: int, b: int) -> bool:
        shift = width - 1 - bit
        return ((a >> shift) ^ (b >> shift)) & 1 == 1

    coverage = {
        bit: {i for i, (a, b) in enumerate(pairs) if separates(bit, a, b)}
        for bit in range(width)
    }
    useful = [bit for bit, covered in coverage.items() if covered]
    # Exact search for small instances, greedy cover otherwise.
    if len(useful) <= exact_limit:
        universe = set(range(len(pairs)))
        for size in range(1, len(useful) + 1):
            for combo in itertools.combinations(useful, size):
                covered: Set[int] = set()
                for bit in combo:
                    covered |= coverage[bit]
                if covered == universe:
                    return tuple(combo)
    chosen: List[int] = []
    uncovered = set(range(len(pairs)))
    while uncovered:
        best = max(useful, key=lambda bit: len(coverage[bit] & uncovered))
        gain = coverage[best] & uncovered
        if not gain:
            raise ValueError("values are not distinguishable bitwise")
        chosen.append(best)
        uncovered -= gain
    return tuple(sorted(chosen))


def bit_subset_size_bits(
    values: Sequence[int],
    width: int,
    action_bits: int,
    bits: Optional[Sequence[int]] = None,
) -> int:
    """Size of the order-independent subset-of-bits representation: each
    rule stores only its distinguishing bits plus its action."""
    chosen = tuple(bits) if bits is not None else distinguishing_bits(
        values, width
    )
    return len(values) * (len(chosen) + action_bits)
