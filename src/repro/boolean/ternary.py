"""Ternary words for the Boolean view of classifiers (Section 5).

When every field is a prefix, a rule concatenates into one ternary string
over {0, 1, *}; an order-independent rule set becomes a DNF formula (one
conjunction per rule).  This module provides the ternary word type and the
pairwise predicates the DNF minimization heuristics need.

Representation: ``value`` and ``care`` integers; bit ``width-1`` is the most
significant.  A position with ``care`` bit 0 is a ``*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..tcam.entry import TernaryEntry

__all__ = ["TernaryWord", "word_from_pattern", "word_from_entry"]


@dataclass(frozen=True)
class TernaryWord:
    """An immutable ternary string, normalized so un-cared value bits are
    zero (equal words compare equal)."""

    value: int
    care: int
    width: int

    def __post_init__(self) -> None:
        limit = 1 << self.width
        if not 0 <= self.care < limit:
            raise ValueError(f"care {self.care:#x} does not fit in {self.width} bits")
        if not 0 <= self.value < limit:
            raise ValueError(f"value {self.value:#x} does not fit in {self.width} bits")
        object.__setattr__(self, "value", self.value & self.care)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def matches(self, key: int) -> bool:
        """True if ``key`` agrees on every cared position."""
        return (key & self.care) == self.value

    def __iter__(self) -> Iterator[str]:
        return iter(self.pattern())

    @property
    def num_literals(self) -> int:
        """Number of cared positions — the size of the conjunction."""
        return bin(self.care).count("1")

    @property
    def num_matches(self) -> int:
        """Number of keys the word matches: 2^(#wildcards)."""
        return 1 << (self.width - self.num_literals)

    # ------------------------------------------------------------------
    # Pairwise predicates
    # ------------------------------------------------------------------
    def intersects(self, other: "TernaryWord") -> bool:
        """True if some key matches both words (agree on common cares)."""
        common = self.care & other.care
        return (self.value ^ other.value) & common == 0

    def covers(self, other: "TernaryWord") -> bool:
        """True if every key matched by ``other`` is matched by ``self``
        (subsumption: self's literals are a subset of other's)."""
        if self.care & ~other.care:
            return False
        return (self.value ^ other.value) & self.care == 0

    def resolvable_with(self, other: "TernaryWord") -> bool:
        """True if the two words have identical cares and differ in exactly
        one cared bit — the classical resolution precondition
        ``(x & A) | (~x & A) == A``."""
        if self.care != other.care:
            return False
        diff = self.value ^ other.value
        return diff != 0 and diff & (diff - 1) == 0

    def resolve(self, other: "TernaryWord") -> "TernaryWord":
        """Merge two resolvable words by dropping the differing bit."""
        if not self.resolvable_with(other):
            raise ValueError(f"{self} and {other} are not resolvable")
        diff = self.value ^ other.value
        care = self.care & ~diff
        return TernaryWord(self.value & care, care, self.width)

    # ------------------------------------------------------------------
    # Rendering / parsing
    # ------------------------------------------------------------------
    def pattern(self) -> str:
        """Render as a {0,1,*} string, MSB first."""
        chars: List[str] = []
        for bit in range(self.width - 1, -1, -1):
            if not (self.care >> bit) & 1:
                chars.append("*")
            elif (self.value >> bit) & 1:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def project(self, mask: int) -> "TernaryWord":
        """Restrict the word to the positions set in ``mask`` (other
        positions become ``*``); used by virtual-field analysis."""
        return TernaryWord(self.value & mask, self.care & mask, self.width)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TernaryWord({self.pattern()})"


def word_from_pattern(pattern: str) -> TernaryWord:
    """Parse a {0,1,*} string (MSB first)."""
    value = 0
    care = 0
    for ch in pattern:
        value <<= 1
        care <<= 1
        if ch == "1":
            value |= 1
            care |= 1
        elif ch == "0":
            care |= 1
        elif ch != "*":
            raise ValueError(f"invalid ternary character {ch!r} in {pattern!r}")
    return TernaryWord(value, care, len(pattern))


def word_from_entry(entry: TernaryEntry) -> TernaryWord:
    """Convert a TCAM entry into a ternary word (same layout)."""
    return TernaryWord(entry.value, entry.mask, entry.width)
