"""DNF view of order-independent classifiers (Section 5).

An order-independent rule set concatenates into an *unordered* disjunction
of ternary words — a depth-2 DNF formula.  Classical Boolean minimization
(resolution, subsumption) then reduces both the number of terms and, rarely,
the lookup width; Table 2 measures how little width it actually recovers
compared with FSM.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.classifier import Classifier
from ..tcam.encoding import RangeEncoder, BinaryRangeEncoder, expand_rule
from .ternary import TernaryWord, word_from_entry

__all__ = [
    "Dnf",
    "dnf_from_classifier",
    "resolve_terms",
    "remove_subsumed",
    "minimize_terms",
]


class Dnf:
    """A disjunction of ternary words over a fixed width."""

    def __init__(self, width: int, terms: Iterable[TernaryWord]) -> None:
        self.width = width
        self.terms: List[TernaryWord] = []
        for term in terms:
            if term.width != width:
                raise ValueError(
                    f"term width {term.width} != formula width {width}"
                )
            self.terms.append(term)

    def __len__(self) -> int:
        return len(self.terms)

    def evaluate(self, key: int) -> bool:
        """True if any term matches ``key``."""
        return any(term.matches(key) for term in self.terms)

    def equivalent_on(self, other: "Dnf", keys: Iterable[int]) -> bool:
        """Sampled semantic-equality check."""
        return all(self.evaluate(k) == other.evaluate(k) for k in keys)

    def minimized(self, subsumption_limit: int = 5000) -> "Dnf":
        """A new Dnf with resolution + subsumption applied to fixpoint."""
        return Dnf(self.width, minimize_terms(self.terms, subsumption_limit))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dnf({len(self.terms)} terms, width {self.width})"


def dnf_from_classifier(
    classifier: Classifier,
    encoder: Optional[RangeEncoder] = None,
    rule_indices: Optional[Sequence[int]] = None,
) -> Dnf:
    """Expand (a subset of) a classifier's body into one flat DNF.

    Range fields are expanded into prefixes first — this is the "binary
    rules" count of Table 2 (use the SRGE encoder for the "SRGE rules"
    column).  The result is only a faithful Boolean representation when the
    selected rules are order-independent (unordered disjunction).
    """
    encoder = encoder or BinaryRangeEncoder()
    indices = (
        list(rule_indices)
        if rule_indices is not None
        else range(len(classifier.body))
    )
    terms: List[TernaryWord] = []
    for idx in indices:
        for entry in expand_rule(classifier.rules[idx], classifier.schema, encoder):
            terms.append(word_from_entry(entry))
    return Dnf(classifier.schema.total_width, terms)


def resolve_terms(terms: Sequence[TernaryWord]) -> List[TernaryWord]:
    """One full resolution pass, hash-accelerated.

    Two terms with identical care masks differing in a single cared bit
    merge into one term without that bit.  Groups terms by care mask and
    probes Hamming-1 neighbours through a dict, so a pass is
    O(T * width) instead of O(T^2).
    """
    alive: Set[TernaryWord] = set(terms)
    changed = True
    while changed:
        changed = False
        by_key: Dict[Tuple[int, int], TernaryWord] = {
            (t.care, t.value): t for t in alive
        }
        for term in list(alive):
            if term not in alive:
                continue
            care = term.care
            bit = care
            while bit:
                low = bit & -bit
                partner_value = term.value ^ low
                partner = by_key.get((care, partner_value))
                if partner is not None and partner in alive and partner is not term:
                    merged = term.resolve(partner)
                    alive.discard(term)
                    alive.discard(partner)
                    del by_key[(care, term.value)]
                    del by_key[(care, partner_value)]
                    if merged not in alive:
                        alive.add(merged)
                        by_key[(merged.care, merged.value)] = merged
                    changed = True
                    break
                bit ^= low
    return sorted(alive, key=lambda t: (t.care, t.value))


def remove_subsumed(terms: Sequence[TernaryWord]) -> List[TernaryWord]:
    """Drop every term covered by another term (quadratic; callers bound
    the input size)."""
    # Wider terms (fewer literals) can only be covered by even wider ones,
    # so sorting by literal count lets us only look "upward".
    ordered = sorted(set(terms), key=lambda t: t.num_literals)
    kept: List[TernaryWord] = []
    for term in ordered:
        if not any(other.covers(term) for other in kept):
            kept.append(term)
    return kept


def minimize_terms(
    terms: Sequence[TernaryWord], subsumption_limit: int = 5000
) -> List[TernaryWord]:
    """Resolution + subsumption to fixpoint.

    Subsumption is quadratic, so it is skipped above ``subsumption_limit``
    terms (resolution and deduplication still apply) — the regime of the
    Table 2 benchmark classifiers, where the paper likewise reports only
    marginal MinDNF gains.
    """
    current = list(set(terms))
    while True:
        before = len(current)
        current = resolve_terms(current)
        if len(current) <= subsumption_limit:
            current = remove_subsumed(current)
        if len(current) == before:
            return sorted(current, key=lambda t: (t.care, t.value))
