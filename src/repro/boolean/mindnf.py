"""MinDNF (Problem 6) for truth-table-sized functions.

The decision version of MinDNF is Sigma^P_2-complete; for functions given
explicitly by truth tables, the Greedy SetCover algorithm over prime
implicants is O(log T)-approximate [1].  This module implements exactly
that pipeline — Quine-McCluskey prime implicant generation followed by
Algorithm 3 — for the small widths where a truth table is constructible
(tests and the worked Examples 7-9 of the paper).

Large classifiers cannot be truth-tabled (they look up hundreds of bits);
for them use the heuristic :func:`repro.boolean.dnf.minimize_terms`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .ternary import TernaryWord

__all__ = ["prime_implicants", "mindnf_greedy", "minterms_of"]

#: Truth tables beyond this width are refused (2^20 minterm scans).
_MAX_WIDTH = 20


def minterms_of(terms: Sequence[TernaryWord], width: int) -> Set[int]:
    """All keys matched by a DNF — the ON-set of the function."""
    if width > _MAX_WIDTH:
        raise ValueError(f"truth table too large: width {width} > {_MAX_WIDTH}")
    on: Set[int] = set()
    for term in terms:
        free_bits = [b for b in range(width) if not (term.care >> b) & 1]
        base = term.value
        for assignment in range(1 << len(free_bits)):
            key = base
            for i, bit in enumerate(free_bits):
                if (assignment >> i) & 1:
                    key |= 1 << bit
            on.add(key)
    return on


def prime_implicants(minterms: Set[int], width: int) -> List[TernaryWord]:
    """Quine-McCluskey: all prime implicants of the function whose ON-set is
    ``minterms``."""
    if width > _MAX_WIDTH:
        raise ValueError(f"width {width} > {_MAX_WIDTH}")
    full_care = (1 << width) - 1
    current: Set[Tuple[int, int]] = {(m, full_care) for m in minterms}
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged_from: Set[Tuple[int, int]] = set()
        next_level: Set[Tuple[int, int]] = set()
        by_care: Dict[int, List[int]] = {}
        for value, care in current:
            by_care.setdefault(care, []).append(value)
        for care, values in by_care.items():
            value_set = set(values)
            for value in values:
                bit = care
                while bit:
                    low = bit & -bit
                    bit ^= low
                    partner = value ^ low
                    if partner in value_set and value < partner:
                        new_care = care & ~low
                        next_level.add((value & new_care, new_care))
                        merged_from.add((value, care))
                        merged_from.add((partner, care))
        primes |= current - merged_from
        current = next_level
    return [TernaryWord(v, c, width) for v, c in sorted(primes)]


def _coverage(implicant: TernaryWord, minterms: Set[int], width: int) -> Set[int]:
    return {m for m in minterms if implicant.matches(m)}


def mindnf_greedy(minterms: Set[int], width: int) -> List[TernaryWord]:
    """Greedy MinDNF: cover the ON-set with prime implicants, largest
    uncovered gain first (Algorithm 3 applied as in [1])."""
    if not minterms:
        return []
    implicants = prime_implicants(minterms, width)
    uncovered = set(minterms)
    chosen: List[TernaryWord] = []
    coverage = [(imp, _coverage(imp, minterms, width)) for imp in implicants]
    while uncovered:
        best_i, best_gain = -1, 0
        for i, (imp, covered) in enumerate(coverage):
            gain = len(covered & uncovered)
            if gain > best_gain:
                best_i, best_gain = i, gain
        assert best_i >= 0, "prime implicants must cover the ON-set"
        imp, covered = coverage.pop(best_i)
        chosen.append(imp)
        uncovered -= covered
    return chosen
