"""Width metrics and virtual-field FSM (Sections 4.4 and 5, Figure 6).

Once rules are flattened into ternary bitstrings, field boundaries become a
matter of *resolution*: any group of bit positions can serve as a virtual
field.  Running FSM at bit-level resolution (virtual fields of width 1) can
shrink the lookup far below what whole-field FSM achieves — Example 6 goes
from 8 bits to 2.  Figure 6 sweeps the virtual-field width from 1 to 32 and
compares the resulting classifier width against the original width and
against MinDNF-style reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import Classifier
from ..core.intervals import Interval
from .ternary import TernaryWord

__all__ = [
    "pure_width",
    "same_value_reduced_width",
    "enclosing_prefix_word",
    "words_from_classifier",
    "VirtualFsmResult",
    "virtual_field_fsm",
]


def pure_width(terms: Sequence[TernaryWord], width: int) -> int:
    """Number of positions where at least one term cares — dropping purely
    "don't care" columns (the Table 2 "Width" column)."""
    any_care = 0
    for term in terms:
        any_care |= term.care
    return bin(any_care & ((1 << width) - 1)).count("1")


def same_value_reduced_width(terms: Sequence[TernaryWord], width: int) -> int:
    """Width after additionally dropping columns where every term cares and
    agrees on the value (Table 2 "Red. wid." column).

    Such columns never change *which* term matches: a single shared
    comparison checks them all at once, the Boolean counterpart of the
    Theorem 2 false-positive check.
    """
    if not terms:
        return 0
    all_care = (1 << width) - 1
    any_care = 0
    for term in terms:
        all_care &= term.care
        any_care |= term.care
    agree = all_care
    first = terms[0].value
    for term in terms[1:]:
        agree &= ~(term.value ^ first)
        if not agree:
            break
    keep = any_care & ~agree
    return bin(keep & ((1 << width) - 1)).count("1")


# ---------------------------------------------------------------------------
# From range rules to single ternary words
# ---------------------------------------------------------------------------

def enclosing_prefix_word(interval: Interval, width: int) -> Tuple[int, int]:
    """(value, care) of the tightest prefix containing ``interval``.

    Widening ranges to their enclosing prefixes is a *sound* relaxation for
    separability: if the enclosing prefixes of two rules are disjoint in
    some bits, the original ranges certainly are.  It may miss separations
    (under-approximation), so virtual-field results are conservative for
    range-heavy classifiers — documented in DESIGN.md.
    """
    if interval.high >= (1 << width):
        raise ValueError(f"interval {interval} does not fit in {width} bits")
    diff = interval.low ^ interval.high
    span = diff.bit_length()  # number of low bits that may vary
    care = (((1 << width) - 1) >> span) << span
    return interval.low & care, care


def words_from_classifier(
    classifier: Classifier, rule_indices: Optional[Sequence[int]] = None
) -> List[TernaryWord]:
    """One full-width ternary word per selected body rule, fields
    concatenated MSB-first, ranges widened to enclosing prefixes."""
    widths = classifier.schema.widths
    total = classifier.schema.total_width
    indices = (
        list(rule_indices)
        if rule_indices is not None
        else range(len(classifier.body))
    )
    words: List[TernaryWord] = []
    for idx in indices:
        value = 0
        care = 0
        for iv, w in zip(classifier.rules[idx].intervals, widths):
            v, c = enclosing_prefix_word(iv, w)
            value = (value << w) | v
            care = (care << w) | c
        words.append(TernaryWord(value, care, total))
    return words


# ---------------------------------------------------------------------------
# Virtual-field FSM
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VirtualFsmResult:
    """Outcome of FSM over virtual fields of a fixed width."""

    field_width: int
    chosen_fields: Tuple[int, ...]
    dropped_rules: Tuple[int, ...]
    total_fields: int

    @property
    def reduced_width(self) -> int:
        """Classifier width after the reduction — the Figure 6 y-axis."""
        return len(self.chosen_fields) * self.field_width


def _pack_words(words: Sequence[TernaryWord], width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Split each word's (value, care) into little-endian uint64 chunks."""
    chunks = (width + 63) // 64
    values = np.zeros((len(words), chunks), dtype=np.uint64)
    cares = np.zeros((len(words), chunks), dtype=np.uint64)
    mask64 = (1 << 64) - 1
    for i, word in enumerate(words):
        v, c = word.value, word.care
        for j in range(chunks):
            values[i, j] = (v >> (64 * j)) & mask64
            cares[i, j] = (c >> (64 * j)) & mask64
    return values, cares


def _field_masks(width: int, field_width: int) -> List[int]:
    """Bit masks of consecutive virtual fields, MSB-first (field 0 holds
    the most significant bits, matching how fields concatenate)."""
    masks: List[int] = []
    position = width
    while position > 0:
        low = max(0, position - field_width)
        masks.append(((1 << position) - 1) ^ ((1 << low) - 1))
        position = low
    return masks


def virtual_field_fsm(
    words: Sequence[TernaryWord],
    width: int,
    field_width: int,
) -> VirtualFsmResult:
    """Greedy FSM treating every ``field_width``-bit slice as a field.

    Pairs of words not separable by *any* slice (they intersect as ternary
    strings) cannot be kept together in an order-independent set; such
    conflicts are resolved by greedily dropping the word involved in the
    most conflicts, and the dropped indices are reported.
    """
    n = len(words)
    if n == 0:
        return VirtualFsmResult(field_width, (), (), 0)
    masks = _field_masks(width, field_width)
    values, cares = _pack_words(words, width)
    chunks = values.shape[1]

    # sep[f] is an (n, n) boolean: field f separates the pair.
    separable = np.zeros((n, n), dtype=bool)
    per_field: List[np.ndarray] = []
    mask64 = (1 << 64) - 1
    for field_mask in masks:
        sep = np.zeros((n, n), dtype=bool)
        for j in range(chunks):
            part = np.uint64((field_mask >> (64 * j)) & mask64)
            if not part:
                continue
            v = values[:, j]
            c = cares[:, j]
            diff = (v[:, None] ^ v[None, :]) & c[:, None] & c[None, :] & part
            sep |= diff != 0
        per_field.append(sep)
        separable |= sep

    # Drop words until every remaining pair is separable by some field.
    alive = np.ones(n, dtype=bool)
    np.fill_diagonal(separable, True)
    while True:
        conflict = ~separable & alive[:, None] & alive[None, :]
        counts = conflict.sum(axis=1)
        worst = int(np.argmax(counts))
        if counts[worst] == 0:
            break
        alive[worst] = False
    dropped = tuple(int(i) for i in np.nonzero(~alive)[0])
    keep_idx = np.nonzero(alive)[0]
    m = len(keep_idx)
    if m <= 1:
        return VirtualFsmResult(field_width, (0,) if m else (), dropped, len(masks))

    # Greedy set cover over the surviving pair universe.
    iu = np.triu_indices(m, k=1)
    rows = keep_idx[iu[0]]
    cols = keep_idx[iu[1]]
    num_pairs = len(rows)
    uncovered = np.ones(num_pairs, dtype=bool)
    field_pairs = [sep[rows, cols] for sep in per_field]
    chosen: List[int] = []
    remaining = set(range(len(masks)))
    while uncovered.any():
        best, best_gain = -1, 0
        for f in remaining:
            gain = int((field_pairs[f] & uncovered).sum())
            if gain > best_gain:
                best, best_gain = f, gain
        assert best >= 0, "conflict-free pairs must be coverable"
        chosen.append(best)
        uncovered &= ~field_pairs[best]
        remaining.discard(best)
    return VirtualFsmResult(
        field_width, tuple(sorted(chosen)), dropped, len(masks)
    )
