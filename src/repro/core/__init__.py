"""Core model: fields, intervals, rules, classifiers, packets, actions."""

from .actions import DENY, PERMIT, TRANSMIT, Action, ActionKind
from .classifier import Classifier, MatchResult
from .fields import (
    FieldKind,
    FieldSchema,
    FieldSpec,
    classbench_schema,
    ipv4_5tuple_schema,
    uniform_schema,
)
from .intervals import (
    Interval,
    full_interval,
    interval_from_prefix,
    interval_from_value_mask,
    merge_intervals,
    prefix_for_interval,
    split_into_prefixes,
)
from .packet import Header, Packet, format_header, headers_array, validate_header
from .rule import Rule, catch_all_rule, make_rule

__all__ = [
    "Action",
    "ActionKind",
    "Classifier",
    "DENY",
    "FieldKind",
    "FieldSchema",
    "FieldSpec",
    "Header",
    "Interval",
    "MatchResult",
    "PERMIT",
    "Packet",
    "Rule",
    "TRANSMIT",
    "catch_all_rule",
    "classbench_schema",
    "format_header",
    "full_interval",
    "headers_array",
    "interval_from_prefix",
    "interval_from_value_mask",
    "ipv4_5tuple_schema",
    "make_rule",
    "merge_intervals",
    "prefix_for_interval",
    "split_into_prefixes",
    "uniform_schema",
    "validate_header",
]
