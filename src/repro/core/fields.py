"""Field schemas: names, widths and kinds of the classification fields.

A classifier is defined over an ordered tuple of fields (paper, Section 2);
each field ``i`` is a ``W_i``-bit string matched against a range.  The schema
is shared by every rule of a classifier and drives TCAM width accounting
(Table 1 reports 120-bit five-tuple-plus-flags classifiers and 152-bit
versions extended with two 16-bit range fields).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "FieldKind",
    "FieldSpec",
    "FieldSchema",
    "ipv4_5tuple_schema",
    "classbench_schema",
    "uniform_schema",
]


class FieldKind(enum.Enum):
    """How a field's values are conventionally expressed.

    The kind is advisory — every field is internally a range — but it guides
    workload generation and pretty-printing (prefixes print as ``a.b.c.d/len``,
    ranges as ``lo : hi``).
    """

    PREFIX = "prefix"
    RANGE = "range"
    EXACT = "exact"


@dataclass(frozen=True)
class FieldSpec:
    """A single classification field: a name, a bit width and a kind."""

    name: str
    width: int
    kind: FieldKind = FieldKind.RANGE

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"field {self.name!r}: width must be positive")

    @property
    def max_value(self) -> int:
        """Largest representable value, ``2**width - 1``."""
        return (1 << self.width) - 1


@dataclass(frozen=True)
class FieldSchema:
    """An ordered, immutable collection of :class:`FieldSpec`.

    Provides the width arithmetic used throughout the paper's space
    accounting: the classifier width is the sum of field widths, and
    Theorem 2 reductions report the width of a *subset* of fields.
    """

    fields: Tuple[FieldSpec, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError("a schema needs at least one field")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in schema: {names}")

    @classmethod
    def of(cls, fields: Iterable[FieldSpec]) -> "FieldSchema":
        """Build a schema from any iterable of specs."""
        return cls(tuple(fields))

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[FieldSpec]:
        return iter(self.fields)

    def __getitem__(self, index: int) -> FieldSpec:
        return self.fields[index]

    def index_of(self, name: str) -> int:
        """Position of the field called ``name``; raises KeyError if absent."""
        for i, spec in enumerate(self.fields):
            if spec.name == name:
                return i
        raise KeyError(f"no field named {name!r}")

    @property
    def names(self) -> List[str]:
        """Field names, in order."""
        return [f.name for f in self.fields]

    @property
    def widths(self) -> List[int]:
        """Field widths in bits, in order."""
        return [f.width for f in self.fields]

    @property
    def total_width(self) -> int:
        """Classifier width in bits — the concatenation of all fields."""
        return sum(f.width for f in self.fields)

    def subset_width(self, indices: Sequence[int]) -> int:
        """Total width of the fields at ``indices`` (FSM lookup width)."""
        return sum(self.fields[i].width for i in indices)

    # ------------------------------------------------------------------
    # Derived schemas
    # ------------------------------------------------------------------
    def keep(self, indices: Sequence[int]) -> "FieldSchema":
        """Schema restricted to the fields at ``indices`` (``K(S)``)."""
        return FieldSchema(tuple(self.fields[i] for i in indices))

    def drop(self, indices: Sequence[int]) -> "FieldSchema":
        """Schema with the fields at ``indices`` removed (``K^-F``)."""
        dropped = set(indices)
        kept = tuple(f for i, f in enumerate(self.fields) if i not in dropped)
        return FieldSchema(kept)

    def extend(self, extra: Iterable[FieldSpec]) -> "FieldSchema":
        """Schema with additional fields appended (``K^+F``, Theorem 1)."""
        return FieldSchema(self.fields + tuple(extra))


def ipv4_5tuple_schema() -> FieldSchema:
    """The classical 104-bit IPv4 five-tuple."""
    return FieldSchema(
        (
            FieldSpec("src_ip", 32, FieldKind.PREFIX),
            FieldSpec("dst_ip", 32, FieldKind.PREFIX),
            FieldSpec("src_port", 16, FieldKind.RANGE),
            FieldSpec("dst_port", 16, FieldKind.RANGE),
            FieldSpec("protocol", 8, FieldKind.EXACT),
        )
    )


def classbench_schema() -> FieldSchema:
    """The 120-bit six-field format of the paper's benchmark classifiers.

    ClassBench rules carry the five-tuple plus a 16-bit TCP-flags field;
    32 + 32 + 16 + 16 + 8 + 16 = 120 bits, matching the "Width, bits" column
    of Table 1.
    """
    return ipv4_5tuple_schema().extend(
        (FieldSpec("flags", 16, FieldKind.EXACT),)
    )


def uniform_schema(num_fields: int, width: int, prefix: str = "f") -> FieldSchema:
    """A schema of ``num_fields`` identical ``width``-bit range fields.

    Handy for the paper's small worked examples (Examples 1-10 use 4- and
    5-bit fields) and for synthetic stress tests.
    """
    return FieldSchema(
        tuple(
            FieldSpec(f"{prefix}{i}", width, FieldKind.RANGE)
            for i in range(num_fields)
        )
    )


def synthetic_range_fields(count: int, width: int = 16) -> List[FieldSpec]:
    """Specs for ``count`` synthetic range fields, as added in Table 1 /
    Figure 1 ("additional random synthetic 16-bit range fields")."""
    return [
        FieldSpec(f"range{i}", width, FieldKind.RANGE) for i in range(count)
    ]
