"""Classification rules.

A rule (paper, Section 2) is an ordered set of per-field ranges plus an
action: ``R = (I_1, ..., I_k) -> A``.  A packet header matches the rule if
every field value lies inside the corresponding range.  Two rules *intersect*
if their ranges overlap in every field; order-independence of a classifier is
pairwise non-intersection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence, Tuple

from .actions import Action, TRANSMIT
from .fields import FieldSchema
from .intervals import Interval, full_interval

__all__ = ["Rule", "make_rule", "catch_all_rule"]


@dataclass(frozen=True)
class Rule:
    """An immutable rule: one :class:`Interval` per field plus an action.

    Rules do not carry priority — priority is positional, defined by the
    enclosing :class:`~repro.core.classifier.Classifier`.  This keeps rules
    freely shareable between the original classifier, its reduced versions
    (``R^-m``), and group decompositions.
    """

    intervals: Tuple[Interval, ...]
    action: Action = TRANSMIT
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ValueError("a rule needs at least one field")

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    @property
    def num_fields(self) -> int:
        """Number of fields the rule constrains."""
        return len(self.intervals)

    def matches(self, header: Sequence[int]) -> bool:
        """Return True if every field of ``header`` lies inside the rule's
        corresponding range."""
        if len(header) != len(self.intervals):
            raise ValueError(
                f"header has {len(header)} fields, rule has {len(self.intervals)}"
            )
        return all(iv.contains(v) for iv, v in zip(self.intervals, header))

    def matches_on(self, header: Sequence[int], indices: Sequence[int]) -> bool:
        """Match only the fields at ``indices`` (the reduced lookup of
        Theorem 2); ``header`` is still a full header."""
        return all(self.intervals[i].contains(header[i]) for i in indices)

    # ------------------------------------------------------------------
    # Pairwise geometry
    # ------------------------------------------------------------------
    def intersects(self, other: "Rule") -> bool:
        """True if some header matches both rules (overlap in every field)."""
        return all(a.overlaps(b) for a, b in zip(self.intervals, other.intervals))

    def intersects_on(self, other: "Rule", indices: Sequence[int]) -> bool:
        """True if the two rules overlap in every field of ``indices``.

        Rules that do *not* intersect on a subset are order-independent when
        the classifier is restricted to that subset.
        """
        return all(
            self.intervals[i].overlaps(other.intervals[i]) for i in indices
        )

    def disjoint_fields(self, other: "Rule") -> Tuple[int, ...]:
        """Indices of fields where the two rules' ranges are disjoint —
        the *witnesses* of their order-independence."""
        return tuple(
            i
            for i, (a, b) in enumerate(zip(self.intervals, other.intervals))
            if a.disjoint(b)
        )

    # ------------------------------------------------------------------
    # Field surgery (Theorems 1 and 2)
    # ------------------------------------------------------------------
    def restrict(self, indices: Sequence[int]) -> "Rule":
        """The reduced rule ``R^-m`` keeping only the fields at ``indices``."""
        return replace(
            self, intervals=tuple(self.intervals[i] for i in indices)
        )

    def drop_fields(self, indices: Sequence[int]) -> "Rule":
        """The reduced rule with the fields at ``indices`` removed."""
        dropped = set(indices)
        kept = tuple(
            iv for i, iv in enumerate(self.intervals) if i not in dropped
        )
        return replace(self, intervals=kept)

    def extend(self, extra: Iterable[Interval]) -> "Rule":
        """The expanded rule ``R^+m`` with new constraints appended
        (Theorem 1)."""
        return replace(self, intervals=self.intervals + tuple(extra))

    def is_catch_all(self, schema: FieldSchema) -> bool:
        """True if every field is the full wildcard for ``schema``."""
        return all(
            iv.is_full(spec.width) for iv, spec in zip(self.intervals, schema)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(repr(iv) for iv in self.intervals)
        label = f" {self.name}" if self.name else ""
        return f"Rule{label}({body} -> {self.action!r})"


def make_rule(
    ranges: Sequence[Tuple[int, int]],
    action: Action = TRANSMIT,
    name: Optional[str] = None,
) -> Rule:
    """Convenience constructor from ``[(low, high), ...]`` pairs."""
    return Rule(tuple(Interval(lo, hi) for lo, hi in ranges), action, name)


def catch_all_rule(schema: FieldSchema, action: Action = TRANSMIT) -> Rule:
    """The mandatory last rule ``R_N = (*, ..., *)`` of the model."""
    return Rule(
        tuple(full_interval(spec.width) for spec in schema),
        action,
        name="catch-all",
    )
