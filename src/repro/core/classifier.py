"""Classifiers: ordered rule lists with first-match semantics.

This is the reference ("ground truth") implementation of the model in
Section 2 of the paper: rules are applied sequentially, the earliest match
wins, and the last rule is a catch-all that transmits.  Every optimized
engine in :mod:`repro.saxpac` and :mod:`repro.lookup` is validated against
the linear scan performed here.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .actions import Action, TRANSMIT
from .fields import FieldSchema, FieldSpec
from .intervals import Interval
from .packet import Header
from .rule import Rule, catch_all_rule

__all__ = ["Classifier", "MatchResult"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of classifying one header: the winning rule and its priority
    (position; lower is higher priority)."""

    index: int
    rule: Rule

    @property
    def action(self) -> Action:
        """The winning rule's action."""
        return self.rule.action


class Classifier:
    """An ordered set of N rules over a schema, ending in a catch-all.

    The class is *immutable by convention*: methods return new classifiers.
    Priorities are positional — ``rules[0]`` is the highest priority and the
    catch-all sits at ``rules[-1]``.
    """

    def __init__(
        self,
        schema: FieldSchema,
        rules: Iterable[Rule],
        ensure_catch_all: bool = True,
        default_action: Action = TRANSMIT,
    ) -> None:
        self.schema = schema
        rule_list = list(rules)
        for i, rule in enumerate(rule_list):
            if rule.num_fields != len(schema):
                raise ValueError(
                    f"rule {i} has {rule.num_fields} fields, "
                    f"schema expects {len(schema)}"
                )
            for iv, spec in zip(rule.intervals, schema):
                if iv.high > spec.max_value:
                    raise ValueError(
                        f"rule {i}: interval {iv} exceeds field "
                        f"{spec.name!r} ({spec.width} bits)"
                    )
        if ensure_catch_all:
            if not rule_list or not rule_list[-1].is_catch_all(schema):
                rule_list.append(catch_all_rule(schema, default_action))
        self.rules: Tuple[Rule, ...] = tuple(rule_list)
        self._bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __getitem__(self, index: int) -> Rule:
        return self.rules[index]

    @property
    def num_fields(self) -> int:
        """Number of fields in the schema."""
        return len(self.schema)

    @property
    def body(self) -> Tuple[Rule, ...]:
        """All rules except the final catch-all."""
        return self.rules[:-1]

    @property
    def catch_all(self) -> Rule:
        """The mandatory final wildcard rule."""
        return self.rules[-1]

    # ------------------------------------------------------------------
    # Reference semantics
    # ------------------------------------------------------------------
    def match(self, header: Sequence[int]) -> MatchResult:
        """First-match linear scan — the semantic ground truth."""
        for i, rule in enumerate(self.rules):
            if rule.matches(header):
                return MatchResult(i, rule)
        raise AssertionError("catch-all rule failed to match")  # pragma: no cover

    def match_batch(
        self, headers: Iterable[Sequence[int]]
    ) -> List[MatchResult]:
        """Naive batched reference: one linear-scan :meth:`match` per
        header, results in input order.  Ground truth for the optimized
        batch paths in :mod:`repro.runtime`."""
        return [self.match(header) for header in headers]

    def classify(self, header: Sequence[int]) -> Action:
        """Action of the highest-priority matching rule."""
        return self.match(header).action

    # ------------------------------------------------------------------
    # Field surgery (classifier-level Theorems 1 and 2)
    # ------------------------------------------------------------------
    def restrict(self, indices: Sequence[int]) -> "Classifier":
        """The classifier ``K(S)`` keeping only the fields at ``indices``."""
        schema = self.schema.keep(indices)
        return Classifier(
            schema,
            (r.restrict(indices) for r in self.rules),
            ensure_catch_all=False,
        )

    def drop_fields(self, indices: Sequence[int]) -> "Classifier":
        """The classifier ``K^-F`` with the fields at ``indices`` removed."""
        kept = [i for i in range(self.num_fields) if i not in set(indices)]
        return self.restrict(kept)

    def extend(
        self,
        extra_specs: Sequence[FieldSpec],
        extra_intervals: Sequence[Sequence[Interval]],
    ) -> "Classifier":
        """The classifier ``K^+F`` with new fields appended to every rule
        (Theorem 1).  ``extra_intervals[j]`` holds the new ranges of rule j;
        the catch-all automatically receives wildcards."""
        if len(extra_intervals) not in (len(self.rules), len(self.body)):
            raise ValueError(
                f"need intervals for {len(self.body)} body rules "
                f"(or all {len(self.rules)}), got {len(extra_intervals)}"
            )
        schema = self.schema.extend(extra_specs)
        new_rules: List[Rule] = []
        for j, rule in enumerate(self.body):
            new_rules.append(rule.extend(extra_intervals[j]))
        return Classifier(schema, new_rules, ensure_catch_all=True,
                          default_action=self.catch_all.action)

    def subset(self, indices: Sequence[int]) -> "Classifier":
        """A classifier made of the body rules at ``indices`` (original
        relative order preserved) plus the original catch-all.

        The catch-all is appended explicitly so a full-wildcard *body*
        rule among the selection keeps its body status (and its index
        accounting) instead of being absorbed as the catch-all."""
        body = [self.rules[i] for i in indices]
        return Classifier(
            self.schema,
            body + [self.catch_all],
            ensure_catch_all=False,
        )

    def without(self, indices: Sequence[int]) -> "Classifier":
        """A classifier with the body rules at ``indices`` removed."""
        dropped = set(indices)
        kept = [i for i in range(len(self.body)) if i not in dropped]
        return self.subset(kept)

    # ------------------------------------------------------------------
    # Vectorized views (used by the analysis package)
    # ------------------------------------------------------------------
    def bounds_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(lows, highs)``: two ``(N, k)`` arrays over the *body*
        rules.  int64 normally; Python-object arrays when any field is too
        wide for int64 (e.g. 128-bit IPv6 prefixes).  Cached; treat as
        read-only."""
        if self._bounds is None:
            body = self.body
            k = self.num_fields
            wide = any(spec.width > 62 for spec in self.schema)
            dtype = object if wide else np.int64
            lows = np.empty((len(body), k), dtype=dtype)
            highs = np.empty((len(body), k), dtype=dtype)
            for j, rule in enumerate(body):
                for i, iv in enumerate(rule.intervals):
                    lows[j, i] = iv.low
                    highs[j, i] = iv.high
            lows.setflags(write=False)
            highs.setflags(write=False)
            self._bounds = (lows, highs)
        return self._bounds

    # ------------------------------------------------------------------
    # Equivalence testing
    # ------------------------------------------------------------------
    def equivalent_on(
        self, other_match, headers: Iterable[Sequence[int]]
    ) -> bool:
        """Check that ``other_match(header)`` returns the same *rule* this
        classifier matches, for every header in ``headers``.

        ``other_match`` is any callable returning a :class:`Rule` (or an
        object with a ``rule`` attribute).  Used by tests to validate
        engines against the linear scan.
        """
        for header in headers:
            expected = self.match(header).rule
            got = other_match(header)
            got_rule = getattr(got, "rule", got)
            if got_rule is not expected and got_rule != expected:
                return False
        return True

    def sample_headers(
        self, count: int, rng: random.Random, hit_bias: float = 0.5
    ) -> List[Header]:
        """Random headers for equivalence testing: with probability
        ``hit_bias`` sample a point inside a random rule (so specific rules
        actually get exercised), else uniform over the whole space."""
        headers: List[Header] = []
        body = self.body or self.rules
        for _ in range(count):
            if body and rng.random() < hit_bias:
                rule = rng.choice(body)
                headers.append(
                    tuple(rng.randint(iv.low, iv.high) for iv in rule.intervals)
                )
            else:
                headers.append(
                    tuple(rng.randint(0, s.max_value) for s in self.schema)
                )
        return headers

    def all_headers(self) -> Iterator[Header]:
        """Exhaustive header enumeration — only sensible for tiny schemas
        in tests."""
        spaces = [range(spec.max_value + 1) for spec in self.schema]
        return iter(itertools.product(*spaces))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Classifier({len(self.body)} rules + catch-all, "
            f"{self.num_fields} fields, {self.schema.total_width} bits)"
        )
