"""Rule actions.

The paper's model attaches an action ``A_j`` to every rule and fixes the
catch-all action to TRANSMIT.  Classification returns the action of the
highest-priority matching rule; actions themselves are opaque to every
algorithm in the library, so we model them as a tiny enum plus an optional
user payload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ActionKind", "Action", "TRANSMIT", "DENY", "PERMIT"]


class ActionKind(enum.Enum):
    """Built-in action verbs seen in ACL/QoS classifiers."""

    TRANSMIT = "transmit"
    PERMIT = "permit"
    DENY = "deny"
    MARK = "mark"
    REDIRECT = "redirect"
    CUSTOM = "custom"


@dataclass(frozen=True)
class Action:
    """An action verb plus an optional payload (queue id, next hop, ...)."""

    kind: ActionKind
    payload: Optional[Any] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.payload is None:
            return self.kind.value
        return f"{self.kind.value}({self.payload!r})"


#: The catch-all action of the paper's model: transmit unchanged.
TRANSMIT = Action(ActionKind.TRANSMIT)

#: Conventional ACL actions.
PERMIT = Action(ActionKind.PERMIT)
DENY = Action(ActionKind.DENY)
