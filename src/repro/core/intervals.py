"""Closed integer intervals — the atomic match constraint of a rule field.

The SAX-PAC model (paper, Section 2) represents every field of a rule as a
range of values ``[low, high]`` on ``width`` bits.  Prefixes are the special
case where the range is aligned and sized to a power of two; exact values are
the special case ``low == high``.

This module provides the :class:`Interval` value type plus conversions
between ranges and prefixes, which the TCAM substrate builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "Interval",
    "full_interval",
    "interval_from_prefix",
    "interval_from_value_mask",
    "prefix_for_interval",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[low, high]``, with ``low <= high``.

    Instances are immutable, hashable and totally ordered (lexicographically
    by ``(low, high)``), which makes them usable as dict keys and sortable
    for sweep-line algorithms.
    """

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty interval: low={self.low} > high={self.high}")
        if self.low < 0:
            raise ValueError(f"negative interval bound: {self.low}")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, value: int) -> bool:
        """Return True if ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    __contains__ = contains

    def overlaps(self, other: "Interval") -> bool:
        """Return True if the two intervals share at least one value."""
        return self.low <= other.high and other.low <= self.high

    def disjoint(self, other: "Interval") -> bool:
        """Return True if the two intervals share no value.

        Two rules are *order-independent* exactly when they are disjoint in
        at least one field — this predicate is the heart of the whole paper.
        """
        return not self.overlaps(other)

    def covers(self, other: "Interval") -> bool:
        """Return True if ``other`` is fully contained in this interval."""
        return self.low <= other.low and other.high <= self.high

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the overlap of the two intervals, or None if disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return Interval(low, high)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.high - self.low + 1

    @property
    def size(self) -> int:
        """Number of integer points covered."""
        return self.high - self.low + 1

    def is_full(self, width: int) -> bool:
        """Return True if the interval is the wildcard ``[0, 2**width - 1]``."""
        return self.low == 0 and self.high == (1 << width) - 1

    def is_exact(self) -> bool:
        """Return True if the interval matches a single value."""
        return self.low == self.high

    def is_prefix(self, width: int) -> bool:
        """Return True if the interval is expressible as one prefix on
        ``width`` bits (aligned, power-of-two sized)."""
        return prefix_for_interval(self, width) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.low}, {self.high}]"


def full_interval(width: int) -> Interval:
    """The wildcard interval covering every ``width``-bit value."""
    if width <= 0:
        raise ValueError(f"field width must be positive, got {width}")
    return Interval(0, (1 << width) - 1)


def interval_from_prefix(value: int, prefix_len: int, width: int) -> Interval:
    """Interval matched by the prefix of ``prefix_len`` leading bits of
    ``value`` on a ``width``-bit field.

    ``prefix_len == 0`` yields the wildcard; ``prefix_len == width`` an exact
    match.
    """
    if not 0 <= prefix_len <= width:
        raise ValueError(f"prefix length {prefix_len} outside [0, {width}]")
    if not 0 <= value < (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    span = width - prefix_len
    low = (value >> span) << span
    high = low + (1 << span) - 1
    return Interval(low, high)


def interval_from_value_mask(value: int, mask: int, width: int) -> Interval:
    """Interval for a *contiguous* (prefix-style) value/mask pair.

    Raises ValueError for non-contiguous masks, which do not describe a
    single interval.
    """
    if mask < 0 or mask >= (1 << width) + (0 if mask < (1 << width) else 1):
        raise ValueError(f"mask {mask:#x} does not fit in {width} bits")
    # A prefix mask has all its set bits at the top: mask == ~0 << span.
    span = width
    while span > 0 and mask & (1 << (span - 1)):
        span -= 1
    expected = ((1 << width) - 1) ^ ((1 << span) - 1)
    if mask != expected:
        raise ValueError(f"mask {mask:#x} is not a contiguous prefix mask")
    prefix_len = width - span
    return interval_from_prefix(value & mask, prefix_len, width)


def prefix_for_interval(interval: Interval, width: int) -> Optional[Tuple[int, int]]:
    """Return ``(value, prefix_len)`` if ``interval`` is a single prefix on
    ``width`` bits, else None."""
    size = interval.size
    if size & (size - 1):
        return None  # not a power of two
    if interval.low % size:
        return None  # not aligned
    if interval.high >= (1 << width):
        return None
    span = size.bit_length() - 1
    return interval.low >> span, width - span


def split_into_prefixes(interval: Interval, width: int) -> Iterator[Tuple[int, int]]:
    """Yield the minimal set of prefixes ``(value, prefix_len)`` whose union
    is exactly ``interval``.

    This is the classical binary range expansion of [36] (Srinivasan et al.);
    a ``width``-bit range needs at most ``2 * width - 2`` prefixes.  The TCAM
    cost model (``repro.tcam.encoding``) wraps this into entry counting.
    """
    if interval.high >= (1 << width):
        raise ValueError(f"interval {interval} does not fit in {width} bits")
    low, high = interval.low, interval.high
    while low <= high:
        # Largest aligned block starting at `low` that does not overshoot.
        span = (low & -low).bit_length() - 1 if low else width
        while low + (1 << span) - 1 > high:
            span -= 1
        yield low >> span, width - span
        low += 1 << span
        if low == 0:  # wrapped past the top of the space
            break


def merge_intervals(intervals: List[Interval]) -> List[Interval]:
    """Merge a list of intervals into a minimal sorted list of disjoint
    intervals covering the same points."""
    if not intervals:
        return []
    merged: List[Interval] = []
    for cur in sorted(intervals):
        if merged and cur.low <= merged[-1].high + 1:
            last = merged.pop()
            merged.append(Interval(last.low, max(last.high, cur.high)))
        else:
            merged.append(cur)
    return merged
