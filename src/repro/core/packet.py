"""Packet headers.

A packet header is simply a tuple of field values conforming to a
:class:`~repro.core.fields.FieldSchema`.  The library keeps headers as plain
tuples for speed, but this module provides a validating wrapper, pretty
printing, and helpers used by trace generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .fields import FieldKind, FieldSchema

__all__ = ["Header", "headers_array", "validate_header", "format_header"]


Header = Tuple[int, ...]


def headers_array(
    headers: Sequence[Sequence[int]], schema: FieldSchema
) -> np.ndarray:
    """A ``(B, k)`` array view of a batch of headers, dtype-matched to
    :meth:`Classifier.bounds_arrays` (int64 normally, Python objects when
    any field is wider than 62 bits, e.g. IPv6 prefixes)."""
    wide = any(spec.width > 62 for spec in schema)
    dtype = object if wide else np.int64
    arr = np.asarray(headers, dtype=dtype)
    if arr.size == 0:
        return arr.reshape(0, len(schema))
    if arr.ndim != 2 or arr.shape[1] != len(schema):
        raise ValueError(
            f"headers must be (B, {len(schema)}); got shape {arr.shape}"
        )
    return arr


def validate_header(header: Sequence[int], schema: FieldSchema) -> Header:
    """Check that ``header`` fits ``schema`` and return it as a tuple.

    Raises ValueError on arity or range violations.  Hot paths skip this and
    trust their inputs; use it at API boundaries.
    """
    if len(header) != len(schema):
        raise ValueError(
            f"header has {len(header)} fields, schema expects {len(schema)}"
        )
    for value, spec in zip(header, schema):
        if not 0 <= value <= spec.max_value:
            raise ValueError(
                f"field {spec.name!r}: value {value} outside "
                f"[0, {spec.max_value}]"
            )
    return tuple(header)


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def format_header(header: Sequence[int], schema: FieldSchema) -> str:
    """Human-readable rendering of a header, IPv4-style for 32-bit prefix
    fields."""
    parts = []
    for value, spec in zip(header, schema):
        if spec.kind is FieldKind.PREFIX and spec.width == 32:
            parts.append(f"{spec.name}={_format_ipv4(value)}")
        else:
            parts.append(f"{spec.name}={value}")
    return " ".join(parts)


@dataclass(frozen=True)
class Packet:
    """A validated header bound to its schema.

    Mostly a convenience for examples and debugging; algorithms accept bare
    tuples.
    """

    header: Header
    schema: FieldSchema

    @classmethod
    def of(cls, header: Sequence[int], schema: FieldSchema) -> "Packet":
        """Validate and wrap a header."""
        return cls(validate_header(header, schema), schema)

    def __getitem__(self, index: int) -> int:
        return self.header[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Packet({format_header(self.header, self.schema)})"
