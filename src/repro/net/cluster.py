"""The replicated serving tier: replica-set routing, snapshot-version
convergence, and zero-downtime rolling swaps.

SAX-PAC's scalability case ends at "heavy traffic from millions of
users", which means more than one server.  This module adds the
cluster layer over :mod:`repro.net` without touching the data plane's
correctness story:

* :func:`replica_for` — pure rendezvous (highest-random-weight)
  routing.  Deterministic integer mixing (no Python ``hash()``, which
  ``PYTHONHASHSEED`` randomizes), so placement is reproducible across
  processes and machines, and membership changes remap only the keys
  that lived on the departed replica — the property the Hypothesis
  suite checks;
* :class:`ReplicaSet` — a client-side router that fans pipelined
  requests over N replicas (``rendezvous`` or ``least_inflight``
  policy), detects dead replicas through :class:`~repro.net.NetClient`'s
  reconnect path, and re-sends unanswered requests to survivors.
  Lookups are read-only, so wholesale resends are safe: the set
  delivers *zero wrong answers*, never at-most-once semantics;
* snapshot-version convergence — every replica stamps its responses
  with the engine generation (the :data:`~repro.net.protocol
  .FLAG_GENERATION` extension), so the set tracks convergence in-band
  for free; :meth:`ReplicaSet.generations` polls explicitly with one
  stamped ``PING`` per replica, and ``min_generation`` routing gives
  read-your-writes after a swap: requests only go to replicas that
  have converged past the writer's generation;
* :class:`LocalCluster` — N in-process replicas (one
  :class:`~repro.runtime.service.RuntimeService` + background
  :class:`~repro.net.server.NetServer` each) with ``kill`` /
  ``restart`` / :meth:`LocalCluster.rolling_swap`: quiesce one replica
  (its ``DRAINING`` rejects bounce traffic to the others), apply the
  update batch, resume, move on — p99 stays bounded because N-1
  replicas always serve.  A restarted replica replays the recorded
  update log, so it lands on the same generation as everybody else.

Failure matrix (who handles what):

=====================  ==========================================
failure                 handled by
=====================  ==========================================
connection loss         NetClient reconnect + resend (in-replica)
replica crash           ReplicaSet marks dead, reroutes to survivors
SHED / INTERNAL         ReplicaSet reroutes the chunk, brief cooldown
DRAINING (quiesce)      ReplicaSet reroutes, cooldown until resume
stale replica           ``min_generation`` filters it from routing
all replicas dead       :class:`ClusterError` (nothing to hide it)
=====================  ==========================================
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.service import RuntimeService
from .client import NetClient, NetError, NetTimeout
from .protocol import ErrorCode, ProtocolError
from .server import NetConfig, ServerHandle, serve_background

__all__ = [
    "ClusterError",
    "LocalCluster",
    "ReplicaSet",
    "decision_identical_updates",
    "fold_catch_all",
    "replica_for",
    "replica_score",
]

_MASK64 = (1 << 64) - 1


class ClusterError(RuntimeError):
    """The replica set cannot make progress (no eligible replica, or a
    request kept failing past the stall budget)."""


# ----------------------------------------------------------------------
# Rendezvous hashing (pure functions — the Hypothesis surface)
# ----------------------------------------------------------------------
def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a bijective avalanche over 64 bits."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _name_seed(name: str) -> int:
    """FNV-1a over the replica name: a stable per-replica salt."""
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    return h


def replica_score(key: int, name: str) -> int:
    """Rendezvous weight of ``name`` for ``key`` (deterministic:
    no ``PYTHONHASHSEED`` dependence, no process state)."""
    return _mix64(_mix64(key) ^ _name_seed(name))


def replica_for(key: int, names: Sequence[str]) -> str:
    """Route ``key`` to one of ``names`` by highest rendezvous weight.

    The HRW property this buys: removing a name remaps *only* the keys
    that scored highest on it, and adding a name steals only the keys
    that now score highest on the newcomer — no full reshuffle on
    membership change, which is exactly what a failover wants.
    """
    if not names:
        raise ClusterError("replica_for: no replicas")
    return max(names, key=lambda name: (replica_score(key, name), name))


# ----------------------------------------------------------------------
# Client-side replica set
# ----------------------------------------------------------------------
class _Replica:
    """Router-side state for one endpoint."""

    __slots__ = (
        "name",
        "host",
        "port",
        "client",
        "alive",
        "generation",
        "inflight",
        "cooldown",
    )

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.client: Optional[NetClient] = None
        self.alive = True
        #: Last engine generation seen from this replica (in-band stamp
        #: or explicit poll); None until one arrives.
        self.generation: Optional[int] = None
        self.inflight = 0
        #: Routing rounds to skip after a SHED/DRAINING/INTERNAL answer
        #: (the replica is alive but currently a bad place for traffic).
        self.cooldown = 0


#: Sentinel distinguishing "unanswered" from a legitimately empty result.
_UNSET = object()

#: NetError codes that mean "alive replica, bad moment" — reroute the
#: chunk and cool the replica down instead of declaring it dead.
_REROUTE_CODES = (ErrorCode.SHED, ErrorCode.DRAINING, ErrorCode.INTERNAL)


class ReplicaSet:
    """Client-side router over N replica NetServers.

    ``endpoints`` maps replica name -> ``(host, port)`` (or bare port,
    loopback implied).  ``policy`` is ``"rendezvous"`` (sticky,
    deterministic placement by request key) or ``"least_inflight"``
    (greedy load balancing).  Remaining ``client_kwargs`` construct each
    replica's :class:`~repro.net.NetClient` (timeouts, retry budgets);
    ``track_generation`` is forced on — generation stamps are how the
    set watches convergence.

    Not thread-safe for concurrent :meth:`match_many` calls; one driver
    thread fans work out to per-replica pump threads internally.
    """

    def __init__(
        self,
        endpoints: Dict[str, object],
        policy: str = "rendezvous",
        recorder=None,
        chunk: int = 32,
        max_stalled_rounds: int = 150,
        **client_kwargs,
    ) -> None:
        if policy not in ("rendezvous", "least_inflight"):
            raise ValueError(f"unknown routing policy {policy!r}")
        if not endpoints:
            raise ValueError("a replica set needs at least one endpoint")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.policy = policy
        self.recorder = recorder
        self.chunk = chunk
        self.max_stalled_rounds = max_stalled_rounds
        self.client_kwargs = dict(client_kwargs)
        self.client_kwargs["track_generation"] = True
        self.replicas: Dict[str, _Replica] = {}
        for name, where in endpoints.items():
            host, port = (
                ("127.0.0.1", where) if isinstance(where, int) else where
            )
            self.replicas[name] = _Replica(name, host, port)
        #: Router statistics (plain ints; mirrored into ``recorder``
        #: under the same ``cluster.*`` names when one is attached).
        self.stats: Dict[str, int] = {
            "cluster.requests": 0,
            "cluster.rerouted": 0,
            "cluster.shed_reroutes": 0,
            "cluster.drain_reroutes": 0,
            "cluster.internal_reroutes": 0,
            "cluster.replica_deaths": 0,
            "cluster.rejoins": 0,
            "cluster.generation_polls": 0,
            "cluster.stalled_rounds": 0,
        }

    # -- bookkeeping ----------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        self.stats[name] += n
        if self.recorder is not None:
            self.recorder.incr(name, n)

    def alive(self) -> List[str]:
        """Names of replicas currently believed alive (sorted)."""
        return sorted(
            name for name, r in self.replicas.items() if r.alive
        )

    def mark_dead(self, name: str) -> None:
        """Take a replica out of routing (idempotent)."""
        replica = self.replicas[name]
        if replica.alive:
            replica.alive = False
            self._count("cluster.replica_deaths")
        if replica.client is not None:
            replica.client.close()
            replica.client = None

    def rejoin(
        self,
        name: str,
        port: Optional[int] = None,
        host: Optional[str] = None,
    ) -> None:
        """Bring a replica back into routing, optionally at a new
        address (a restarted :class:`LocalCluster` replica binds a fresh
        port)."""
        replica = self.replicas[name]
        if port is not None:
            replica.port = port
        if host is not None:
            replica.host = host
        if replica.client is not None:
            replica.client.close()
            replica.client = None
        replica.generation = None
        replica.cooldown = 0
        if not replica.alive:
            replica.alive = True
            self._count("cluster.rejoins")

    def close(self) -> None:
        """Close every replica connection."""
        for replica in self.replicas.values():
            if replica.client is not None:
                replica.client.close()
                replica.client = None

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _client(self, replica: _Replica) -> NetClient:
        if replica.client is None:
            replica.client = NetClient(
                host=replica.host,
                port=replica.port,
                **self.client_kwargs,
            )
        return replica.client

    # -- convergence ----------------------------------------------------
    def generations(self) -> Dict[str, Optional[int]]:
        """Poll every alive replica's engine generation with one
        stamped ``PING`` each (fresh short-lived connections — the pump
        clients are not shared across threads).  A replica that cannot
        answer the poll is marked dead."""
        out: Dict[str, Optional[int]] = {}
        for name in self.alive():
            replica = self.replicas[name]
            self._count("cluster.generation_polls")
            try:
                with NetClient(
                    host=replica.host,
                    port=replica.port,
                    timeout_s=5.0,
                    retries=0,
                ) as probe:
                    replica.generation = probe.generation()
            except (NetError, ProtocolError, OSError):
                self.mark_dead(name)
                continue
            replica.cooldown = 0
            out[name] = replica.generation
        return out

    def converged(self) -> bool:
        """True when every alive replica last reported the same
        generation (uses cached values; :meth:`generations` refreshes)."""
        gens = {
            r.generation for r in self.replicas.values() if r.alive
        }
        return len(gens) == 1 and None not in gens

    def wait_converged(
        self,
        target: Optional[int] = None,
        timeout_s: float = 30.0,
        poll_s: float = 0.05,
    ) -> Dict[str, Optional[int]]:
        """Block until every alive replica reports generation >=
        ``target`` (or, with ``target=None``, until they all agree).
        Returns the final generation map; raises :class:`ClusterError`
        on timeout or when nobody is left alive."""
        deadline = time.monotonic() + timeout_s
        while True:
            gens = self.generations()
            if gens:
                values = list(gens.values())
                if target is None:
                    if len(set(values)) == 1 and values[0] is not None:
                        return gens
                elif all(g is not None and g >= target for g in values):
                    return gens
            elif not self.alive():
                raise ClusterError(
                    "wait_converged: no replicas left alive"
                )
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"replicas did not converge within {timeout_s}s: "
                    f"{gens} (target {target})"
                )
            time.sleep(poll_s)

    # -- routing --------------------------------------------------------
    def _eligible(
        self, min_generation: Optional[int]
    ) -> List[_Replica]:
        """Replicas traffic may route to right now: alive, past the
        read-your-writes floor, preferring ones not cooling down."""
        live = [r for r in self.replicas.values() if r.alive]
        if min_generation is not None:
            fresh = [
                r
                for r in live
                if r.generation is not None
                and r.generation >= min_generation
            ]
            if not fresh and live:
                # Cached views may be stale (a swap just landed): one
                # explicit poll before giving up on the round.
                self.generations()
                live = [r for r in self.replicas.values() if r.alive]
                fresh = [
                    r
                    for r in live
                    if r.generation is not None
                    and r.generation >= min_generation
                ]
            live = fresh
        warm = [r for r in live if r.cooldown == 0]
        return warm or live

    def _assign(
        self,
        eligible: List[_Replica],
        pending: List[int],
        keys: Optional[Sequence[int]],
    ) -> Dict[str, List[int]]:
        plan: Dict[str, List[int]] = {r.name: [] for r in eligible}
        if self.policy == "rendezvous":
            names = sorted(plan)
            for i in pending:
                key = keys[i] if keys is not None else i
                plan[replica_for(key, names)].append(i)
        else:
            for i in pending:
                target = min(
                    eligible,
                    key=lambda r: (r.inflight + len(plan[r.name]), r.name),
                )
                plan[target.name].append(i)
        return plan

    def match_many(
        self,
        blocks: Sequence,
        window: int = 8,
        keys: Optional[Sequence[int]] = None,
        min_generation: Optional[int] = None,
    ) -> List:
        """Classify ``blocks`` across the replica set; results in input
        order, exactly one answer per block.

        Each round routes the unanswered blocks over the currently
        eligible replicas (``keys`` feeds the rendezvous hash; defaults
        to block position) and pumps every replica's share on its own
        thread, ``chunk`` blocks per wire call.  A replica whose
        transport dies — after :class:`~repro.net.NetClient` already
        spent its own reconnect budget — is marked dead and its
        unanswered blocks reroute to survivors; ``SHED`` / ``DRAINING``
        / ``INTERNAL`` answers reroute without the death sentence.
        Lookups are read-only, so the resends cannot produce wrong or
        duplicate-effect answers.  ``min_generation`` restricts routing
        to replicas that have converged past that engine generation
        (read-your-writes after a swap).

        Raises :class:`ClusterError` when no eligible replica remains
        or nothing makes progress for ``max_stalled_rounds`` rounds.
        """
        results: List[object] = [_UNSET] * len(blocks)
        pending = list(range(len(blocks)))
        lock = threading.Lock()
        stalls = 0
        while pending:
            eligible = self._eligible(min_generation)
            if not eligible:
                raise ClusterError(
                    f"no eligible replica for {len(pending)} requests "
                    f"(alive: {self.alive()}, "
                    f"min_generation={min_generation})"
                )
            plan = self._assign(eligible, pending, keys)
            requeued: List[int] = []
            fatal: List[BaseException] = []
            answered = 0

            def pump(replica: _Replica, share: List[int]) -> None:
                nonlocal answered
                client = self._client(replica)
                for start in range(0, len(share), self.chunk):
                    part = share[start : start + self.chunk]
                    replica.inflight += len(part)
                    try:
                        answers = client.match_many(
                            [blocks[i] for i in part], window=window
                        )
                    except NetError as exc:
                        rest = share[start:]
                        if exc.code not in _REROUTE_CODES:
                            with lock:
                                fatal.append(exc)
                            return
                        replica.cooldown = 2
                        counter = {
                            int(ErrorCode.SHED): "cluster.shed_reroutes",
                            int(
                                ErrorCode.DRAINING
                            ): "cluster.drain_reroutes",
                        }.get(int(exc.code), "cluster.internal_reroutes")
                        with lock:
                            requeued.extend(rest)
                            self._count(counter)
                            self._count("cluster.rerouted", len(rest))
                        return
                    except (
                        ProtocolError,
                        NetTimeout,
                        OSError,
                    ):
                        # Transport is gone past the client's own retry
                        # budget: the replica is dead to us.
                        rest = share[start:]
                        with lock:
                            self.mark_dead(replica.name)
                            requeued.extend(rest)
                            self._count("cluster.rerouted", len(rest))
                        return
                    finally:
                        replica.inflight -= len(part)
                    if client.peer_generation is not None:
                        replica.generation = client.peer_generation
                    with lock:
                        for i, answer in zip(part, answers):
                            results[i] = answer
                        answered += len(part)
                        self._count("cluster.requests", len(part))

            threads = []
            for replica in eligible:
                share = plan[replica.name]
                if not share:
                    continue
                thread = threading.Thread(
                    target=pump,
                    args=(replica, share),
                    name=f"saxpac-replicaset-{replica.name}",
                    daemon=True,
                )
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join()
            if fatal:
                raise fatal[0]
            for replica in self.replicas.values():
                if replica.cooldown > 0:
                    replica.cooldown -= 1
            pending = requeued
            if pending and answered == 0:
                stalls += 1
                self._count("cluster.stalled_rounds")
                if stalls > self.max_stalled_rounds:
                    raise ClusterError(
                        f"{len(pending)} requests made no progress for "
                        f"{stalls} rounds (alive: {self.alive()})"
                    )
                # Back off briefly — the usual cause is a quiescing
                # replica mid-swap; it resumes within the grace window.
                time.sleep(min(0.02 * stalls, 0.2))
            elif answered:
                stalls = 0
        return results

    def match_batch(self, headers, key: Optional[int] = None):
        """One block through the set (convenience over
        :meth:`match_many`)."""
        return self.match_many(
            [headers], keys=None if key is None else [key]
        )[0]


# ----------------------------------------------------------------------
# In-process cluster harness
# ----------------------------------------------------------------------
def fold_catch_all(indices, num_body_rules: int):
    """Normalize matched-rule indices across decision-identical swaps.

    :func:`decision_identical_updates` appends clones of existing body
    rules, so every *body* winner keeps its index (the original always
    outranks its clone) — but the catch-all slides from
    ``num_body_rules`` to ``num_body_rules + inserted``.  Folding every
    index >= ``num_body_rules`` back down makes answers comparable
    against the pre-swap linear oracle: the clone indices themselves can
    never appear (their originals always match first), so everything up
    there *is* the catch-all."""
    import numpy as np

    return np.minimum(
        np.asarray(indices, dtype=np.int64), num_body_rules
    )


def decision_identical_updates(classifier, count: int, seed: int = 0):
    """``count`` insert-updates that bump the engine generation without
    changing any answer: clones of existing body rules, which land at
    lower priority and therefore never win a match.  This is what lets
    the chaos soak run a rolling swap under load while still comparing
    every response against one fixed linear oracle."""
    import random as _random

    rng = _random.Random(seed)
    if not classifier.body:
        raise ValueError("classifier has no body rules to clone")
    return [rng.choice(classifier.body) for _ in range(count)]


class LocalCluster:
    """N in-process replicas of one classifier, each a full
    :class:`~repro.runtime.service.RuntimeService` behind its own
    background :class:`~repro.net.server.NetServer`.

    The harness under ``repro cluster swap``, ``tests/test_cluster.py``
    and ``benchmarks/soak_cluster.py``: it can :meth:`kill` a replica
    (hard crash — connections abort mid-request), :meth:`restart` it
    (fresh service, update log replayed so it converges to the same
    generation), and run a :meth:`rolling_swap` that never takes more
    than one replica out of service at a time.

    ``service_factory(name)`` builds each replica's service (defaults
    to a plain ``RuntimeService(classifier)``); ``net_config`` is
    shared; ``injector_factory(name)`` arms per-replica chaos.
    """

    def __init__(
        self,
        classifier,
        replicas: int = 3,
        net_config: Optional[NetConfig] = None,
        service_factory=None,
        injector_factory=None,
    ) -> None:
        if replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self.classifier = classifier
        self.net_config = net_config
        self.service_factory = service_factory
        self.injector_factory = injector_factory
        self.names = [f"replica-{i}" for i in range(replicas)]
        self.services: Dict[str, RuntimeService] = {}
        self.handles: Dict[str, Optional[ServerHandle]] = {}
        #: Every update batch ever applied, in order — replayed into
        #: restarted replicas so they reach the cluster's generation.
        self.updates: List[object] = []
        for name in self.names:
            self._start(name)

    def _start(self, name: str) -> None:
        injector = (
            self.injector_factory(name)
            if self.injector_factory is not None
            else None
        )
        if self.service_factory is not None:
            service = self.service_factory(name)
        else:
            service = RuntimeService(self.classifier, injector=injector)
        for rule in self.updates:
            service.insert(rule)
        self.services[name] = service
        self.handles[name] = serve_background(
            service, self.net_config, injector=injector
        )

    # -- topology -------------------------------------------------------
    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        """name -> (host, port) for every live replica."""
        return {
            name: ("127.0.0.1", handle.port)
            for name, handle in self.handles.items()
            if handle is not None
        }

    def replica_set(self, **kwargs) -> ReplicaSet:
        """A :class:`ReplicaSet` over the current live replicas."""
        return ReplicaSet(self.endpoints(), **kwargs)

    def generations(self) -> Dict[str, int]:
        """Server-side truth: each live replica's engine generation."""
        return {
            name: self.services[name].swap.generation
            for name, handle in self.handles.items()
            if handle is not None
        }

    # -- chaos ----------------------------------------------------------
    def kill(self, name: str) -> None:
        """Hard-crash one replica: abort its connections mid-request,
        close its listener, stop its loop.  No drain, no goodbye."""
        handle = self.handles.get(name)
        if handle is None:
            return
        handle.kill()
        self.handles[name] = None
        self.services[name].close()

    def restart(self, name: str) -> int:
        """Bring a killed replica back on a *fresh port* with the full
        update log replayed (same rules, same generation as a replica
        that lived through every swap).  Returns the new port."""
        if self.handles.get(name) is not None:
            raise ClusterError(f"{name} is still running")
        self._start(name)
        return self.handles[name].port

    # -- control plane --------------------------------------------------
    def rolling_swap(
        self,
        updates: Sequence,
        grace_s: float = 10.0,
    ) -> Dict[str, List[str]]:
        """Apply ``updates`` to every live replica, one replica at a
        time, with zero downtime: quiesce (new requests bounce with
        ``DRAINING`` and the replica set routes them to the other N-1),
        insert the batch (each accepted insert rebuilds and bumps the
        generation), resume, move to the next.  Dead replicas are
        skipped — the log replay in :meth:`restart` catches them up.

        Returns ``{"swapped": [...], "skipped": [...],
        "dirty": [...]}`` (``dirty`` = quiesce grace expired before
        in-flight hit zero; the swap still proceeds — generation
        monotonicity keeps the stamps truthful).
        """
        self.updates.extend(updates)
        swapped: List[str] = []
        skipped: List[str] = []
        dirty: List[str] = []
        for name in self.names:
            handle = self.handles.get(name)
            if handle is None:
                skipped.append(name)
                continue
            if not handle.quiesce(grace_s):
                dirty.append(name)
            try:
                for rule in updates:
                    self.services[name].insert(rule)
            finally:
                handle.resume()
            swapped.append(name)
        return {"swapped": swapped, "skipped": skipped, "dirty": dirty}

    # -- lifecycle ------------------------------------------------------
    def stop(self) -> Dict[str, bool]:
        """Drain and stop every live replica; name -> clean-drain."""
        out: Dict[str, bool] = {}
        for name, handle in self.handles.items():
            if handle is None:
                continue
            out[name] = handle.stop()
            self.handles[name] = None
            self.services[name].close()
        return out

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
