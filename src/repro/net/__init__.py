"""repro.net — the wire serving layer.

Turns the in-process :class:`~repro.runtime.service.RuntimeService`
into a TCP service: a length-prefixed binary protocol
(:mod:`repro.net.protocol`), an asyncio server with an adaptive
request coalescer (:mod:`repro.net.server`), and a blocking pipelined
client (:mod:`repro.net.client`).  ``python -m repro serve`` and
``python -m repro client`` are the CLI front ends.
"""

from .client import NetClient, NetError, NetTimeout
from .protocol import (
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    PayloadError,
    ProtocolError,
)
from .server import NetConfig, NetServer, ServerHandle, serve_background

__all__ = [
    "ErrorCode",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "NetClient",
    "NetConfig",
    "NetError",
    "NetServer",
    "NetTimeout",
    "PayloadError",
    "ProtocolError",
    "ServerHandle",
    "serve_background",
]
