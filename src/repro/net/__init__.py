"""repro.net — the wire serving layer.

Turns the in-process :class:`~repro.runtime.service.RuntimeService`
into a TCP service: a length-prefixed binary protocol
(:mod:`repro.net.protocol`), an asyncio server with an adaptive
request coalescer (:mod:`repro.net.server`), and a blocking pipelined
client (:mod:`repro.net.client`).  ``python -m repro serve`` and
``python -m repro client`` are the CLI front ends.

On top of single-server serving, :mod:`repro.net.cluster` adds the
replicated tier: :class:`ReplicaSet` routes pipelined requests across
N replicas (rendezvous or least-inflight) with failover and
read-your-writes generation routing; :class:`LocalCluster` stands N
in-process replicas up for the chaos soak, kill/restart drills and the
``repro cluster swap`` rolling-update orchestration.
"""

from .client import NetClient, NetError, NetTimeout
from .cluster import (
    ClusterError,
    LocalCluster,
    ReplicaSet,
    decision_identical_updates,
    fold_catch_all,
    replica_for,
)
from .protocol import (
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    PayloadError,
    ProtocolError,
)
from .server import NetConfig, NetServer, ServerHandle, serve_background

__all__ = [
    "ClusterError",
    "ErrorCode",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "LocalCluster",
    "NetClient",
    "NetConfig",
    "NetError",
    "NetServer",
    "NetTimeout",
    "PayloadError",
    "ProtocolError",
    "ReplicaSet",
    "ServerHandle",
    "decision_identical_updates",
    "fold_catch_all",
    "replica_for",
    "serve_background",
]
