"""The SAX-PAC wire protocol: length-prefixed binary frames.

Every frame starts with a fixed 20-byte header::

    offset  size  field
    0       4     magic       b"SXPC"
    4       1     version     1
    5       1     frame type  (FrameType)
    6       2     flags       bit 0 = FLAG_TRACE, rest reserved (0)
    8       8     request id  uint64 LE (echoed on the response)
    16      4     payload len uint32 LE
    20      ...   payload

All integers are little-endian.  Payloads by frame type:

``MATCH_REQUEST``
    ``k`` (uint16), ``count`` (uint32), then ``count * k`` uint32 header
    field values, row major.  The receiver decodes the packet block
    zero-copy with ``np.frombuffer`` and feeds it straight into
    ``match_batch`` — this is what makes request coalescing pay: merged
    requests become one contiguous ``(B, k)`` lookup.
``MATCH_RESPONSE``
    ``count`` (uint32), then ``count`` uint32 matched rule indices, in
    request order.
``ERROR``
    ``code`` (uint16, an :class:`ErrorCode`), then a UTF-8 message.
``PING`` / ``PONG``
    empty payload; ``PONG`` echoes the ping's request id.

**Trace-context extension.**  A frame whose header flags carry
:data:`FLAG_TRACE` prefixes its payload with a fixed 17-byte trace
block — ``trace_id`` (uint64), ``parent_span_id`` (uint64), ``sampled``
(uint8) — before the regular payload.  The extension is negotiated, not
assumed: a client that wants tracing sends its ``PING`` with
``FLAG_TRACE`` set, and only starts prefixing requests once the ``PONG``
echoes the flag back.  Peers that predate the extension pack flags as 0
everywhere (the field was reserved-zero in the original v1 layout), so
the handshake degrades silently and the byte stream stays identical to
an untraced session.  :func:`split_trace_context` strips the block so
the per-type decoders above never see it.

**Generation-stamp extension.**  A frame whose flags carry
:data:`FLAG_GENERATION` prefixes its payload with a fixed 8-byte
``generation`` (uint64) block — the sender's serving-engine generation
(:attr:`~repro.runtime.swap.HotSwapRuntime.generation`).  Servers stamp
``PONG`` and ``MATCH_RESPONSE`` frames with it so a replica-set client
(:mod:`repro.net.cluster`) can track snapshot-version convergence
across replicas without extra round trips.  Like tracing it is
negotiated per connection: a ``PING`` carrying ``FLAG_GENERATION``
asks; the ``PONG`` echoes the flag (with the generation as payload
prefix) and only then are responses stamped.  When a frame carries
*both* extensions the trace block comes first, then the generation
block, then the regular payload — strip with
:func:`split_trace_context` before :func:`split_generation`.

Framing errors (bad magic, unknown version, oversized payload) poison
the byte stream — after one, the receiver cannot find the next frame
boundary — so they raise :class:`ProtocolError` and the connection must
be torn down after an ``ERROR`` frame.  Payload errors (a count that
disagrees with the payload length, an unknown frame type) are scoped to
one frame: the server answers with an ``ERROR`` frame carrying the
request id and keeps the connection.

Wire v1 carries header fields as uint32, which covers every 6-field
classifier in this repo; schemas with fields wider than 32 bits (IPv6
prefixes) are rejected at serve time by :func:`check_wire_schema`.
"""

from __future__ import annotations

import enum
import struct
from typing import List, NamedTuple, Sequence, Tuple

import numpy as np

__all__ = [
    "FLAG_GENERATION",
    "FLAG_TRACE",
    "FRAME_HEADER",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "ErrorCode",
    "GEN_BLOCK",
    "MAGIC",
    "MAX_PAYLOAD",
    "PayloadError",
    "ProtocolError",
    "TRACE_BLOCK",
    "TraceContext",
    "VERSION",
    "check_wire_schema",
    "decode_error",
    "decode_match_request",
    "decode_match_response",
    "encode_error",
    "encode_frame",
    "encode_match_request",
    "encode_match_response",
    "split_generation",
    "split_trace_context",
]

#: First four bytes of every frame.
MAGIC = b"SXPC"

#: Wire protocol version; bumped on any incompatible layout change.
VERSION = 1

#: Fixed frame header: magic, version, type, flags, request id,
#: payload length.
FRAME_HEADER = struct.Struct("<4sBBHQI")

#: Hard payload cap (refuse absurd length prefixes before allocating).
MAX_PAYLOAD = 16 * 1024 * 1024

#: Header flag: the payload starts with a :data:`TRACE_BLOCK` trace
#: context.  Must be negotiated (PING/PONG flag echo) before use.
FLAG_TRACE = 0x0001

#: Trace-context extension block: trace id, parent span id, sampled.
TRACE_BLOCK = struct.Struct("<QQB")

#: Header flag: the payload starts with a :data:`GEN_BLOCK` engine
#: generation (after the trace block when both flags are set).  Must be
#: negotiated (PING/PONG flag echo) before use.
FLAG_GENERATION = 0x0002

#: Generation-stamp extension block: the sender's engine generation.
GEN_BLOCK = struct.Struct("<Q")

_REQUEST_PREFIX = struct.Struct("<HI")
_RESPONSE_PREFIX = struct.Struct("<I")
_ERROR_PREFIX = struct.Struct("<H")


class FrameType(enum.IntEnum):
    """Discriminator byte at offset 5."""

    MATCH_REQUEST = 1
    MATCH_RESPONSE = 2
    ERROR = 3
    PING = 4
    PONG = 5


class ErrorCode(enum.IntEnum):
    """First two payload bytes of an ``ERROR`` frame."""

    #: Malformed frame or payload; framing errors also close the
    #: connection.
    PROTOCOL = 1
    #: The server shed the request at the in-flight watermark; safe to
    #: retry after backoff.
    SHED = 2
    #: The lookup itself failed server side; the request was not served.
    INTERNAL = 3
    #: The server is draining and no longer accepts requests.
    DRAINING = 4


class ProtocolError(RuntimeError):
    """Unrecoverable framing violation; the stream can no longer be
    trusted and the connection must be closed."""


class PayloadError(ValueError):
    """A well-framed payload that does not parse; scoped to one frame
    (the connection survives)."""


class TraceContext(NamedTuple):
    """The wire form of a trace context: enough for the server to parent
    its spans under the client's request span.

    A NamedTuple, not a frozen dataclass: one is built per traced
    request on both ends, and frozen-dataclass construction (which goes
    through ``object.__setattr__``) costs microseconds on that path.
    """

    trace_id: int
    parent_span_id: int
    sampled: bool = True

    def pack(self) -> bytes:
        return TRACE_BLOCK.pack(
            self.trace_id & 0xFFFFFFFFFFFFFFFF,
            self.parent_span_id & 0xFFFFFFFFFFFFFFFF,
            1 if self.sampled else 0,
        )


class Frame(NamedTuple):
    """One decoded frame (payload still raw bytes).

    ``type`` is a plain int when the peer sent a type this version does
    not know — framing stays intact, so the receiver answers with an
    ``ERROR`` frame instead of dropping the connection.  NamedTuple for
    the same construction-cost reason as :class:`TraceContext` — one is
    built per decoded frame.
    """

    type: int
    request_id: int
    payload: bytes
    flags: int = 0


def encode_frame(
    frame_type: int,
    request_id: int,
    payload: bytes = b"",
    flags: int = 0,
) -> bytes:
    """Serialize one frame (header + payload)."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte cap"
        )
    header = FRAME_HEADER.pack(
        MAGIC,
        VERSION,
        int(frame_type),
        flags,
        request_id,
        len(payload),
    )
    return header + payload


def encode_match_request(
    request_id: int,
    headers: Sequence[Sequence[int]],
    trace: "TraceContext | None" = None,
) -> bytes:
    """A ``MATCH_REQUEST`` carrying ``headers`` as contiguous uint32.

    With ``trace``, the payload is prefixed with the 17-byte trace block
    and the frame carries :data:`FLAG_TRACE` — only do this after the
    peer echoed the flag on PONG (see module docstring).
    """
    arr = np.asarray(headers)
    if arr.ndim != 2:
        raise PayloadError(
            f"headers must be a (count, k) block; got shape {arr.shape}"
        )
    if arr.size and (arr.min() < 0 or arr.max() > 0xFFFFFFFF):
        raise PayloadError(
            "header field values must fit uint32 on wire v1"
        )
    block = np.ascontiguousarray(arr, dtype="<u4")
    count, k = block.shape
    payload = _REQUEST_PREFIX.pack(k, count) + block.tobytes()
    if trace is None:
        return encode_frame(FrameType.MATCH_REQUEST, request_id, payload)
    return encode_frame(
        FrameType.MATCH_REQUEST,
        request_id,
        trace.pack() + payload,
        flags=FLAG_TRACE,
    )


def split_trace_context(frame: Frame) -> "Tuple[TraceContext | None, Frame]":
    """Strip a frame's trace block, if flagged.

    Returns ``(trace, frame)`` where ``frame`` is safe to hand to the
    per-type decoders (trace prefix removed, flag cleared).  Frames
    without :data:`FLAG_TRACE` pass through untouched.
    """
    if not frame.flags & FLAG_TRACE:
        return None, frame
    payload = frame.payload
    if len(payload) < TRACE_BLOCK.size:
        raise PayloadError(
            "frame flags declare a trace context but the payload is "
            f"{len(payload)} bytes (need {TRACE_BLOCK.size})"
        )
    trace_id, parent_span_id, sampled = TRACE_BLOCK.unpack_from(payload)
    trace = TraceContext(trace_id, parent_span_id, bool(sampled))
    stripped = Frame(
        frame.type,
        frame.request_id,
        payload[TRACE_BLOCK.size :],
        frame.flags & ~FLAG_TRACE,
    )
    return trace, stripped


def split_generation(frame: Frame) -> "Tuple[int | None, Frame]":
    """Strip a frame's generation stamp, if flagged.

    Returns ``(generation, frame)`` where ``frame`` is safe to hand to
    the per-type decoders (stamp removed, flag cleared).  Frames without
    :data:`FLAG_GENERATION` pass through untouched.  When a frame also
    carries :data:`FLAG_TRACE`, call :func:`split_trace_context` first —
    the trace block precedes the generation block.
    """
    if not frame.flags & FLAG_GENERATION:
        return None, frame
    payload = frame.payload
    if len(payload) < GEN_BLOCK.size:
        raise PayloadError(
            "frame flags declare a generation stamp but the payload is "
            f"{len(payload)} bytes (need {GEN_BLOCK.size})"
        )
    (generation,) = GEN_BLOCK.unpack_from(payload)
    stripped = Frame(
        frame.type,
        frame.request_id,
        payload[GEN_BLOCK.size :],
        frame.flags & ~FLAG_GENERATION,
    )
    return generation, stripped


def decode_match_request(frame: Frame) -> np.ndarray:
    """Zero-copy ``(count, k)`` uint32 view of a ``MATCH_REQUEST``."""
    payload = frame.payload
    if len(payload) < _REQUEST_PREFIX.size:
        raise PayloadError("match request payload shorter than its prefix")
    k, count = _REQUEST_PREFIX.unpack_from(payload)
    if k == 0:
        raise PayloadError("match request declares zero fields")
    expected = _REQUEST_PREFIX.size + 4 * k * count
    if len(payload) != expected:
        raise PayloadError(
            f"match request declares {count}x{k} fields "
            f"({expected} bytes) but carries {len(payload)}"
        )
    block = np.frombuffer(payload, dtype="<u4", offset=_REQUEST_PREFIX.size)
    return block.reshape(count, k)


def encode_match_response(
    request_id: int,
    indices: Sequence[int],
    generation: "int | None" = None,
) -> bytes:
    """A ``MATCH_RESPONSE`` carrying matched rule indices as uint32.

    With ``generation``, the payload is prefixed with the 8-byte
    generation stamp and the frame carries :data:`FLAG_GENERATION` —
    only do this after the peer asked for stamps on its PING.
    """
    arr = np.ascontiguousarray(indices, dtype="<u4")
    payload = _RESPONSE_PREFIX.pack(arr.shape[0]) + arr.tobytes()
    if generation is None:
        return encode_frame(FrameType.MATCH_RESPONSE, request_id, payload)
    return encode_frame(
        FrameType.MATCH_RESPONSE,
        request_id,
        GEN_BLOCK.pack(generation) + payload,
        flags=FLAG_GENERATION,
    )


def decode_match_response(frame: Frame) -> np.ndarray:
    """The uint32 rule-index array of a ``MATCH_RESPONSE``."""
    payload = frame.payload
    if len(payload) < _RESPONSE_PREFIX.size:
        raise PayloadError("match response payload shorter than its prefix")
    (count,) = _RESPONSE_PREFIX.unpack_from(payload)
    expected = _RESPONSE_PREFIX.size + 4 * count
    if len(payload) != expected:
        raise PayloadError(
            f"match response declares {count} indices "
            f"({expected} bytes) but carries {len(payload)}"
        )
    return np.frombuffer(payload, dtype="<u4", offset=_RESPONSE_PREFIX.size)


def encode_error(
    request_id: int,
    code: int,
    message: str = "",
) -> bytes:
    """An ``ERROR`` frame scoped to ``request_id`` (0 = connection)."""
    payload = _ERROR_PREFIX.pack(int(code)) + message.encode("utf-8")
    return encode_frame(FrameType.ERROR, request_id, payload)


def decode_error(frame: Frame) -> Tuple[int, str]:
    """``(code, message)`` of an ``ERROR`` frame."""
    payload = frame.payload
    if len(payload) < _ERROR_PREFIX.size:
        raise PayloadError("error payload shorter than its prefix")
    (code,) = _ERROR_PREFIX.unpack_from(payload)
    message = payload[_ERROR_PREFIX.size :].decode("utf-8", "replace")
    return code, message


def check_wire_schema(schema) -> None:
    """Refuse schemas wire v1 cannot carry (fields wider than 32 bits)."""
    wide = [spec.name for spec in schema if spec.width > 32]
    if wide:
        raise ProtocolError(
            f"wire protocol v1 carries uint32 fields; schema fields "
            f"{wide} are wider than 32 bits"
        )


class FrameDecoder:
    """Incremental frame parser over a byte stream.

    Feed it whatever the socket produced; it returns every complete
    frame and buffers the rest.  A framing violation (bad magic, wrong
    version, oversized payload) raises :class:`ProtocolError`: the
    buffer position can no longer be trusted, so the caller must drop
    the connection.
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD) -> None:
        self.max_payload = max_payload
        self._buffer = bytearray()

    def __len__(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Consume ``data``; return all frames completed by it."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> "Frame | None":
        buffer = self._buffer
        if len(buffer) < FRAME_HEADER.size:
            return None
        magic, version, ftype, flags, request_id, length = (
            FRAME_HEADER.unpack_from(buffer)
        )
        if magic != MAGIC:
            raise ProtocolError(
                f"bad magic {bytes(magic)!r} (expected {MAGIC!r})"
            )
        if version != VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} "
                f"(expected {VERSION})"
            )
        if length > self.max_payload:
            raise ProtocolError(
                f"declared payload of {length} bytes exceeds the "
                f"{self.max_payload}-byte cap"
            )
        end = FRAME_HEADER.size + length
        if len(buffer) < end:
            return None
        payload = bytes(buffer[FRAME_HEADER.size : end])
        del buffer[:end]
        try:
            ftype = FrameType(ftype)
        except ValueError:
            pass  # unknown type: framing is fine, let the caller reject
        return Frame(ftype, request_id, payload, flags)
