"""`NetServer`: the asyncio TCP serving layer over `RuntimeService`.

The server turns the in-process runtime into a wire service without
giving up the batched fast path:

* **framing** — every connection speaks the length-prefixed binary
  protocol of :mod:`repro.net.protocol`; packet blocks decode zero-copy
  into ``(count, k)`` uint32 arrays;
* **coalescing** — an adaptive micro-batcher merges small pipelined
  requests (across connections) into one contiguous lookup: requests
  queue while a lookup is in flight and are drained greedily when the
  batcher comes back around, with an optional ``coalesce_wait_ms``
  window that only arms once a batch is already forming, so an idle
  server adds no latency.  Merged requests bound by ``max_batch``
  packets;
* **backpressure** — each connection holds a ``max_inflight`` semaphore:
  when a client pipelines past it, the server stops reading that socket
  (TCP backpressure) instead of buffering unboundedly; the wrapped
  :class:`~repro.runtime.service.RuntimeService` still sheds at its
  ``shed_watermark``, which comes back as a retryable ``SHED`` error
  frame;
* **degradation, not crashes** — payload errors answer with ``ERROR``
  frames and keep the connection; framing errors answer then close;
  lookup failures answer ``INTERNAL``; the ``net.conn`` chaos site can
  tear down connections, slow responses, or corrupt outgoing frames;
* **graceful drain** — :meth:`NetServer.drain` stops accepting, answers
  queued requests, rejects new ones with ``DRAINING``, and closes every
  connection; in-flight accounting ends at zero.

Everything lands in telemetry under ``net.*`` (counters, the
``net.request`` / ``net.batch`` latency histograms, spans of the same
names) and is exported by the usual ``/metrics`` endpoint.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..runtime.service import LoadShedError, RuntimeService
from .protocol import (
    MAX_PAYLOAD,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    PayloadError,
    ProtocolError,
    check_wire_schema,
    decode_match_request,
    encode_error,
    encode_frame,
    encode_match_response,
)

__all__ = ["NetConfig", "NetServer", "ServerHandle", "serve_background"]


@dataclass(frozen=True)
class NetConfig:
    """Knobs of the wire layer (the runtime's knobs ride on the
    service's own :class:`~repro.runtime.service.RuntimeConfig`).

    ``max_batch`` caps how many packets one coalesced lookup may carry;
    ``coalesce_wait_ms`` bounds how long a forming batch may wait for
    more requests (0 disables the wait; requests still coalesce while a
    lookup occupies the executor); ``max_inflight`` bounds outstanding
    requests per connection before the server stops reading the socket;
    ``drain_grace_s`` bounds how long :meth:`NetServer.drain` waits for
    queued requests before tearing connections down.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 8192
    coalesce_wait_ms: float = 0.5
    max_inflight: int = 32
    max_payload: int = MAX_PAYLOAD
    drain_grace_s: float = 5.0
    write_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.coalesce_wait_ms < 0:
            raise ValueError("coalesce_wait_ms must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_payload < 1:
            raise ValueError("max_payload must be >= 1")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")
        if self.write_timeout_s <= 0:
            raise ValueError("write_timeout_s must be > 0")


class _Pending:
    """One accepted match request waiting for (or inside) a lookup."""

    __slots__ = (
        "conn",
        "request_id",
        "headers",
        "count",
        "corrupt",
        "enqueued",
    )

    def __init__(self, conn, request_id, headers, corrupt, enqueued):
        self.conn = conn
        self.request_id = request_id
        self.headers = headers
        self.count = int(headers.shape[0])
        self.corrupt = corrupt
        self.enqueued = enqueued


#: Queue sentinel that stops the batch loop.
_SHUTDOWN = object()


class _Connection:
    """Per-connection state: decoder, write lock, inflight semaphore."""

    def __init__(self, server: "NetServer", reader, writer) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(server.config.max_payload)
        self.semaphore = asyncio.Semaphore(server.config.max_inflight)
        self.write_lock = asyncio.Lock()
        self.open = True

    async def send(self, data: bytes) -> bool:
        """Write one frame; False when the peer is gone.

        The drain is bounded by ``write_timeout_s`` so one client that
        stops reading cannot head-of-line-block the batch loop — it gets
        aborted instead.
        """
        if not self.open:
            return False
        try:
            async with self.write_lock:
                self.writer.write(data)
                await asyncio.wait_for(
                    self.writer.drain(),
                    self.server.config.write_timeout_s,
                )
            return True
        except (OSError, RuntimeError, asyncio.TimeoutError):
            self.abort()
            return False

    def abort(self) -> None:
        """Tear the transport down immediately."""
        if self.open:
            self.open = False
            try:
                self.writer.transport.abort()
            except Exception:
                pass


class NetServer:
    """Asyncio TCP front end over one :class:`RuntimeService`."""

    def __init__(
        self,
        service: RuntimeService,
        config: Optional[NetConfig] = None,
        injector=None,
    ) -> None:
        self.service = service
        self.config = config or NetConfig()
        self.telemetry = service.telemetry
        self.injector = injector if injector is not None else service.injector
        schema = service.serving_classifier().schema
        check_wire_schema(schema)
        self.num_fields = len(schema)
        service.net = self
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: Optional[asyncio.Queue] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._connections: set = set()
        self._inflight = 0
        self._draining = False
        self._idle = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """Bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def inflight(self) -> int:
        """Requests accepted but not yet answered."""
        return self._inflight

    async def start(self) -> "NetServer":
        """Bind and start accepting connections."""
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._batch_task = asyncio.ensure_future(self._batch_loop())
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
        )
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (``start`` must have been awaited)."""
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    async def drain(self) -> bool:
        """Graceful shutdown: stop accepting, answer what is queued,
        close every connection.  True when everything in flight was
        answered within ``drain_grace_s``."""
        self._draining = True
        if self._queue is None:
            return True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = True
        try:
            await asyncio.wait_for(
                self._idle.wait(), self.config.drain_grace_s
            )
        except asyncio.TimeoutError:
            clean = False
        await self._queue.put(_SHUTDOWN)
        if self._batch_task is not None:
            try:
                await asyncio.wait_for(
                    self._batch_task, self.config.drain_grace_s
                )
            except asyncio.TimeoutError:
                self._batch_task.cancel()
                clean = False
        for conn in list(self._connections):
            conn.abort()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.telemetry.incr("net.drains")
        if not clean:
            self.telemetry.incr("net.dirty_drains")
        return clean

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        conn = _Connection(self, reader, writer)
        self._connections.add(conn)
        self.telemetry.incr("net.connections")
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            self._connections.discard(conn)
            self.telemetry.incr("net.disconnects")
            conn.open = False
            try:
                writer.close()
            except Exception:
                pass

    async def _read_loop(self, conn: _Connection) -> None:
        while True:
            try:
                data = await conn.reader.read(1 << 16)
            except ConnectionError:
                return
            if not data:
                return
            try:
                frames = conn.decoder.feed(data)
            except ProtocolError as exc:
                # Framing is gone: apologise once, then hang up.
                self.telemetry.incr("net.protocol_errors")
                await conn.send(
                    encode_error(0, ErrorCode.PROTOCOL, str(exc))
                )
                conn.abort()
                return
            for frame in frames:
                if self.injector.enabled and not self._chaos_frame(conn):
                    return
                if not await self._dispatch(conn, frame):
                    return

    def _chaos_frame(self, conn: _Connection) -> bool:
        """Consult the ``net.conn`` chaos site; False tears the
        connection down (an injected disconnect)."""
        try:
            self.injector.fire("net.conn")
        except Exception:
            self.telemetry.incr("net.chaos_disconnects")
            conn.abort()
            return False
        return True

    async def _dispatch(self, conn: _Connection, frame: Frame) -> bool:
        """Route one frame; False ends the read loop."""
        if frame.type == FrameType.MATCH_REQUEST:
            return await self._accept_request(conn, frame)
        if frame.type == FrameType.PING:
            self.telemetry.incr("net.pings")
            return await conn.send(
                encode_frame(FrameType.PONG, frame.request_id)
            )
        self.telemetry.incr("net.protocol_errors")
        return await conn.send(
            encode_error(
                frame.request_id,
                ErrorCode.PROTOCOL,
                f"unexpected frame type {int(frame.type)}",
            )
        )

    async def _accept_request(self, conn: _Connection, frame: Frame) -> bool:
        telemetry = self.telemetry
        try:
            block = decode_match_request(frame)
        except PayloadError as exc:
            telemetry.incr("net.protocol_errors")
            return await conn.send(
                encode_error(frame.request_id, ErrorCode.PROTOCOL, str(exc))
            )
        if block.shape[1] != self.num_fields:
            telemetry.incr("net.protocol_errors")
            return await conn.send(
                encode_error(
                    frame.request_id,
                    ErrorCode.PROTOCOL,
                    f"request carries {block.shape[1]} fields; "
                    f"schema has {self.num_fields}",
                )
            )
        if self._draining:
            telemetry.incr("net.drain_rejects")
            return await conn.send(
                encode_error(
                    frame.request_id,
                    ErrorCode.DRAINING,
                    "server is draining",
                )
            )
        corrupt = self.injector.enabled and self.injector.corrupted(
            "net.conn"
        )
        # Backpressure: when this connection has max_inflight requests
        # outstanding, stop here — which stops the read loop, which
        # stops reading the socket.
        await conn.semaphore.acquire()
        self._inflight += 1
        self._idle.clear()
        telemetry.incr("net.requests")
        telemetry.incr("net.request_packets", block.shape[0])
        pending = _Pending(
            conn, frame.request_id, block, corrupt, time.perf_counter()
        )
        await self._queue.put(pending)
        return True

    # ------------------------------------------------------------------
    # Coalescing batch loop
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        queue = self._queue
        max_batch = self.config.max_batch
        wait_s = self.config.coalesce_wait_ms / 1e3
        loop = asyncio.get_running_loop()
        stop = False
        while not stop:
            item = await queue.get()
            if item is _SHUTDOWN:
                return
            batch: List[_Pending] = [item]
            packets = item.count
            # Greedy merge of everything already queued (requests that
            # arrived while the previous lookup ran).
            while packets < max_batch:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _SHUTDOWN:
                    stop = True
                    break
                batch.append(item)
                packets += item.count
            # Adaptive window: once a batch is forming, briefly hold the
            # door for stragglers; an idle stream (batch of one) is
            # served immediately, so light traffic pays no added delay.
            if not stop and wait_s > 0 and 1 < len(batch):
                deadline = loop.time() + wait_s
                while packets < max_batch:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                    if item is _SHUTDOWN:
                        stop = True
                        break
                    batch.append(item)
                    packets += item.count
            await self._serve_batch(batch)
            if self._inflight == 0:
                self._idle.set()

    async def _serve_batch(self, batch: List[_Pending]) -> None:
        telemetry = self.telemetry
        loop = asyncio.get_running_loop()
        block = (
            batch[0].headers
            if len(batch) == 1
            else np.concatenate([p.headers for p in batch])
        )
        telemetry.incr("net.lookups")
        telemetry.incr("net.lookup_packets", block.shape[0])
        if len(batch) > 1:
            telemetry.incr("net.coalesced_requests", len(batch) - 1)
        start = time.perf_counter()
        try:
            with telemetry.span(
                "net.batch", requests=len(batch), packets=int(block.shape[0])
            ):
                results = await loop.run_in_executor(
                    None, self.service.match_batch, block
                )
        except LoadShedError as exc:
            telemetry.incr("net.shed", len(batch))
            await self._fail_batch(batch, ErrorCode.SHED, str(exc))
            return
        except Exception as exc:
            telemetry.incr("net.lookup_errors", len(batch))
            await self._fail_batch(batch, ErrorCode.INTERNAL, str(exc))
            return
        telemetry.observe("net.batch", time.perf_counter() - start)
        indices = np.fromiter(
            (r.index for r in results), dtype="<u4", count=len(results)
        )
        offset = 0
        for pending in batch:
            await self._respond_match(
                pending, indices[offset : offset + pending.count]
            )
            offset += pending.count

    async def _respond_match(self, pending: _Pending, indices) -> None:
        telemetry = self.telemetry
        with telemetry.span(
            "net.request",
            packets=pending.count,
            wait_ms=round(
                (time.perf_counter() - pending.enqueued) * 1e3, 3
            ),
        ):
            data = encode_match_response(pending.request_id, indices)
            if pending.corrupt:
                # Chaos corrupt-frame: flip the magic so the client's
                # decoder rejects the stream and reconnects.
                telemetry.incr("net.corrupted_frames")
                data = b"\x00" + data[1:]
            sent = await pending.conn.send(data)
        if sent:
            telemetry.incr("net.responses")
        telemetry.observe(
            "net.request", time.perf_counter() - pending.enqueued
        )
        self._finish(pending)

    async def _fail_batch(
        self, batch: List[_Pending], code: ErrorCode, message: str
    ) -> None:
        for pending in batch:
            await pending.conn.send(
                encode_error(pending.request_id, code, message)
            )
            self.telemetry.observe(
                "net.request", time.perf_counter() - pending.enqueued
            )
            self._finish(pending)

    def _finish(self, pending: _Pending) -> None:
        pending.conn.semaphore.release()
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()


class ServerHandle:
    """A `NetServer` running on a background event-loop thread.

    What tests, benchmarks and the CLI client path use to stand a server
    up without going async themselves: ``handle.port`` to connect,
    ``handle.stop()`` (or the context manager) to drain and join.
    """

    def __init__(self, server: NetServer, loop, thread) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread
        self.drained: Optional[bool] = None

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self.server.port

    def stop(self, timeout: float = 10.0) -> bool:
        """Drain the server, stop the loop, join the thread."""
        if self.drained is None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self.loop
            )
            try:
                self.drained = future.result(timeout)
            except Exception:
                self.drained = False
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout)
        return bool(self.drained)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_background(
    service: RuntimeService,
    config: Optional[NetConfig] = None,
    injector=None,
) -> ServerHandle:
    """Start a :class:`NetServer` on a fresh daemon thread and return a
    :class:`ServerHandle` once the port is bound."""
    server = NetServer(service, config, injector=injector)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _boot() -> None:
            try:
                await server.start()
            except BaseException as exc:
                failure.append(exc)
            finally:
                started.set()

        loop.run_until_complete(_boot())
        if not failure:
            loop.run_forever()
        loop.close()

    thread = threading.Thread(
        target=_run, name="saxpac-net-server", daemon=True
    )
    thread.start()
    started.wait(10.0)
    if failure:
        thread.join(5.0)
        raise failure[0]
    return ServerHandle(server, loop, thread)
