"""`NetServer`: the asyncio TCP serving layer over `RuntimeService`.

The server turns the in-process runtime into a wire service without
giving up the batched fast path:

* **framing** — every connection speaks the length-prefixed binary
  protocol of :mod:`repro.net.protocol`; packet blocks decode zero-copy
  into ``(count, k)`` uint32 arrays;
* **coalescing** — an adaptive micro-batcher merges small pipelined
  requests (across connections) into one contiguous lookup: requests
  queue while a lookup is in flight and are drained greedily when the
  batcher comes back around, with an optional ``coalesce_wait_ms``
  window that only arms once a batch is already forming, so an idle
  server adds no latency.  Merged requests bound by ``max_batch``
  packets;
* **backpressure** — each connection holds a ``max_inflight`` semaphore:
  when a client pipelines past it, the server stops reading that socket
  (TCP backpressure) instead of buffering unboundedly; the wrapped
  :class:`~repro.runtime.service.RuntimeService` still sheds at its
  ``shed_watermark``, which comes back as a retryable ``SHED`` error
  frame;
* **degradation, not crashes** — payload errors answer with ``ERROR``
  frames and keep the connection; framing errors answer then close;
  lookup failures answer ``INTERNAL``; the ``net.conn`` chaos site can
  tear down connections, slow responses, or corrupt outgoing frames;
* **graceful drain** — :meth:`NetServer.drain` stops accepting, answers
  queued requests, rejects new ones with ``DRAINING``, and closes every
  connection; in-flight accounting ends at zero.

Everything lands in telemetry under ``net.*`` (counters, the
``net.request`` / ``net.batch`` latency histograms, spans of the same
names) and is exported by the usual ``/metrics`` endpoint.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..obs.flightrec import FlightRecorder
from ..obs.stages import STAGES, StageWaterfall
from ..obs.tracing import SpanContext
from ..runtime.service import LoadShedError, RuntimeService
from .protocol import (
    FLAG_GENERATION,
    FLAG_TRACE,
    GEN_BLOCK,
    MAX_PAYLOAD,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    PayloadError,
    ProtocolError,
    check_wire_schema,
    decode_match_request,
    encode_error,
    encode_frame,
    encode_match_response,
    split_trace_context,
)

__all__ = ["NetConfig", "NetServer", "ServerHandle", "serve_background"]


@dataclass(frozen=True)
class NetConfig:
    """Knobs of the wire layer (the runtime's knobs ride on the
    service's own :class:`~repro.runtime.service.RuntimeConfig`).

    ``max_batch`` caps how many packets one coalesced lookup may carry;
    ``coalesce_wait_ms`` bounds how long a forming batch may wait for
    more requests (0 disables the wait; requests still coalesce while a
    lookup occupies the executor); ``max_inflight`` bounds outstanding
    requests per connection before the server stops reading the socket;
    ``drain_grace_s`` bounds how long :meth:`NetServer.drain` waits for
    queued requests before tearing connections down.

    ``stage_waterfall`` / ``flight_recorder`` toggle the per-request
    observability layers (on by default; the overhead benchmark gate
    runs with them off as its baseline).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 8192
    coalesce_wait_ms: float = 0.5
    max_inflight: int = 32
    max_payload: int = MAX_PAYLOAD
    drain_grace_s: float = 5.0
    write_timeout_s: float = 10.0
    stage_waterfall: bool = True
    flight_recorder: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.coalesce_wait_ms < 0:
            raise ValueError("coalesce_wait_ms must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_payload < 1:
            raise ValueError("max_payload must be >= 1")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")
        if self.write_timeout_s <= 0:
            raise ValueError("write_timeout_s must be > 0")


class _Pending:
    """One accepted match request waiting for (or inside) a lookup.

    ``span`` is the server-side request span (manual lifetime — it is
    born in the connection task and finished by the batch task, so it
    cannot be a contextvar-scoped ``with`` block); ``stage_s`` is the
    request's stage durations in :data:`~repro.obs.stages.STAGES` order
    (plain floats accumulated here and handed to the waterfall in one
    ``commit_row`` call at finalize — per-stage ring writes on the hot
    path cost too much); ``picked`` is when the batch loop dequeued it;
    ``hint`` upgrades the flight-recorder verdict
    (``deadline``/``chaos``) based on what the lookup absorbed.
    """

    __slots__ = (
        "conn",
        "request_id",
        "headers",
        "count",
        "corrupt",
        "enqueued",
        "span",
        "stage_s",
        "picked",
        "hint",
    )

    def __init__(self, conn, request_id, headers, corrupt, enqueued):
        self.conn = conn
        self.request_id = request_id
        self.headers = headers
        self.count = int(headers.shape[0])
        self.corrupt = corrupt
        self.enqueued = enqueued
        self.span = None
        self.stage_s = None
        self.picked = enqueued
        self.hint = None


#: Queue sentinel that stops the batch loop.
_SHUTDOWN = object()


class _Connection:
    """Per-connection state: decoder, write lock, inflight semaphore."""

    def __init__(self, server: "NetServer", reader, writer) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(server.config.max_payload)
        self.semaphore = asyncio.Semaphore(server.config.max_inflight)
        self.write_lock = asyncio.Lock()
        self.open = True
        #: Negotiated per connection: stamp responses with the serving
        #: engine generation (the cluster tier's convergence signal).
        self.stamp_generation = False

    async def send(self, data: bytes) -> bool:
        """Write one frame; False when the peer is gone.

        The drain is bounded by ``write_timeout_s`` so one client that
        stops reading cannot head-of-line-block the batch loop — it gets
        aborted instead.
        """
        if not self.open:
            return False
        try:
            async with self.write_lock:
                self.writer.write(data)
                await asyncio.wait_for(
                    self.writer.drain(),
                    self.server.config.write_timeout_s,
                )
            return True
        except (OSError, RuntimeError, asyncio.TimeoutError):
            self.abort()
            return False

    def abort(self) -> None:
        """Tear the transport down immediately.

        ``shutdown(SHUT_RDWR)`` first: process shard workers forked
        after this connection was accepted hold duplicates of its fd,
        and closing only our copy would leave the TCP connection alive
        with the peer blocked on a socket that will never speak again.
        Shutdown acts on the connection itself, so the peer sees EOF no
        matter how many forked children still hold the fd.
        """
        if self.open:
            self.open = False
            try:
                sock = self.writer.get_extra_info("socket")
                if sock is not None:
                    sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.writer.transport.abort()
            except Exception:
                pass


class NetServer:
    """Asyncio TCP front end over one :class:`RuntimeService`."""

    def __init__(
        self,
        service: RuntimeService,
        config: Optional[NetConfig] = None,
        injector=None,
    ) -> None:
        self.service = service
        self.config = config or NetConfig()
        self.telemetry = service.telemetry
        self.injector = injector if injector is not None else service.injector
        schema = service.serving_classifier().schema
        check_wire_schema(schema)
        self.num_fields = len(schema)
        #: Per-request stage waterfall + anomaly flight recorder (both
        #: bounded, both optional via NetConfig).
        self.stages = (
            StageWaterfall() if self.config.stage_waterfall else None
        )
        self.flightrec = (
            FlightRecorder() if self.config.flight_recorder else None
        )
        service.net = self
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: Optional[asyncio.Queue] = None
        self._batch_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._connections: set = set()
        self._inflight = 0
        self._draining = False
        self._idle = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """Bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def inflight(self) -> int:
        """Requests accepted but not yet answered."""
        return self._inflight

    async def start(self) -> "NetServer":
        """Bind and start accepting connections."""
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._batch_task = asyncio.ensure_future(self._batch_loop())
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
        )
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (``start`` must have been awaited)."""
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    async def quiesce(self, grace_s: Optional[float] = None) -> bool:
        """Temporarily stop serving: reject new requests with
        ``DRAINING`` (a replica-set client reroutes them) and wait for
        everything in flight to be answered.  Unlike :meth:`drain` the
        listener and connections stay up, so :meth:`resume` brings the
        replica straight back — this is one leg of a zero-downtime
        rolling swap.  True when in-flight hit zero within the grace."""
        self._draining = True
        self.telemetry.incr("net.quiesces")
        if self._idle is None:
            return True
        try:
            await asyncio.wait_for(
                self._idle.wait(),
                self.config.drain_grace_s if grace_s is None else grace_s,
            )
            return True
        except asyncio.TimeoutError:
            return False

    def resume(self) -> None:
        """Accept requests again after :meth:`quiesce`."""
        self._draining = False
        self.telemetry.incr("net.resumes")

    async def drain(self) -> bool:
        """Graceful shutdown: stop accepting, answer what is queued,
        close every connection.  True when everything in flight was
        answered within ``drain_grace_s``."""
        self._draining = True
        if self._queue is None:
            return True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = True
        try:
            await asyncio.wait_for(
                self._idle.wait(), self.config.drain_grace_s
            )
        except asyncio.TimeoutError:
            clean = False
        await self._queue.put(_SHUTDOWN)
        if self._batch_task is not None:
            try:
                await asyncio.wait_for(
                    self._batch_task, self.config.drain_grace_s
                )
            except asyncio.TimeoutError:
                self._batch_task.cancel()
                clean = False
        for conn in list(self._connections):
            conn.abort()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.telemetry.incr("net.drains")
        if not clean:
            self.telemetry.incr("net.dirty_drains")
        return clean

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        conn = _Connection(self, reader, writer)
        self._connections.add(conn)
        self.telemetry.incr("net.connections")
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            self._connections.discard(conn)
            self.telemetry.incr("net.disconnects")
            conn.open = False
            try:
                writer.close()
            except Exception:
                pass

    async def _read_loop(self, conn: _Connection) -> None:
        while True:
            try:
                data = await conn.reader.read(1 << 16)
            except ConnectionError:
                return
            if not data:
                return
            try:
                frames = conn.decoder.feed(data)
            except ProtocolError as exc:
                # Framing is gone: apologise once, then hang up.
                self.telemetry.incr("net.protocol_errors")
                await conn.send(
                    encode_error(0, ErrorCode.PROTOCOL, str(exc))
                )
                conn.abort()
                return
            for frame in frames:
                if self.injector.enabled and not self._chaos_frame(conn):
                    return
                if not await self._dispatch(conn, frame):
                    return

    def _chaos_frame(self, conn: _Connection) -> bool:
        """Consult the ``net.conn`` chaos site; False tears the
        connection down (an injected disconnect)."""
        try:
            self.injector.fire("net.conn")
        except Exception:
            self.telemetry.incr("net.chaos_disconnects")
            conn.abort()
            return False
        return True

    async def _dispatch(self, conn: _Connection, frame: Frame) -> bool:
        """Route one frame; False ends the read loop."""
        if frame.type == FrameType.MATCH_REQUEST:
            return await self._accept_request(conn, frame)
        if frame.type == FrameType.PING:
            self.telemetry.incr("net.pings")
            # Trace negotiation: echo FLAG_TRACE back iff this server
            # can join trace contexts; a pre-extension server would pack
            # flags as 0, which tells the client not to send them.
            flags = (
                FLAG_TRACE
                if (frame.flags & FLAG_TRACE)
                and self.telemetry.tracer is not None
                else 0
            )
            payload = b""
            if frame.flags & FLAG_GENERATION:
                # Generation negotiation: echo the flag with the current
                # engine generation as payload, and stamp every response
                # on this connection from here on.
                flags |= FLAG_GENERATION
                payload = GEN_BLOCK.pack(self.service.swap.generation)
                conn.stamp_generation = True
            return await conn.send(
                encode_frame(
                    FrameType.PONG, frame.request_id, payload, flags=flags
                )
            )
        self.telemetry.incr("net.protocol_errors")
        return await conn.send(
            encode_error(
                frame.request_id,
                ErrorCode.PROTOCOL,
                f"unexpected frame type {int(frame.type)}",
            )
        )

    async def _accept_request(self, conn: _Connection, frame: Frame) -> bool:
        telemetry = self.telemetry
        decode_t0 = time.perf_counter()
        trace = None
        try:
            if frame.flags & FLAG_TRACE:
                trace, frame = split_trace_context(frame)
            block = decode_match_request(frame)
        except PayloadError as exc:
            telemetry.incr("net.protocol_errors")
            return await conn.send(
                encode_error(frame.request_id, ErrorCode.PROTOCOL, str(exc))
            )
        decode_s = time.perf_counter() - decode_t0
        if block.shape[1] != self.num_fields:
            telemetry.incr("net.protocol_errors")
            return await conn.send(
                encode_error(
                    frame.request_id,
                    ErrorCode.PROTOCOL,
                    f"request carries {block.shape[1]} fields; "
                    f"schema has {self.num_fields}",
                )
            )
        if self._draining:
            telemetry.incr("net.drain_rejects")
            if self.flightrec is not None:
                self.flightrec.note(
                    frame.request_id,
                    trace.trace_id if trace is not None else 0,
                    "drain",
                    state=self._state_snapshot(),
                )
            return await conn.send(
                encode_error(
                    frame.request_id,
                    ErrorCode.DRAINING,
                    "server is draining",
                )
            )
        corrupt = self.injector.enabled and self.injector.corrupted(
            "net.conn"
        )
        # Backpressure: when this connection has max_inflight requests
        # outstanding, stop here — which stops the read loop, which
        # stops reading the socket.
        await conn.semaphore.acquire()
        self._inflight += 1
        self._idle.clear()
        telemetry.incr("net.requests")
        telemetry.incr("net.request_packets", block.shape[0])
        pending = _Pending(
            conn, frame.request_id, block, corrupt, time.perf_counter()
        )
        tracer = telemetry.tracer
        if tracer is not None:
            # Joined server span: parented under the client's request
            # span when the frame carried a trace context, a fresh local
            # root otherwise.  Manual lifetime — finished by the batch
            # task in _finalize, which a contextvar token cannot cross.
            parent = (
                SpanContext(trace.trace_id, trace.parent_span_id)
                if trace is not None
                else None
            )
            pending.span = tracer.start_span(
                "net.request",
                parent=parent,
                request_id=frame.request_id,
                packets=pending.count,
            )
        if self.stages is not None:
            # STAGES order: decode, queue_wait, coalesce_wait, lookup,
            # encode, write.
            pending.stage_s = [decode_s, 0.0, 0.0, 0.0, 0.0, 0.0]
        await self._queue.put(pending)
        return True

    # ------------------------------------------------------------------
    # Coalescing batch loop
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        queue = self._queue
        max_batch = self.config.max_batch
        wait_s = self.config.coalesce_wait_ms / 1e3
        loop = asyncio.get_running_loop()
        stop = False
        while not stop:
            item = await queue.get()
            if item is _SHUTDOWN:
                return
            item.picked = time.perf_counter()
            batch: List[_Pending] = [item]
            packets = item.count
            # Greedy merge of everything already queued (requests that
            # arrived while the previous lookup ran).
            while packets < max_batch:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _SHUTDOWN:
                    stop = True
                    break
                item.picked = time.perf_counter()
                batch.append(item)
                packets += item.count
            # Adaptive window: once a batch is forming, briefly hold the
            # door for stragglers; an idle stream (batch of one) is
            # served immediately, so light traffic pays no added delay.
            if not stop and wait_s > 0 and 1 < len(batch):
                deadline = loop.time() + wait_s
                while packets < max_batch:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                    if item is _SHUTDOWN:
                        stop = True
                        break
                    item.picked = time.perf_counter()
                    batch.append(item)
                    packets += item.count
            await self._serve_batch(batch)
            if self._inflight == 0:
                self._idle.set()

    def _run_lookup(self, block, parent_ctx):
        """Executor-thread body of one coalesced lookup.  The default
        executor does not propagate contextvars, so the batch span is
        re-activated explicitly: runtime.batch / shard.chunk /
        engine.group_probe spans nest under it.

        Index-only path: the wire encodes bare rule indices, so this asks
        the service for indices and never materializes MatchResult
        objects — with ``--shard-mode shm`` the coalesced block goes
        straight from the decoder's uint32 view into the shared ring and
        the answers come back as one index array, zero intermediate
        copies."""
        tracer = self.telemetry.tracer
        if tracer is None or parent_ctx is None:
            return self.service.match_indices(block)
        token = tracer.activate(parent_ctx)
        try:
            return self.service.match_indices(block)
        finally:
            tracer.deactivate(token)

    async def _serve_batch(self, batch: List[_Pending]) -> None:
        telemetry = self.telemetry
        loop = asyncio.get_running_loop()
        block = (
            batch[0].headers
            if len(batch) == 1
            else np.concatenate([p.headers for p in batch])
        )
        telemetry.incr("net.lookups")
        telemetry.incr("net.lookup_packets", block.shape[0])
        if len(batch) > 1:
            telemetry.incr("net.coalesced_requests", len(batch) - 1)
        if self.stages is not None:
            now = time.perf_counter()
            for pending in batch:
                stage_s = pending.stage_s
                if stage_s is not None:
                    stage_s[1] = pending.picked - pending.enqueued
                    stage_s[2] = now - pending.picked
        # Span-tree policy: a coalesced lookup serves many requests but
        # a span has exactly one parent, so the batch/lookup subtree
        # parents under the *first* traced request of the batch (the one
        # that opened it); siblings keep their own net.request spans.
        lead = next((p.span for p in batch if p.span is not None), None)
        watch = self.flightrec is not None
        deadline_before = (
            telemetry.counter("runtime.deadline_timeouts") if watch else 0
        )
        chaos_before = (
            self.injector.total_injected()
            if watch and self.injector.enabled
            else 0
        )
        start = time.perf_counter()
        try:
            with telemetry.span(
                "net.batch",
                parent=lead.context if lead is not None else None,
                requests=len(batch),
                packets=int(block.shape[0]),
            ) as batch_span:
                results = await loop.run_in_executor(
                    None,
                    self._run_lookup,
                    block,
                    batch_span.context if batch_span is not None else None,
                )
        except LoadShedError as exc:
            telemetry.incr("net.shed", len(batch))
            await self._fail_batch(batch, ErrorCode.SHED, str(exc))
            return
        except Exception as exc:
            telemetry.incr("net.lookup_errors", len(batch))
            await self._fail_batch(batch, ErrorCode.INTERNAL, str(exc))
            return
        lookup_s = time.perf_counter() - start
        telemetry.observe("net.batch", lookup_s)
        hint = None
        if watch:
            if (
                telemetry.counter("runtime.deadline_timeouts")
                > deadline_before
            ):
                hint = "deadline"
            elif (
                self.injector.enabled
                and self.injector.total_injected() > chaos_before
            ):
                hint = "chaos"
        for pending in batch:
            pending.hint = hint
            if pending.stage_s is not None:
                pending.stage_s[3] = lookup_s
        indices = np.asarray(results, dtype="<u4")
        offset = 0
        for pending in batch:
            await self._respond_match(
                pending, indices[offset : offset + pending.count]
            )
            offset += pending.count

    async def _respond_match(self, pending: _Pending, indices) -> None:
        telemetry = self.telemetry
        encode_t0 = time.perf_counter()
        # The stamp reads the generation at response time, which may
        # already exceed the generation that served the lookup — safe,
        # because generations are monotonic and read-your-writes only
        # needs a lower bound on what this replica has converged to.
        data = encode_match_response(
            pending.request_id,
            indices,
            generation=(
                self.service.swap.generation
                if pending.conn.stamp_generation
                else None
            ),
        )
        if pending.corrupt:
            # Chaos corrupt-frame: flip the magic so the client's
            # decoder rejects the stream and reconnects.
            telemetry.incr("net.corrupted_frames")
            data = b"\x00" + data[1:]
        write_t0 = time.perf_counter()
        sent = await pending.conn.send(data)
        done = time.perf_counter()
        if sent:
            telemetry.incr("net.responses")
        stage_s = pending.stage_s
        if stage_s is not None:
            stage_s[4] = write_t0 - encode_t0
            stage_s[5] = done - write_t0
        total_s = done - pending.enqueued
        telemetry.observe("net.request", total_s)
        verdict = pending.hint or ("chaos" if pending.corrupt else "ok")
        self._finalize(pending, verdict, total_s)
        self._finish(pending)

    #: ERROR-frame code -> flight-recorder verdict.
    _VERDICTS = {
        ErrorCode.SHED: "shed",
        ErrorCode.INTERNAL: "error",
        ErrorCode.DRAINING: "drain",
    }

    async def _fail_batch(
        self, batch: List[_Pending], code: ErrorCode, message: str
    ) -> None:
        verdict = self._VERDICTS.get(code, "error")
        for pending in batch:
            await pending.conn.send(
                encode_error(pending.request_id, code, message)
            )
            total_s = time.perf_counter() - pending.enqueued
            self.telemetry.observe("net.request", total_s)
            self._finalize(pending, verdict, total_s, error=message)
            self._finish(pending)

    def _state_snapshot(self) -> dict:
        """Health/backend state frozen into a flight-recorder entry."""
        service = self.service
        return {
            "health": service.health.state.label,
            "net_inflight": self._inflight,
            "generation": service.swap.generation,
            "draining": self._draining,
        }

    def _finalize(
        self,
        pending: _Pending,
        verdict: str,
        total_s: float,
        error: Optional[str] = None,
    ) -> None:
        """Close out one answered request: finish its server span,
        commit its waterfall row, offer it to the flight recorder."""
        tracer = self.telemetry.tracer
        span = pending.span
        if span is not None:
            span.tags["verdict"] = verdict
            if error:
                span.tags["error"] = error
            tracer.finish(span)
        stage_s = pending.stage_s
        if stage_s is not None:
            self.stages.commit_row(
                pending.request_id,
                span.trace_id if span is not None else 0,
                stage_s,
            )
        recorder = self.flightrec
        if recorder is None:
            return
        # Harvests are lazy closures: the recorder only invokes them for
        # requests it actually retains, so the sampled-out happy path
        # pays one note() call and nothing else.
        spans_fn = None
        if span is not None:
            trace_id = span.trace_id

            def spans_fn():
                return [
                    s.as_dict()
                    for s in tracer.spans()
                    if s.trace_id == trace_id
                ]

        stages_fn = None
        if stage_s is not None:

            def stages_fn():
                return {
                    name: stage_s[i]
                    for i, name in enumerate(STAGES)
                    if stage_s[i] > 0.0
                }

        tags = {"packets": pending.count}
        if error:
            tags["error"] = error
        recorder.note(
            pending.request_id,
            span.trace_id if span is not None else 0,
            verdict,
            total_s=total_s,
            stages=stages_fn,
            spans=spans_fn,
            state=self._state_snapshot,
            **tags,
        )

    def _finish(self, pending: _Pending) -> None:
        pending.conn.semaphore.release()
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()


class ServerHandle:
    """A `NetServer` running on a background event-loop thread.

    What tests, benchmarks and the CLI client path use to stand a server
    up without going async themselves: ``handle.port`` to connect,
    ``handle.stop()`` (or the context manager) to drain and join.
    """

    def __init__(self, server: NetServer, loop, thread) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread
        self.drained: Optional[bool] = None

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self.server.port

    def stop(self, timeout: float = 10.0) -> bool:
        """Drain the server, stop the loop, join the thread."""
        if self.drained is None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self.loop
            )
            try:
                self.drained = future.result(timeout)
            except Exception:
                self.drained = False
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout)
        return bool(self.drained)

    def kill(self, timeout: float = 10.0) -> None:
        """Tear the server down *without* draining: abort every
        connection mid-request, close the listener, stop the loop.
        What a crashing replica looks like to its clients — the chaos
        soak uses this; production shutdown wants :meth:`stop`."""
        if self.drained is not None:
            return
        self.drained = False
        server = self.server

        def _slam() -> None:
            if server._server is not None:
                server._server.close()
            for conn in list(server._connections):
                conn.abort()
            # Cancel everything, then stop on the *next* cycle so the
            # cancellations are delivered before the loop closes.
            for task in asyncio.all_tasks(self.loop):
                task.cancel()
            self.loop.call_soon(self.loop.stop)

        self.loop.call_soon_threadsafe(_slam)
        self.thread.join(timeout)

    def quiesce(self, timeout: float = 10.0) -> bool:
        """Thread-safe :meth:`NetServer.quiesce` (see there)."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.quiesce(timeout), self.loop
        )
        return future.result(timeout + 5.0)

    def resume(self) -> None:
        """Thread-safe :meth:`NetServer.resume`."""
        self.loop.call_soon_threadsafe(self.server.resume)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_background(
    service: RuntimeService,
    config: Optional[NetConfig] = None,
    injector=None,
) -> ServerHandle:
    """Start a :class:`NetServer` on a fresh daemon thread and return a
    :class:`ServerHandle` once the port is bound."""
    server = NetServer(service, config, injector=injector)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _boot() -> None:
            try:
                await server.start()
            except BaseException as exc:
                failure.append(exc)
            finally:
                started.set()

        loop.run_until_complete(_boot())
        if not failure:
            loop.run_forever()
        loop.close()

    thread = threading.Thread(
        target=_run, name="saxpac-net-server", daemon=True
    )
    thread.start()
    started.wait(10.0)
    if failure:
        thread.join(5.0)
        raise failure[0]
    return ServerHandle(server, loop, thread)
