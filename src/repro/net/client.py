"""`NetClient`: a blocking-socket client for the SAX-PAC wire protocol.

Deliberately synchronous — the server is the async party; clients are
benchmarks, tests and the ``repro client`` CLI, which all want simple
call-and-return semantics plus:

* **pipelining** — :meth:`NetClient.match_many` keeps up to ``window``
  requests on the wire before reading the first response, which is what
  lets the server's coalescer merge them into one vectorized lookup;
* **timeouts** — every socket operation is bounded by ``timeout_s``;
  a request that never answers raises :class:`NetTimeout` instead of
  hanging;
* **retries** — connection loss (including chaos-injected disconnects
  and corrupt frames, which surface as :class:`ProtocolError`) triggers
  a reconnect and a resend of every unanswered request.  Match lookups
  are read-only, so the retry is safe; ``SHED`` errors back off briefly
  and retry the same way;
* **trace origination** — hand the client a
  :class:`~repro.obs.tracing.Tracer` and every request opens a
  ``client.request`` span whose context rides the wire as the SXPC
  trace extension, making the server's whole span tree
  (``net.request`` → ``net.batch`` → ``runtime.batch`` → backend
  probes) a child of it.  The extension is negotiated: the connect-time
  ``PING`` carries ``FLAG_TRACE``, and contexts are only sent once the
  ``PONG`` echoes it — against a pre-extension server the byte stream
  stays identical to an untraced client.
* **generation tracking** — with ``track_generation=True`` the client
  negotiates the generation-stamp extension: the server prefixes every
  response with its engine generation, tracked in
  :attr:`NetClient.peer_generation`.  :meth:`NetClient.generation`
  polls it explicitly with one stamped ``PING`` (no negotiation
  needed).  This is how :class:`~repro.net.cluster.ReplicaSet` watches
  replicas converge on a snapshot version after a hot swap.

Answers come back as numpy uint32 arrays of matched rule indices — the
same indices :meth:`Classifier.match_batch` reports, which is what the
differential tests compare byte for byte.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from .protocol import (
    FLAG_GENERATION,
    FLAG_TRACE,
    ErrorCode,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    TraceContext,
    decode_error,
    decode_match_response,
    encode_frame,
    encode_match_request,
    split_generation,
)

__all__ = ["NetClient", "NetError", "NetTimeout"]


class NetError(RuntimeError):
    """The server answered with a non-retryable ``ERROR`` frame."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"server error {code}: {message}")
        self.code = code
        self.message = message


class NetTimeout(TimeoutError):
    """No response within the client's timeout."""


class NetClient:
    """Blocking client with pipelining, timeouts and reconnect-retry."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 10.0,
        retries: int = 2,
        shed_backoff_s: float = 0.005,
        max_shed_retries: int = 64,
        tracer=None,
        track_generation: bool = False,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if max_shed_retries < 0:
            raise ValueError("max_shed_retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.shed_backoff_s = shed_backoff_s
        self.max_shed_retries = max_shed_retries
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._frames: deque = deque()
        self._next_id = 1
        #: Trace origination: a repro.obs Tracer (None = untraced).
        self.tracer = tracer
        #: Whether the connected peer echoed FLAG_TRACE (negotiated on
        #: every connect; False against pre-extension servers).
        self.peer_traces = False
        #: Ask the server to stamp responses with its engine generation
        #: (negotiated like tracing; repro.net.cluster turns this on).
        self.track_generation = track_generation
        #: Whether the connected peer echoed FLAG_GENERATION.
        self.peer_stamps = False
        #: Latest engine generation seen from the peer (PONG or stamped
        #: response); None until one arrives.
        self.peer_generation: Optional[int] = None
        #: Transport-level statistics kept by the client: reconnects,
        #: retried requests, shed backoffs.
        self.stats: Dict[str, int] = {
            "reconnects": 0,
            "retried_requests": 0,
            "shed_retries": 0,
        }

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def connect(self) -> "NetClient":
        """Open the TCP connection (idempotent).

        When a tracer is attached, the connection is established with a
        trace-capability handshake: a ``PING`` carrying ``FLAG_TRACE``.
        A server that understands the extension echoes the flag on its
        ``PONG``; one that predates it echoes zero flags (it never looks
        at them), and the client falls back to untraced frames — the
        byte stream is then identical to a tracer-less client's.
        """
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._decoder = FrameDecoder()
            self._frames.clear()
            self.peer_traces = False
            self.peer_stamps = False
            if self.tracer is not None or self.track_generation:
                self._negotiate_extensions()
        return self

    def _negotiate_extensions(self) -> None:
        request_id = self._next_id
        self._next_id += 1
        flags = 0
        if self.tracer is not None:
            flags |= FLAG_TRACE
        if self.track_generation:
            flags |= FLAG_GENERATION
        self._send(encode_frame(FrameType.PING, request_id, flags=flags))
        frame = self._read_frame()
        if frame.type != FrameType.PONG or frame.request_id != request_id:
            raise ProtocolError(
                f"expected PONG for extension negotiation {request_id}, "
                f"got frame type {int(frame.type)} for {frame.request_id}"
            )
        self.peer_traces = bool(frame.flags & FLAG_TRACE)
        self.peer_stamps = bool(frame.flags & FLAG_GENERATION)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _reconnect(self) -> None:
        self.close()
        self.stats["reconnects"] += 1
        self.connect()

    def __enter__(self) -> "NetClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _send(self, data: bytes) -> None:
        if self._sock is None:
            self.connect()
        self._sock.sendall(data)

    def _read_frame(self) -> Frame:
        """Block until one full frame arrives (FIFO across reads).

        Generation stamps are absorbed here: the 8-byte block is
        stripped from the payload (so the per-type decoders never see
        it) and recorded in :attr:`peer_generation`; the flag bit stays
        visible on the returned frame for the negotiation handshake.
        """
        while not self._frames:
            if self._sock is None:
                # A failed reconnect left us unconnected (e.g. the
                # server is gone and the fresh connect was refused);
                # surface it as connection loss so the retry ladder —
                # or a replica-set failover — takes it from here.
                raise ConnectionError("not connected")
            try:
                data = self._sock.recv(1 << 16)
            except socket.timeout:
                raise NetTimeout(
                    f"no response within {self.timeout_s}s"
                ) from None
            if not data:
                raise ConnectionError("server closed the connection")
            self._frames.extend(self._decoder.feed(data))
        frame = self._frames.popleft()
        if frame.flags & FLAG_GENERATION:
            generation, stripped = split_generation(frame)
            self.peer_generation = generation
            frame = Frame(
                stripped.type,
                stripped.request_id,
                stripped.payload,
                frame.flags,
            )
        return frame

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def ping(self) -> float:
        """Round-trip a ``PING``; returns the RTT in seconds."""
        self.connect()
        request_id = self._next_id
        self._next_id += 1
        start = time.perf_counter()
        self._send(encode_frame(FrameType.PING, request_id))
        frame = self._read_frame()
        if frame.type != FrameType.PONG or frame.request_id != request_id:
            raise ProtocolError(
                f"expected PONG for {request_id}, got frame type "
                f"{int(frame.type)} for {frame.request_id}"
            )
        return time.perf_counter() - start

    def generation(self) -> Optional[int]:
        """Poll the server's engine generation with one stamped PING.

        Stateless on the server side — no prior negotiation needed —
        which makes it the cluster tier's convergence probe.  Returns
        None against a pre-extension server (the PONG comes back with
        zero flags).
        """
        self.connect()
        request_id = self._next_id
        self._next_id += 1
        self._send(
            encode_frame(FrameType.PING, request_id, flags=FLAG_GENERATION)
        )
        frame = self._read_frame()
        if frame.type != FrameType.PONG or frame.request_id != request_id:
            raise ProtocolError(
                f"expected PONG for generation poll {request_id}, got "
                f"frame type {int(frame.type)} for {frame.request_id}"
            )
        if not frame.flags & FLAG_GENERATION:
            return None
        return self.peer_generation

    def match_batch(self, headers: Sequence[Sequence[int]]) -> np.ndarray:
        """One request, one response: matched rule indices for
        ``headers`` (uint32, in input order)."""
        return self.match_many([headers], window=1)[0]

    def match_many(
        self,
        requests: Sequence[Sequence[Sequence[int]]],
        window: int = 8,
    ) -> List[np.ndarray]:
        """Classify many header blocks with up to ``window`` requests
        pipelined on the wire; results in request order.

        Survives connection loss mid-stream: unanswered requests are
        resent on a fresh connection, at most ``retries`` times per
        stall (progress resets the budget).
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        self.connect()
        tracing = self.tracer is not None and self.peer_traces
        encoded: List[bytes] = []
        ids: List[int] = []
        spans: Dict[int, object] = {}
        for headers in requests:
            request_id = self._next_id
            self._next_id += 1
            ids.append(request_id)
            trace = None
            if tracing:
                span = self.tracer.start_span(
                    "client.request",
                    request_id=request_id,
                    packets=len(headers),
                )
                spans[request_id] = span
                trace = TraceContext(span.trace_id, span.span_id)
            encoded.append(
                encode_match_request(request_id, headers, trace=trace)
            )
        results: Dict[int, np.ndarray] = {}
        id_to_slot = {rid: i for i, rid in enumerate(ids)}
        failures = 0
        sheds = 0
        sent = 0
        while len(results) < len(ids):
            outstanding = sent - len(results)
            try:
                while sent < len(ids) and outstanding < window:
                    self._send(encoded[sent])
                    sent += 1
                    outstanding += 1
                before = len(results)
                sheds += self._collect_one(
                    results,
                    id_to_slot,
                    encoded,
                    self.max_shed_retries - sheds,
                    spans,
                )
                if len(results) > before:
                    failures = 0
                    sheds = 0
            except (ConnectionError, ProtocolError, OSError) as exc:
                if isinstance(exc, NetTimeout):
                    raise
                failures += 1
                if failures > self.retries:
                    raise
                # Resend everything unanswered on a fresh connection.
                still = [
                    i
                    for i, rid in enumerate(ids[:sent])
                    if rid not in results
                ]
                self.stats["retried_requests"] += len(still)
                try:
                    self._reconnect()
                    for i in still:
                        self._send(encoded[i])
                except (ConnectionError, OSError):
                    # The fresh connection died too (e.g. chaos killing
                    # several in a row): the next read attempt fails and
                    # comes back here, spending another retry.
                    pass
        return [results[rid] for rid in ids]

    def _collect_one(
        self,
        results: Dict[int, np.ndarray],
        id_to_slot: Dict[int, int],
        encoded: List[bytes],
        shed_budget: int,
        spans: Optional[Dict[int, object]] = None,
    ) -> int:
        """Read frames until one outstanding request resolves; returns
        how many shed-retries it spent along the way."""
        sheds = 0
        while True:
            frame = self._read_frame()
            if frame.type == FrameType.MATCH_RESPONSE:
                if frame.request_id in id_to_slot:
                    results[frame.request_id] = decode_match_response(frame)
                    if spans:
                        span = spans.pop(frame.request_id, None)
                        if span is not None:
                            self.tracer.finish(span)
                    return sheds
                continue  # stale response from a pre-retry send
            if frame.type == FrameType.ERROR:
                code, message = decode_error(frame)
                if (
                    code == ErrorCode.SHED
                    and frame.request_id in id_to_slot
                    and sheds < shed_budget
                ):
                    # Retryable overload: back off, resend that request.
                    sheds += 1
                    self.stats["shed_retries"] += 1
                    time.sleep(self.shed_backoff_s)
                    self._send(encoded[id_to_slot[frame.request_id]])
                    continue
                raise NetError(code, message)
            raise ProtocolError(
                f"unexpected frame type {int(frame.type)} mid-stream"
            )
