"""Forwarding tables: single-field prefix classifiers (Section 4.4).

The paper's closing observation in Section 4.4: representation
minimization of forwarding tables is the one-field case of the framework —
a maximal order-independent set of prefixes is a maximum independent set
in an interval graph (EDF solves it exactly), and the authors conjecture
IPv6 tables should fare even better because wider keys leave more
room to find order-independent rules on fewer bits.

This module generates realistic forwarding tables (hierarchical prefix
structure, length distributions peaking at /24 for IPv4 and /48-/64 for
IPv6, next-hop actions) with **longest-prefix-match semantics mapped to
first-match** by ordering rules by decreasing prefix length — so every
engine in the library applies unchanged.  ``bench_forwarding.py`` runs the
v4-vs-v6 comparison.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.actions import Action, ActionKind
from ..core.classifier import Classifier
from ..core.fields import FieldKind, FieldSchema, FieldSpec
from ..core.intervals import interval_from_prefix
from ..core.rule import Rule

__all__ = [
    "ipv4_forwarding_schema",
    "ipv6_forwarding_schema",
    "generate_forwarding_table",
    "longest_prefix_match",
]

#: Prefix-length distributions modelled on public BGP snapshots: IPv4
#: dominated by /24 with mass at /16-/22; IPv6 dominated by /48 and /32.
_V4_LENGTHS: Tuple[Tuple[int, float], ...] = (
    (8, 0.01), (12, 0.02), (16, 0.08), (18, 0.05), (20, 0.09),
    (22, 0.13), (24, 0.55), (28, 0.04), (32, 0.03),
)
_V6_LENGTHS: Tuple[Tuple[int, float], ...] = (
    (24, 0.02), (32, 0.22), (36, 0.05), (40, 0.07), (44, 0.07),
    (48, 0.40), (56, 0.06), (64, 0.10), (128, 0.01),
)


def ipv4_forwarding_schema() -> FieldSchema:
    """Single 32-bit destination-prefix field."""
    return FieldSchema((FieldSpec("dst_ip", 32, FieldKind.PREFIX),))


def ipv6_forwarding_schema() -> FieldSchema:
    """Single 128-bit destination-prefix field."""
    return FieldSchema((FieldSpec("dst_ip6", 128, FieldKind.PREFIX),))


def _next_hop(index: int) -> Action:
    return Action(ActionKind.REDIRECT, payload=index)


def generate_forwarding_table(
    num_prefixes: int,
    seed: int,
    version: int = 4,
    num_next_hops: int = 16,
    aggregation: float = 0.25,
) -> Classifier:
    """A seeded forwarding table with LPM-as-first-match ordering.

    ``aggregation`` is the probability a new prefix nests under an
    existing (shorter) one, reproducing the covering-prefix structure of
    real tables (default routes, aggregates and their more-specifics).
    """
    if version == 4:
        schema, lengths, width = ipv4_forwarding_schema(), _V4_LENGTHS, 32
    elif version == 6:
        schema, lengths, width = ipv6_forwarding_schema(), _V6_LENGTHS, 128
    else:
        raise ValueError(f"version must be 4 or 6, got {version}")
    rng = random.Random(seed)
    values = [v for v, _w in lengths]
    weights = [w for _v, w in lengths]
    seen: set = set()
    prefixes: List[Tuple[int, int]] = []  # (address, length)
    attempts = 0
    while len(prefixes) < num_prefixes and attempts < num_prefixes * 30:
        attempts += 1
        length = rng.choices(values, weights=weights, k=1)[0]
        if prefixes and rng.random() < aggregation:
            parent_addr, parent_len = rng.choice(prefixes)
            if parent_len >= length:
                continue
            # A more-specific inside the parent.
            suffix = rng.getrandbits(length - parent_len)
            address = (
                (parent_addr >> (width - parent_len))
                << (length - parent_len) | suffix
            ) << (width - length)
        else:
            address = rng.getrandbits(width)
            address &= ((1 << length) - 1) << (width - length)
        key = (address, length)
        if key in seen:
            continue
        seen.add(key)
        prefixes.append(key)
    # LPM == first-match when longer prefixes come first.
    prefixes.sort(key=lambda item: -item[1])
    rules = [
        Rule(
            (interval_from_prefix(addr, length, width),),
            _next_hop(rng.randrange(num_next_hops)),
            name=f"{addr:0{width // 4}x}/{length}",
        )
        for addr, length in prefixes
    ]
    return Classifier(schema, rules)


def longest_prefix_match(
    classifier: Classifier, address: int
) -> Optional[Rule]:
    """Reference LPM: the longest prefix containing ``address`` (ties
    impossible among distinct prefixes).  Returns None on total miss."""
    best: Optional[Rule] = None
    best_size = None
    for rule in classifier.body:
        interval = rule.intervals[0]
        if interval.contains(address):
            if best_size is None or interval.size < best_size:
                best = rule
                best_size = interval.size
    return best
