"""Workloads: ClassBench format, synthetic generators, packet traces."""

from .classbench import (
    format_rule,
    parse_classbench,
    parse_classbench_text,
    write_classbench,
)
from .forwarding import (
    generate_forwarding_table,
    ipv4_forwarding_schema,
    ipv6_forwarding_schema,
    longest_prefix_match,
)
from .openflow import flow_count, from_flow_table, to_flow_table
from .generator import (
    BENCHMARK_NAMES,
    STYLES,
    StyleParams,
    add_random_range_fields,
    benchmark_suite,
    generate_classifier,
)
from .traces import generate_trace, rule_targeted_headers, uniform_headers

__all__ = [
    "BENCHMARK_NAMES",
    "STYLES",
    "StyleParams",
    "add_random_range_fields",
    "benchmark_suite",
    "flow_count",
    "format_rule",
    "from_flow_table",
    "generate_classifier",
    "to_flow_table",
    "generate_forwarding_table",
    "generate_trace",
    "ipv4_forwarding_schema",
    "ipv6_forwarding_schema",
    "longest_prefix_match",
    "parse_classbench",
    "parse_classbench_text",
    "rule_targeted_headers",
    "uniform_headers",
    "write_classbench",
]
