"""OpenFlow-style flow-table rendering.

The paper motivates expressive classification with OpenFlow's rise
(Section 1: "hierarchical tuple matching with set actions"); operationally
a classifier is deployed as a flow table.  This module renders six-field
classifiers into the familiar ``ovs-ofctl``-style text format

    priority=900,nw_src=10.0.0.0/8,tp_dst=80,nw_proto=6,actions=output:1

and parses it back.  OpenFlow matches cannot express arbitrary port
*ranges*, so range fields are expanded into prefix-masked ``tp_src``/
``tp_dst`` matches (one flow per prefix combination) — making the flow
count itself a measurement of range-expansion cost, exactly parallel to
the TCAM story.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.actions import Action, ActionKind, DENY, PERMIT, TRANSMIT
from ..core.classifier import Classifier
from ..core.fields import classbench_schema
from ..core.intervals import (
    Interval,
    interval_from_prefix,
    split_into_prefixes,
)
from ..core.rule import Rule

__all__ = ["to_flow_table", "from_flow_table", "flow_count"]

_PRIORITY_BASE = 10_000


def _format_ip(value: int) -> str:
    return ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))


def _action_text(action: Action) -> str:
    if action.kind in (ActionKind.PERMIT, ActionKind.TRANSMIT):
        return "actions=NORMAL"
    if action.kind is ActionKind.DENY:
        return "actions=drop"
    if action.kind is ActionKind.MARK:
        return f"actions=set_queue:{action.payload},NORMAL"
    if action.kind is ActionKind.REDIRECT:
        return f"actions=output:{action.payload}"
    return "actions=CONTROLLER"


def _action_from_text(text: str) -> Action:
    if text == "NORMAL":
        return PERMIT
    if text == "drop":
        return DENY
    if text.startswith("set_queue:"):
        queue = int(text.split(":")[1].split(",")[0])
        return Action(ActionKind.MARK, payload=queue)
    if text.startswith("output:"):
        return Action(ActionKind.REDIRECT, payload=int(text.split(":")[1]))
    return TRANSMIT


def _match_parts(rule: Rule, sport: Tuple[int, int], dport: Tuple[int, int]) -> List[str]:
    """Match fields for one expanded flow (ports as value/prefix-length)."""
    parts: List[str] = []
    src, dst, _sp, _dp, proto, _flags = rule.intervals
    src_prefix = _prefix_of(src, 32)
    if src_prefix[1]:
        parts.append(f"nw_src={_format_ip(src_prefix[0])}/{src_prefix[1]}")
    dst_prefix = _prefix_of(dst, 32)
    if dst_prefix[1]:
        parts.append(f"nw_dst={_format_ip(dst_prefix[0])}/{dst_prefix[1]}")
    for name, (value, length) in (("tp_src", sport), ("tp_dst", dport)):
        if length == 0:
            continue
        if length == 16:
            parts.append(f"{name}={value}")
        else:
            mask = ((1 << length) - 1) << (16 - length)
            parts.append(f"{name}={value << (16 - length)}/0x{mask:04x}")
    if not proto.is_full(8):
        parts.append(f"nw_proto={proto.low}")
    flags = rule.intervals[5]
    if not flags.is_full(16):
        if not flags.is_exact():
            raise ValueError(
                "OpenFlow tcp_flags matches only exact values or "
                f"wildcards; got {flags}"
            )
        parts.append(f"tcp_flags=0x{flags.low:04x}")
    return parts


def _prefix_of(interval: Interval, width: int) -> Tuple[int, int]:
    from ..core.intervals import prefix_for_interval

    prefix = prefix_for_interval(interval, width)
    if prefix is None:
        raise ValueError(
            f"interval {interval} is not a prefix; expand it first"
        )
    value, length = prefix
    return value << (width - length) if length else 0, length


def to_flow_table(classifier: Classifier) -> str:
    """Render the body rules as OpenFlow flow entries, one line per
    expanded flow; priorities descend with rule order so the switch's
    highest-priority-wins matches first-match semantics."""
    if len(classifier.schema) != 6:
        raise ValueError("flow rendering expects the six-field schema")
    lines: List[str] = []
    for idx, rule in enumerate(classifier.body):
        priority = _PRIORITY_BASE - idx
        sports = list(split_into_prefixes(rule.intervals[2], 16))
        dports = list(split_into_prefixes(rule.intervals[3], 16))
        for sp in sports:
            for dp in dports:
                parts = [f"priority={priority}"]
                parts.extend(_match_parts(rule, sp, dp))
                parts.append(_action_text(rule.action))
                lines.append(",".join(parts))
    return "\n".join(lines) + ("\n" if lines else "")


def flow_count(classifier: Classifier) -> int:
    """Flows needed without materializing the text — the OpenFlow analogue
    of the TCAM entry count for the port-range fields."""
    total = 0
    for rule in classifier.body:
        sports = sum(1 for _ in split_into_prefixes(rule.intervals[2], 16))
        dports = sum(1 for _ in split_into_prefixes(rule.intervals[3], 16))
        total += sports * dports
    return total


def _parse_ip(text: str) -> int:
    parts = [int(p) for p in text.split(".")]
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


def _port_interval(text: str) -> Interval:
    if "/" in text:
        value, mask = text.split("/")
        length = bin(int(mask, 16)).count("1")
        # The rendered value is already the full 16-bit shifted form.
        return interval_from_prefix(int(value), length, 16)
    value = int(text)
    return Interval(value, value)


def from_flow_table(text: str) -> Classifier:
    """Parse flow entries back into a six-field classifier.

    Flows sharing a priority came from one rule's range expansion; they are
    merged back by grouping on (priority, action, non-port fields) and
    re-merging the port prefixes into ranges.
    """
    schema = classbench_schema()
    groups: Dict[Tuple, Dict[str, object]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields: Dict[str, str] = {}
        action_text = "NORMAL"
        for part in line.split(","):
            if part.startswith("actions="):
                action_text = part[len("actions="):]
                break
            key, _, value = part.partition("=")
            fields[key] = value
        # actions may contain commas; recover the tail.
        if "actions=" in line:
            action_text = line.split("actions=", 1)[1]
        priority = int(fields["priority"])
        src = (
            fields.get("nw_src", "0.0.0.0/0").split("/")
            if "nw_src" in fields
            else ["0.0.0.0", "0"]
        )
        dst = (
            fields.get("nw_dst", "0.0.0.0/0").split("/")
            if "nw_dst" in fields
            else ["0.0.0.0", "0"]
        )
        src_iv = interval_from_prefix(_parse_ip(src[0]), int(src[1]), 32)
        dst_iv = interval_from_prefix(_parse_ip(dst[0]), int(dst[1]), 32)
        sport = _port_interval(fields["tp_src"]) if "tp_src" in fields \
            else Interval(0, 65535)
        dport = _port_interval(fields["tp_dst"]) if "tp_dst" in fields \
            else Interval(0, 65535)
        proto = (
            Interval(int(fields["nw_proto"]), int(fields["nw_proto"]))
            if "nw_proto" in fields
            else Interval(0, 255)
        )
        if "tcp_flags" in fields:
            value = int(fields["tcp_flags"], 16)
            flags = Interval(value, value)
        else:
            flags = Interval(0, 0xFFFF)
        key = (priority, action_text, src_iv, dst_iv, proto, flags)
        bucket = groups.setdefault(
            key, {"sports": [], "dports": []}
        )
        bucket["sports"].append(sport)
        bucket["dports"].append(dport)
    rules: List[Rule] = []
    for (priority, action_text, src_iv, dst_iv, proto, flags), bucket in sorted(
        groups.items(), key=lambda item: -item[0][0]
    ):
        from ..core.intervals import merge_intervals

        sports = merge_intervals(list(bucket["sports"]))
        dports = merge_intervals(list(bucket["dports"]))
        if len(sports) != 1 or len(dports) != 1:
            raise ValueError(
                f"flows at priority {priority} do not merge back into a "
                "single rule (corrupt or foreign flow table)"
            )
        rules.append(
            Rule(
                (src_iv, dst_iv, sports[0], dports[0], proto, flags),
                _action_from_text(action_text),
            )
        )
    return Classifier(schema, rules)
