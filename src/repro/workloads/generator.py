"""Seeded synthetic classifier generation in ClassBench's spirit.

The paper evaluates on 12 ClassBench filter sets generated from real seed
parameters plus 5 proprietary Cisco classifiers — neither shippable here.
This module substitutes seeded generators that reproduce the *structural*
statistics those filter sets are known for (see DESIGN.md, substitutions):

* **acl** — access control lists: specific source/destination prefixes
  (skewed long), destination ports exact or well-known ranges, little
  source-port usage, mostly TCP/UDP;
* **fw** — firewall rules: short (wide) source prefixes, port ranges on
  both sides, more protocol wildcards, a tail of broad deny rules that
  makes the classifier order-dependent at the bottom;
* **ipc** — IP chains: a blend of the two;
* **cisco** — small service classifiers (tens to hundreds of rules):
  subnets talking to a handful of servers on exact ports, almost entirely
  order-independent — mirroring the paper's cisco1-5 row shapes.

All randomness flows from an explicit seed, so every experiment is
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.actions import DENY, PERMIT, Action, ActionKind
from ..core.classifier import Classifier
from ..core.fields import FieldSpec, classbench_schema
from ..core.intervals import Interval, interval_from_prefix
from ..core.rule import Rule

__all__ = [
    "StyleParams",
    "STYLES",
    "generate_classifier",
    "add_random_range_fields",
    "benchmark_suite",
    "BENCHMARK_NAMES",
]

_TCP, _UDP, _ICMP = 6, 17, 1

#: Destination-port vocabulary (well-known services).
_PORTS = (80, 443, 22, 23, 25, 53, 110, 123, 143, 161, 389, 445, 1433, 1521,
          3306, 3389, 5060, 8080)

#: Common port ranges seen in filter sets.
_PORT_RANGES = ((1024, 65535), (0, 1023), (6000, 6063), (5000, 5100),
                (49152, 65535), (135, 139))


@dataclass(frozen=True)
class StyleParams:
    """Distributional knobs of one generator style."""

    name: str
    src_lengths: Tuple[Tuple[int, float], ...]
    dst_lengths: Tuple[Tuple[int, float], ...]
    sport_model: Tuple[Tuple[str, float], ...]
    dport_model: Tuple[Tuple[str, float], ...]
    protocols: Tuple[Tuple[Optional[int], float], ...]
    nest_probability: float
    broad_tail_fraction: float
    flags_exact_probability: float = 0.0


STYLES: Dict[str, StyleParams] = {
    "acl": StyleParams(
        name="acl",
        src_lengths=((0, 0.05), (8, 0.03), (16, 0.07), (24, 0.25),
                     (28, 0.15), (32, 0.45)),
        dst_lengths=((0, 0.02), (16, 0.08), (24, 0.35), (28, 0.15),
                     (32, 0.40)),
        sport_model=(("wildcard", 0.85), ("exact", 0.05), ("range", 0.10)),
        dport_model=(("wildcard", 0.15), ("exact", 0.55), ("range", 0.25),
                     ("arbitrary", 0.05)),
        protocols=((_TCP, 0.65), (_UDP, 0.25), (_ICMP, 0.03), (None, 0.07)),
        nest_probability=0.10,
        broad_tail_fraction=0.002,
    ),
    "fw": StyleParams(
        name="fw",
        src_lengths=((0, 0.12), (8, 0.08), (16, 0.20), (24, 0.28),
                     (32, 0.32)),
        dst_lengths=((0, 0.05), (8, 0.07), (16, 0.23), (24, 0.32),
                     (32, 0.33)),
        sport_model=(("wildcard", 0.50), ("exact", 0.12), ("range", 0.28),
                     ("arbitrary", 0.10)),
        dport_model=(("wildcard", 0.15), ("exact", 0.40), ("range", 0.30),
                     ("arbitrary", 0.15)),
        protocols=((_TCP, 0.50), (_UDP, 0.30), (_ICMP, 0.05), (None, 0.15)),
        nest_probability=0.20,
        broad_tail_fraction=0.008,
        flags_exact_probability=0.10,
    ),
    "ipc": StyleParams(
        name="ipc",
        src_lengths=((0, 0.12), (8, 0.08), (16, 0.15), (24, 0.25),
                     (32, 0.40)),
        dst_lengths=((0, 0.06), (16, 0.14), (24, 0.35), (32, 0.45)),
        sport_model=(("wildcard", 0.70), ("exact", 0.10), ("range", 0.20)),
        dport_model=(("wildcard", 0.18), ("exact", 0.47), ("range", 0.30),
                     ("arbitrary", 0.05)),
        protocols=((_TCP, 0.60), (_UDP, 0.28), (_ICMP, 0.04), (None, 0.08)),
        nest_probability=0.20,
        broad_tail_fraction=0.006,
    ),
    "cisco": StyleParams(
        name="cisco",
        src_lengths=((16, 0.10), (24, 0.55), (28, 0.15), (32, 0.20)),
        dst_lengths=((24, 0.15), (28, 0.10), (32, 0.75)),
        sport_model=(("wildcard", 0.90), ("range", 0.10)),
        dport_model=(("wildcard", 0.05), ("exact", 0.80), ("range", 0.15)),
        protocols=((_TCP, 0.70), (_UDP, 0.25), (None, 0.05)),
        nest_probability=0.05,
        broad_tail_fraction=0.02,
    ),
}


def _weighted(rng: random.Random, table: Sequence[Tuple[object, float]]):
    values = [v for v, _w in table]
    weights = [w for _v, w in table]
    return rng.choices(values, weights=weights, k=1)[0]


def _sample_prefix(
    rng: random.Random,
    lengths: Sequence[Tuple[int, float]],
    pool: List[int],
    nest_probability: float,
) -> Interval:
    """A 32-bit prefix interval; with ``nest_probability`` the address is
    drawn from earlier rules so prefixes nest/overlap like real tables."""
    length = _weighted(rng, lengths)
    if pool and rng.random() < nest_probability:
        address = rng.choice(pool)
    else:
        address = rng.getrandbits(32)
        pool.append(address)
    return interval_from_prefix(address, length, 32)


def _sample_port(rng: random.Random, model: Sequence[Tuple[str, float]]) -> Interval:
    kind = _weighted(rng, model)
    if kind == "wildcard":
        return Interval(0, 65535)
    if kind == "exact":
        return Interval(*(rng.choice(_PORTS),) * 2)
    if kind == "range":
        return Interval(*rng.choice(_PORT_RANGES))
    low = rng.randrange(0, 65000)
    return Interval(low, min(65535, low + rng.randrange(1, 512)))


def _sample_protocol(rng: random.Random, params: StyleParams) -> Interval:
    proto = _weighted(rng, params.protocols)
    if proto is None:
        return Interval(0, 255)
    return Interval(proto, proto)


def _sample_flags(rng: random.Random, params: StyleParams) -> Interval:
    if rng.random() < params.flags_exact_probability:
        value = rng.choice((0x0000, 0x0002, 0x0010, 0x0012))
        return Interval(value, value)
    return Interval(0, 0xFFFF)


def _broad_tail_rule(rng: random.Random) -> Rule:
    """A broad, low-priority rule (the Example 5 pattern): wildcard-ish
    matches that intersect many specific rules above them."""
    length = rng.choice((0, 0, 8, 8, 16))
    dst = interval_from_prefix(rng.getrandbits(32), length, 32)
    return Rule(
        (
            Interval(0, (1 << 32) - 1),
            dst,
            Interval(0, 65535),
            _sample_port(rng, (("wildcard", 0.5), ("range", 0.5))),
            Interval(0, 255),
            Interval(0, 0xFFFF),
        ),
        DENY,
    )


#: Per-style action mixes (permit-heavy ACLs, deny-heavy firewalls, QoS
#: marking in ipc/cisco service chains).
_ACTION_MIX: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "acl": (("permit", 0.75), ("deny", 0.25)),
    "fw": (("permit", 0.45), ("deny", 0.55)),
    "ipc": (("permit", 0.60), ("deny", 0.25), ("mark", 0.15)),
    "cisco": (("permit", 0.70), ("deny", 0.10), ("mark", 0.20)),
}


def _sample_action(rng: random.Random, style: str) -> Action:
    kind = _weighted(rng, _ACTION_MIX[style])
    if kind == "permit":
        return PERMIT
    if kind == "deny":
        return DENY
    return Action(ActionKind.MARK, payload=rng.randrange(8))


def generate_classifier(
    style: str,
    num_rules: int,
    seed: int,
    action: Optional[Action] = None,
) -> Classifier:
    """Generate a six-field classifier of ``num_rules`` body rules in the
    given style ("acl", "fw", "ipc" or "cisco"), fully determined by
    ``seed``.  ``action`` forces a single action for every specific rule;
    by default each rule samples from the style's permit/deny/mark mix."""
    try:
        params = STYLES[style]
    except KeyError:
        raise ValueError(
            f"unknown style {style!r}; choose from {sorted(STYLES)}"
        ) from None
    rng = random.Random(seed)
    schema = classbench_schema()
    src_pool: List[int] = []
    dst_pool: List[int] = []
    seen = set()
    rules: List[Rule] = []
    tail_budget = max(0, round(num_rules * params.broad_tail_fraction))
    specific_budget = num_rules - tail_budget
    attempts = 0
    while len(rules) < specific_budget and attempts < specific_budget * 20:
        attempts += 1
        intervals = (
            _sample_prefix(rng, params.src_lengths, src_pool,
                           params.nest_probability),
            _sample_prefix(rng, params.dst_lengths, dst_pool,
                           params.nest_probability),
            _sample_port(rng, params.sport_model),
            _sample_port(rng, params.dport_model),
            _sample_protocol(rng, params),
            _sample_flags(rng, params),
        )
        if intervals in seen:
            continue
        seen.add(intervals)
        rule_action = action if action is not None else _sample_action(
            rng, style
        )
        rules.append(Rule(intervals, rule_action))
    for _ in range(tail_budget):
        rules.append(_broad_tail_rule(rng))
    return Classifier(schema, rules)


def add_random_range_fields(
    classifier: Classifier,
    count: int,
    seed: int,
    width: int = 16,
    wildcard_probability: float = 0.1,
) -> Classifier:
    """The Table 1 / Figure 1 extension: append ``count`` synthetic
    ``width``-bit *range* fields with random intervals to every body rule
    (the catch-all gets wildcards)."""
    rng = random.Random(seed)
    max_value = (1 << width) - 1
    specs = [
        FieldSpec(f"range{classifier.num_fields + i}", width)
        for i in range(count)
    ]
    extra: List[List[Interval]] = []
    for _rule in classifier.body:
        row: List[Interval] = []
        for _ in range(count):
            if rng.random() < wildcard_probability:
                row.append(Interval(0, max_value))
            else:
                a = rng.randrange(0, max_value)
                b = rng.randrange(a, max_value + 1)
                row.append(Interval(a, b))
        extra.append(row)
    return classifier.extend(specs, extra)


#: The 17 benchmark classifiers of the paper's evaluation, by name.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "acl1", "acl2", "acl3", "acl4", "acl5",
    "fw1", "fw2", "fw3", "fw4", "fw5",
    "ipc1", "ipc2",
    "cisco1", "cisco2", "cisco3", "cisco4", "cisco5",
)

#: Paper sizes of the cisco classifiers (Table 1 row counts).
_CISCO_SIZES = {"cisco1": 584, "cisco2": 269, "cisco3": 95, "cisco4": 364,
                "cisco5": 148}


def benchmark_suite(
    classbench_rules: int = 2000, seed: int = 2014
) -> Dict[str, Classifier]:
    """The full 17-classifier suite mirroring Table 1's rows.

    The paper's ClassBench sets hold ~50k rules; our analysis pipeline is
    pure Python with Theta(N^2) pair algorithms, so the default scales them
    to ``classbench_rules`` while the cisco sets keep their true sizes.
    Every classifier is deterministic in (name, sizes, seed).
    """
    suite: Dict[str, Classifier] = {}
    for i, name in enumerate(BENCHMARK_NAMES):
        style = "".join(ch for ch in name if ch.isalpha())
        size = _CISCO_SIZES.get(name, classbench_rules)
        suite[name] = generate_classifier(style, size, seed + i * 101)
    return suite
