"""ClassBench filter-set format support.

ClassBench [7] is the standard packet-classification benchmark suite; its
filter sets are text files with one rule per line:

    @<srcIP>/<len> <dstIP>/<len> <spLo> : <spHi> <dpLo> : <dpHi> \
        <proto>/<protoMask> <flags>/<flagsMask>

e.g. ``@192.128.0.0/9 0.0.0.0/0 0 : 65535 1024 : 65535 0x06/0xFF
0x0000/0x0000``.  This module parses and writes that format against the
paper's six-field schema (the 120-bit layout of Table 1), so genuine
ClassBench outputs drop straight into every experiment.

Non-contiguous protocol/flag masks do not describe intervals; they are
widened to their tightest enclosing interval (a sound over-approximation
for the space experiments, noted in DESIGN.md).  Masks of 0x00 (wildcard)
and all-ones (exact) — the overwhelmingly common cases — are represented
exactly.
"""

from __future__ import annotations

import re
from typing import List, TextIO, Tuple, Union

from ..core.classifier import Classifier
from ..core.fields import classbench_schema
from ..core.intervals import Interval, interval_from_prefix
from ..core.rule import Rule

__all__ = ["parse_classbench", "parse_classbench_text", "write_classbench",
           "format_rule"]

_LINE_RE = re.compile(
    r"@(\d+\.\d+\.\d+\.\d+)/(\d+)\s+"
    r"(\d+\.\d+\.\d+\.\d+)/(\d+)\s+"
    r"(\d+)\s*:\s*(\d+)\s+"
    r"(\d+)\s*:\s*(\d+)\s+"
    r"(0[xX][0-9a-fA-F]+)/(0[xX][0-9a-fA-F]+)\s+"
    r"(0[xX][0-9a-fA-F]+)/(0[xX][0-9a-fA-F]+)"
)


def _parse_ipv4(text: str) -> int:
    parts = [int(p) for p in text.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"bad IPv4 address {text!r}")
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))


def _masked_interval(value: int, mask: int, width: int) -> Interval:
    """Tightest interval containing {v : v & mask == value & mask}."""
    full = (1 << width) - 1
    value &= mask
    return Interval(value, value | (full & ~mask))


def parse_rule_line(line: str) -> Rule:
    """Parse one ``@...`` filter line into a six-field Rule."""
    match = _LINE_RE.match(line.strip())
    if not match:
        raise ValueError(f"unparseable ClassBench line: {line!r}")
    (
        src,
        src_len,
        dst,
        dst_len,
        sp_lo,
        sp_hi,
        dp_lo,
        dp_hi,
        proto,
        proto_mask,
        flags,
        flags_mask,
    ) = match.groups()
    intervals = (
        interval_from_prefix(_parse_ipv4(src), int(src_len), 32),
        interval_from_prefix(_parse_ipv4(dst), int(dst_len), 32),
        Interval(int(sp_lo), int(sp_hi)),
        Interval(int(dp_lo), int(dp_hi)),
        _masked_interval(int(proto, 16), int(proto_mask, 16), 8),
        _masked_interval(int(flags, 16), int(flags_mask, 16), 16),
    )
    return Rule(intervals)


def parse_classbench_text(text: str) -> Classifier:
    """Parse a whole filter set (blank lines and ``#`` comments skipped)."""
    rules: List[Rule] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule_line(stripped))
    return Classifier(classbench_schema(), rules)


def parse_classbench(source: Union[str, TextIO]) -> Classifier:
    """Parse a filter set from a path or an open file object."""
    if isinstance(source, str):
        with open(source) as handle:
            return parse_classbench_text(handle.read())
    return parse_classbench_text(source.read())


def _prefix_of(interval: Interval, width: int) -> Tuple[int, int]:
    from ..core.intervals import prefix_for_interval

    prefix = prefix_for_interval(interval, width)
    if prefix is None:
        raise ValueError(
            f"interval {interval} is not a prefix and cannot be written in "
            "ClassBench IP notation"
        )
    value, length = prefix
    return value << (width - length), length


def _mask_pair(interval: Interval, width: int) -> Tuple[int, int]:
    """(value, mask) for exact / wildcard / prefix intervals."""
    full = (1 << width) - 1
    if interval.low == 0 and interval.high == full:
        return 0, 0
    if interval.low == interval.high:
        return interval.low, full
    value, length = _prefix_of(interval, width)
    span = width - length
    return value, full ^ ((1 << span) - 1)


def format_rule(rule: Rule) -> str:
    """Render a six-field rule back into the ClassBench line format."""
    src, dst, sport, dport, proto, flags = rule.intervals
    src_v, src_l = _prefix_of(src, 32)
    dst_v, dst_l = _prefix_of(dst, 32)
    proto_v, proto_m = _mask_pair(proto, 8)
    flags_v, flags_m = _mask_pair(flags, 16)
    return (
        f"@{_format_ipv4(src_v)}/{src_l}\t"
        f"{_format_ipv4(dst_v)}/{dst_l}\t"
        f"{sport.low} : {sport.high}\t"
        f"{dport.low} : {dport.high}\t"
        f"0x{proto_v:02X}/0x{proto_m:02X}\t"
        f"0x{flags_v:04X}/0x{flags_m:04X}"
    )


def write_classbench(classifier: Classifier, destination: Union[str, TextIO]) -> None:
    """Write the body rules of a six-field classifier as a filter set."""
    lines = [format_rule(rule) for rule in classifier.body]
    text = "\n".join(lines) + "\n"
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            handle.write(text)
    else:
        destination.write(text)
