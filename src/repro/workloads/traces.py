"""Packet trace generation.

ClassBench ships a trace generator that samples headers *inside* randomly
chosen filters so that specific rules actually receive traffic; uniform
random headers would almost always fall through to the catch-all.  This
module reproduces that idea with a rule-targeted sampler (optionally
Zipf-skewed, modelling flow popularity) plus a uniform background fraction.
"""

from __future__ import annotations

import random
from typing import List

from ..core.classifier import Classifier
from ..core.packet import Header

__all__ = ["generate_trace", "uniform_headers", "rule_targeted_headers"]


def uniform_headers(
    classifier: Classifier, count: int, rng: random.Random
) -> List[Header]:
    """Headers uniform over the whole header space."""
    maxima = [spec.max_value for spec in classifier.schema]
    return [
        tuple(rng.randint(0, m) for m in maxima) for _ in range(count)
    ]


def _zipf_weights(n: int, skew: float) -> List[float]:
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def rule_targeted_headers(
    classifier: Classifier,
    count: int,
    rng: random.Random,
    skew: float = 1.0,
) -> List[Header]:
    """Headers sampled inside rules, rule popularity Zipf(``skew``) over
    priority order (high-priority rules are hottest, as in real traffic)."""
    body = classifier.body
    if not body:
        return uniform_headers(classifier, count, rng)
    weights = _zipf_weights(len(body), skew)
    chosen = rng.choices(range(len(body)), weights=weights, k=count)
    headers: List[Header] = []
    for idx in chosen:
        rule = body[idx]
        headers.append(
            tuple(rng.randint(iv.low, iv.high) for iv in rule.intervals)
        )
    return headers


def generate_trace(
    classifier: Classifier,
    count: int,
    seed: int,
    hit_fraction: float = 0.9,
    skew: float = 1.0,
) -> List[Header]:
    """A mixed trace: ``hit_fraction`` rule-targeted headers, the rest
    uniform background; deterministic in ``seed``."""
    if not 0.0 <= hit_fraction <= 1.0:
        raise ValueError("hit_fraction must lie in [0, 1]")
    rng = random.Random(seed)
    hits = round(count * hit_fraction)
    trace = rule_targeted_headers(classifier, hits, rng, skew)
    trace.extend(uniform_headers(classifier, count - hits, rng))
    rng.shuffle(trace)
    return trace
