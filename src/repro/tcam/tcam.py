"""A functional TCAM simulator.

Models the de-facto-standard classification engine the paper compares
against and uses for the order-dependent part D of the hybrid scheme:
entries are searched in priority (programming) order and the first match
wins, in one "cycle".  The simulator tracks entry counts and lookup counts
so experiments can report space and (simulated) power proxies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.classifier import Classifier
from ..core.rule import Rule
from .encoding import BinaryRangeEncoder, RangeEncoder, expand_rule
from .entry import TernaryEntry

__all__ = ["TcamEntryRecord", "Tcam", "build_tcam"]


@dataclass(frozen=True)
class TcamEntryRecord:
    """One programmed row: the ternary word plus the rule it came from."""

    entry: TernaryEntry
    rule_index: int
    rule: Rule


class Tcam:
    """Priority-ordered ternary memory over a fixed word width.

    ``capacity`` (optional) models a part with a bounded number of rows;
    programming past it raises, which the dynamic-update logic of
    Section 7.2 uses to trigger recomputation / rejection.
    """

    def __init__(self, width: int, capacity: Optional[int] = None) -> None:
        if width <= 0:
            raise ValueError("TCAM width must be positive")
        self.width = width
        self.capacity = capacity
        self._rows: List[TcamEntryRecord] = []
        self.lookups = 0
        #: Power proxy: a real TCAM activates every row on every lookup,
        #: so accumulated activations ~ energy (Section 4.3's motivation
        #: for the MRCC cache).
        self.row_activations = 0

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> Tuple[TcamEntryRecord, ...]:
        """The programmed rows, highest priority first."""
        return tuple(self._rows)

    def is_full(self) -> bool:
        """True when the capacity (if any) is exhausted."""
        return self.capacity is not None and len(self._rows) >= self.capacity

    def program(self, entry: TernaryEntry, rule_index: int, rule: Rule) -> None:
        """Append one row at the lowest priority."""
        if entry.width != self.width:
            raise ValueError(
                f"entry width {entry.width} != TCAM width {self.width}"
            )
        if self.is_full():
            raise MemoryError(
                f"TCAM capacity {self.capacity} exhausted"
            )
        self._rows.append(TcamEntryRecord(entry, rule_index, rule))

    def remove_rule(self, rule_index: int) -> int:
        """Remove every row programmed for ``rule_index``; returns how many
        rows were freed."""
        before = len(self._rows)
        self._rows = [r for r in self._rows if r.rule_index != rule_index]
        return before - len(self._rows)

    def clear(self) -> None:
        """Remove every programmed row."""
        self._rows.clear()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[TcamEntryRecord]:
        """First (highest-priority) row matching ``key``, or None."""
        self.lookups += 1
        self.row_activations += len(self._rows)
        for record in self._rows:
            if record.entry.matches(key):
                return record
        return None


def _header_key(
    header: Sequence[int],
    widths: Sequence[int],
    encoder: RangeEncoder,
    fields: Sequence[int],
) -> int:
    """Concatenate the (encoder-transformed) selected header fields into a
    single lookup key, mirroring :func:`concat_entries` ordering."""
    key = 0
    for i in fields:
        key = (key << widths[i]) | encoder.encode_value(header[i], widths[i])
    return key


def build_tcam(
    classifier: Classifier,
    encoder: Optional[RangeEncoder] = None,
    fields: Optional[Sequence[int]] = None,
    rule_indices: Optional[Sequence[int]] = None,
    capacity: Optional[int] = None,
    include_catch_all: bool = False,
    pattern_cache: Optional[Dict[Rule, Tuple[TernaryEntry, ...]]] = None,
) -> Tuple[Tcam, "TcamClassifier"]:
    """Expand (a subset of) a classifier into a programmed TCAM.

    Returns the raw :class:`Tcam` and a :class:`TcamClassifier` wrapper that
    performs key construction for headers.  ``fields`` selects the lookup
    fields (Theorem 2 reduced width); ``rule_indices`` selects body rules
    (e.g. only the order-dependent part D).

    ``pattern_cache`` maps a rule to its expanded ternary entries; hits
    skip range expansion and misses are added, so incremental rebuilds pay
    expansion only for rules new to D.  Callers must key one cache to one
    (encoder, fields) combination.
    """
    encoder = encoder or BinaryRangeEncoder()
    field_list = list(fields) if fields is not None else list(range(classifier.num_fields))
    widths = classifier.schema.widths
    width = sum(widths[i] for i in field_list)
    tcam = Tcam(width, capacity)
    indices = (
        list(rule_indices)
        if rule_indices is not None
        else list(range(len(classifier.body)))
    )

    def expanded(rule: Rule) -> Tuple[TernaryEntry, ...]:
        if pattern_cache is None:
            return tuple(expand_rule(rule, classifier.schema, encoder, field_list))
        entries = pattern_cache.get(rule)
        if entries is None:
            entries = pattern_cache[rule] = tuple(
                expand_rule(rule, classifier.schema, encoder, field_list)
            )
        return entries

    for idx in sorted(indices):
        rule = classifier.rules[idx]
        for entry in expanded(rule):
            tcam.program(entry, idx, rule)
    if include_catch_all:
        idx = len(classifier.rules) - 1
        rule = classifier.catch_all
        for entry in expanded(rule):
            tcam.program(entry, idx, rule)
    return tcam, TcamClassifier(tcam, classifier, encoder, field_list)


class TcamClassifier:
    """Header-level facade over a programmed :class:`Tcam`."""

    def __init__(
        self,
        tcam: Tcam,
        classifier: Classifier,
        encoder: RangeEncoder,
        fields: Sequence[int],
    ) -> None:
        self.tcam = tcam
        self.classifier = classifier
        self.encoder = encoder
        self.fields = list(fields)
        self._widths = classifier.schema.widths

    def lookup(self, header: Sequence[int]) -> Optional[TcamEntryRecord]:
        """First matching row for a header (key encoding applied)."""
        key = _header_key(header, self._widths, self.encoder, self.fields)
        return self.tcam.lookup(key)

    def match_index(self, header: Sequence[int]) -> Optional[int]:
        """Body-rule index of the first TCAM match, or None."""
        record = self.lookup(header)
        return record.rule_index if record is not None else None
