"""TCAM substrate: ternary entries, range encodings, simulator, costs."""

from .cost import (
    STANDARD_ROW_WIDTHS,
    SpaceReport,
    classifier_entry_count,
    classifier_space,
    snapped_width,
)
from .encoding import (
    BinaryRangeEncoder,
    RangeEncoder,
    SrgeRangeEncoder,
    binary_expand,
    expand_rule,
    gray_decode,
    gray_encode,
    rule_entry_count,
    srge_expand,
)
from .entry import TernaryEntry, concat_entries, entry_from_pattern
from .negative import DecisionList, SignedEntry, negative_range_encode
from .tcam import Tcam, TcamClassifier, TcamEntryRecord, build_tcam
from .updates import ManagedTcam, UpdateStats

__all__ = [
    "BinaryRangeEncoder",
    "RangeEncoder",
    "STANDARD_ROW_WIDTHS",
    "SpaceReport",
    "SrgeRangeEncoder",
    "Tcam",
    "TcamClassifier",
    "TcamEntryRecord",
    "TernaryEntry",
    "DecisionList",
    "ManagedTcam",
    "SignedEntry",
    "UpdateStats",
    "binary_expand",
    "negative_range_encode",
    "build_tcam",
    "classifier_entry_count",
    "classifier_space",
    "concat_entries",
    "entry_from_pattern",
    "expand_rule",
    "gray_decode",
    "gray_encode",
    "rule_entry_count",
    "snapped_width",
    "srge_expand",
]
