"""Range encoding with negative ("deny") entries, after [29].

The binary expansion [36] and SRGE [3] use only positive entries; allowing
entries with a *negative* action — "if this row matches first, the rule
does NOT match" — reduces the worst case for a single W-bit range to O(W)
entries (Rottenstreich et al. [29] prove exactly W).  The catch, which the
paper points out, is that such schemes encode a *single rule*: a classifier
of many rules needs per-rule decision lists (or a changed TCAM
architecture), so they complement rather than replace SAX-PAC.

We implement the classical run-based construction:

* ``{x >= a}`` (and symmetrically ``{x <= b}``) is encoded as a complete
  decision list with ``runs(a) + 1`` entries, one per maximal run of equal
  bits: peel the leading run, recurse on the tail under that prefix, and
  close with a full-wildcard row whose action depends on the run's bit
  value;
* a general range ``[l, u]`` splits at the longest common prefix ``p`` into
  ``p0 + geq(tail(l))`` and ``p1 + leq(tail(u))``.

Total: ``runs-of(l-tail) + runs-of(u-tail) + 2`` entries — at most ``2W``
and typically far below the positive-only expansions, as the ablation
benchmark shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.intervals import Interval
from .entry import TernaryEntry, entry_from_pattern

__all__ = ["SignedEntry", "negative_range_encode", "DecisionList"]


@dataclass(frozen=True)
class SignedEntry:
    """A ternary row plus its action polarity (True = accept)."""

    entry: TernaryEntry
    accept: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sign = "+" if self.accept else "-"
        return f"{sign}{self.entry.pattern()}"


def _geq_list(a: int, width: int) -> List[SignedEntry]:
    """Complete decision list for ``{x >= a}`` over ``width`` bits: every
    key matches some row, and the first match's polarity is the answer."""
    if width == 0:
        return [SignedEntry(entry_from_pattern(""), True)]
    if a == 0:
        return [SignedEntry(entry_from_pattern("*" * width), True)]
    msb = (a >> (width - 1)) & 1
    # Length of the leading run of `msb` bits.
    run = 0
    while run < width and ((a >> (width - 1 - run)) & 1) == msb:
        run += 1
    tail_width = width - run
    tail = a & ((1 << tail_width) - 1)
    prefix = ("1" if msb else "0") * run
    inner = _geq_list(tail, tail_width)
    out = [
        SignedEntry(
            entry_from_pattern(prefix + item.entry.pattern()), item.accept
        )
        for item in inner
    ]
    # Keys outside the run prefix: smaller than a if the run is 1s
    # (some leading bit dropped to 0), larger if the run is 0s.
    out.append(
        SignedEntry(entry_from_pattern("*" * width), not msb)
    )
    return out


def _leq_list(b: int, width: int) -> List[SignedEntry]:
    """Complete decision list for ``{x <= b}`` by bit-complement duality:
    x <= b  <=>  ~x >= ~b, realized by flipping cared values."""
    flipped = _geq_list(b ^ ((1 << width) - 1) if width else 0, width)
    out = []
    for item in flipped:
        entry = item.entry
        value = (entry.value ^ ((1 << width) - 1)) & entry.mask if width else 0
        out.append(
            SignedEntry(TernaryEntry(value, entry.mask, width), item.accept)
        )
    return out


def negative_range_encode(interval: Interval, width: int) -> List[SignedEntry]:
    """Decision list for ``interval`` over ``width`` bits.

    First-match semantics with a default of *reject* on fall-through; a key
    lies in the interval iff its first matching row is an accept.  Returns
    the cheaper of the signed run-based construction and the plain positive
    prefix cover, so the result is never larger than the binary expansion
    and caps the worst case at ~``width + 2`` rows instead of ``2w - 2``.
    """
    signed = _signed_range_encode(interval, width)
    from .encoding import binary_expand

    positive = [
        SignedEntry(entry, True) for entry in binary_expand(interval, width)
    ]
    return signed if len(signed) < len(positive) else positive


def _signed_range_encode(interval: Interval, width: int) -> List[SignedEntry]:
    """The pure run-based signed construction (see module docstring)."""
    if interval.high >= (1 << width):
        raise ValueError(f"interval {interval} does not fit in {width} bits")
    low, high = interval.low, interval.high
    if low == 0 and high == (1 << width) - 1:
        return [SignedEntry(entry_from_pattern("*" * width), True)]
    if low == high:
        pattern = format(low, f"0{width}b")
        return [SignedEntry(entry_from_pattern(pattern), True)]
    # Longest common prefix of low and high.
    diff = low ^ high
    split = diff.bit_length()  # bits below the first differing position
    common = width - split
    prefix = format(low >> split, f"0{common}b") if common else ""
    tail_width = split - 1
    tail_mask = (1 << tail_width) - 1 if tail_width else 0
    a = low & tail_mask
    b = high & tail_mask
    out: List[SignedEntry] = []
    for item in _geq_list(a, tail_width):
        out.append(
            SignedEntry(
                entry_from_pattern(prefix + "0" + item.entry.pattern()),
                item.accept,
            )
        )
    for item in _leq_list(b, tail_width):
        out.append(
            SignedEntry(
                entry_from_pattern(prefix + "1" + item.entry.pattern()),
                item.accept,
            )
        )
    return out


class DecisionList:
    """First-match evaluator over signed entries (default: reject).

    Models the per-rule decision list a negative-entry TCAM block would
    implement for one range field.
    """

    def __init__(self, entries: Sequence[SignedEntry]) -> None:
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, key: int) -> bool:
        """First-match evaluation; fall-through rejects."""
        for item in self.entries:
            if item.entry.matches(key):
                return item.accept
        return False
