"""Range-to-ternary encodings: binary prefix expansion and SRGE.

TCAMs cannot match ranges natively; a range field must be expanded into
ternary entries, and a multi-field rule into the cross product of its
per-field expansions.  The paper compares two encodings:

* **binary** [36] (Srinivasan et al., SIGCOMM'98): split the range into
  maximal aligned prefixes; a W-bit range needs at most ``2W - 2`` entries.
* **SRGE** [3] (Bremler-Barr & Hendler): store keys in binary-reflected
  Gray code (BRGC).  BRGC's reflection symmetry lets one ternary entry with
  a leading ``*`` cover a block symmetric around the half-space boundary,
  reducing the worst case to ``2W - 4``.

Our SRGE implementation recursively covers the Gray-coded image of the
range, choosing per crossing point the cheaper of (a) the plain half-space
split and (b) the reflected symmetric-block split; option (a) alone already
guarantees the binary bound, so SRGE here is never worse than binary and
captures the Gray-coding savings the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.fields import FieldSchema
from ..core.intervals import Interval, split_into_prefixes
from ..core.rule import Rule
from .entry import TernaryEntry, concat_entries, entry_from_pattern

__all__ = [
    "gray_encode",
    "gray_decode",
    "binary_expand",
    "srge_expand",
    "RangeEncoder",
    "BinaryRangeEncoder",
    "SrgeRangeEncoder",
    "expand_rule",
    "rule_entry_count",
]


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of ``value``."""
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


# ---------------------------------------------------------------------------
# Binary prefix expansion
# ---------------------------------------------------------------------------

def binary_expand(interval: Interval, width: int) -> List[TernaryEntry]:
    """Minimal prefix cover of ``interval``; at most ``2 * width - 2``
    entries (the [36] bound)."""
    entries: List[TernaryEntry] = []
    for value, prefix_len in split_into_prefixes(interval, width):
        span = width - prefix_len
        mask = ((1 << width) - 1) ^ ((1 << span) - 1)
        entries.append(TernaryEntry(value << span, mask, width))
    return entries


# ---------------------------------------------------------------------------
# SRGE: ternary cover in Gray-code space
# ---------------------------------------------------------------------------

def _srge_cover(l: int, u: int, width: int, memo: Dict[Tuple[int, int, int], List[str]]) -> List[str]:
    """Minimal-ish ternary cover (as pattern strings) of the Gray-code image
    of the *value* range [l, u] within a ``width``-bit space.

    Invariant used throughout: for a (width)-bit BRGC, the lower half keeps
    prefix '0' with the (width-1)-bit code of v, and the upper half has
    prefix '1' with the (width-1)-bit code of (2^width - 1 - v).
    """
    if l > u:
        return []
    if width == 0:
        return [""]
    key = (l, u, width)
    cached = memo.get(key)
    if cached is not None:
        return cached
    top = (1 << width) - 1
    half = 1 << (width - 1)
    if l == 0 and u == top:
        result = ["*" * width]
    elif u < half:
        result = ["0" + e for e in _srge_cover(l, u, width - 1, memo)]
    elif l >= half:
        result = ["1" + e for e in _srge_cover(top - u, top - l, width - 1, memo)]
    else:
        # Crossing range. Option (a): plain split at the half boundary.
        plain = ["0" + e for e in _srge_cover(l, half - 1, width - 1, memo)]
        plain += ["1" + e for e in _srge_cover(top - u, half - 1, width - 1, memo)]
        # Option (b): reflected symmetric block around the boundary.  The
        # block [half-m, half-1+m] maps to '*' + cover([half-m, half-1])
        # because the two halves mirror each other in BRGC.
        m = min(half - l, u - half + 1)
        sym = ["*" + e for e in _srge_cover(half - m, half - 1, width - 1, memo)]
        if half - l > m:
            sym += ["0" + e for e in _srge_cover(l, half - m - 1, width - 1, memo)]
        elif u - half + 1 > m:
            sym += ["1" + e for e in _srge_cover(top - u, half - m - 1, width - 1, memo)]
        result = sym if len(sym) < len(plain) else plain
    memo[key] = result
    return result


def srge_expand(interval: Interval, width: int) -> List[TernaryEntry]:
    """SRGE ternary cover of ``interval``.

    The returned entries match *Gray-coded* keys: a lookup key ``v`` must be
    presented as ``gray_encode(v)``.  Entry count never exceeds the binary
    expansion's; the worst case is ``2 * width - 4`` for width >= 4 (at
    width 3 the range [0, 6] unavoidably needs 3 entries — see the tests).
    """
    if interval.high >= (1 << width):
        raise ValueError(f"interval {interval} does not fit in {width} bits")
    memo: Dict[Tuple[int, int, int], List[str]] = {}
    patterns = _srge_cover(interval.low, interval.high, width, memo)
    return [entry_from_pattern(p) for p in patterns]


# ---------------------------------------------------------------------------
# Encoder objects (strategy interface used by the TCAM simulator and the
# space accounting)
# ---------------------------------------------------------------------------

class RangeEncoder:
    """Strategy interface: how ranges become ternary entries and how lookup
    keys are transformed to match them."""

    name = "abstract"

    def expand(self, interval: Interval, width: int) -> List[TernaryEntry]:
        """Ternary entries whose union matches exactly the interval."""
        raise NotImplementedError

    def encode_value(self, value: int, width: int) -> int:
        """Transform a field value into the keyspace of the entries."""
        raise NotImplementedError

    def count(self, interval: Interval, width: int) -> int:
        """Entries needed for one range (override if cheaper than expand)."""
        return len(self.expand(interval, width))


class BinaryRangeEncoder(RangeEncoder):
    """The classical prefix expansion [36]; keys are used verbatim."""

    name = "binary"

    def expand(self, interval: Interval, width: int) -> List[TernaryEntry]:
        """Minimal prefix cover of the interval."""
        return binary_expand(interval, width)

    def encode_value(self, value: int, width: int) -> int:
        """Identity: binary entries match plain keys."""
        return value

    def count(self, interval: Interval, width: int) -> int:
        """Prefix count without materializing entries."""
        return sum(1 for _ in split_into_prefixes(interval, width))


class SrgeRangeEncoder(RangeEncoder):
    """Gray-coded expansion [3]; keys must be Gray-encoded per field."""

    name = "srge"

    def expand(self, interval: Interval, width: int) -> List[TernaryEntry]:
        """Gray-space ternary cover of the interval."""
        return srge_expand(interval, width)

    def encode_value(self, value: int, width: int) -> int:
        """Keys must be Gray-coded to match SRGE entries."""
        return gray_encode(value)


# ---------------------------------------------------------------------------
# Multi-field rules
# ---------------------------------------------------------------------------

def expand_rule(
    rule: Rule,
    schema: FieldSchema,
    encoder: RangeEncoder,
    fields: Sequence[int] = None,
) -> List[TernaryEntry]:
    """Cross-product expansion of a rule into full-width ternary entries.

    ``fields`` restricts the expansion to a subset of fields (the Theorem 2
    reduced representation); by default all fields are used.  The entry
    count is the product of per-field counts — the exponential blow-up the
    paper is fighting.
    """
    indices = list(fields) if fields is not None else list(range(len(schema)))
    per_field = [
        encoder.expand(rule.intervals[i], schema[i].width) for i in indices
    ]
    entries: List[TernaryEntry] = []

    def build(i: int, chosen: List[TernaryEntry]) -> None:
        if i == len(per_field):
            entries.append(concat_entries(chosen))
            return
        for entry in per_field[i]:
            chosen.append(entry)
            build(i + 1, chosen)
            chosen.pop()

    build(0, [])
    return entries


def rule_entry_count(
    rule: Rule,
    schema: FieldSchema,
    encoder: RangeEncoder,
    fields: Sequence[int] = None,
) -> int:
    """Number of TCAM entries the rule needs — the product of per-field
    expansion counts, computed without materializing the cross product."""
    indices = list(fields) if fields is not None else list(range(len(schema)))
    count = 1
    for i in indices:
        count *= encoder.count(rule.intervals[i], schema[i].width)
    return count
