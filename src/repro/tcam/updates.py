"""Ordered TCAM updates: priority via physical position, with few moves.

A real TCAM resolves priority by *row position*, so inserting a rule
between existing ones may require physically moving entries — the cost the
update literature fights (CoPTUA [41], TreeCAM [38]).  The standard
insight: full sortedness is unnecessary; position order only has to agree
with priority for entries that can match the same key (their ternary
patterns intersect).  Non-overlapping entries may sit in any order, which
leaves large feasible windows and makes most insertions move-free.

:class:`ManagedTcam` maintains that invariant over a fixed array of slots:

* insertion computes the feasible window (after every overlapping
  higher-priority entry, before every overlapping lower-priority one) and
  uses a free slot inside it;
* when the window is full — or inconsistent, which can happen because the
  ordering is only partial — entries are evicted and re-placed along a
  chain, with every physical move counted;
* a recompaction fallback (repack everything in priority order) bounds the
  worst case and is also counted, so benchmarks can report amortized moves
  per update.

Deletion just frees the slot (the invariant only ever relaxes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .entry import TernaryEntry

__all__ = ["ManagedTcam", "UpdateStats"]


def _entries_overlap(a: TernaryEntry, b: TernaryEntry) -> bool:
    """True if some key matches both ternary words."""
    common = a.mask & b.mask
    return (a.value ^ b.value) & common == 0


@dataclass
class UpdateStats:
    """Cost counters: how much physical work updates caused."""

    inserts: int = 0
    deletes: int = 0
    moves: int = 0
    recompactions: int = 0

    @property
    def moves_per_insert(self) -> float:
        """Amortized physical moves per insertion."""
        return self.moves / self.inserts if self.inserts else 0.0


@dataclass(frozen=True)
class _Slot:
    entry: TernaryEntry
    priority: int  # smaller = higher priority, must sit earlier


class ManagedTcam:
    """Fixed-capacity TCAM with consistent, move-counted updates."""

    def __init__(self, width: int, capacity: int) -> None:
        if width <= 0 or capacity <= 0:
            raise ValueError("width and capacity must be positive")
        self.width = width
        self.capacity = capacity
        self._slots: List[Optional[_Slot]] = [None] * capacity
        self.stats = UpdateStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for s in self._slots if s is not None)

    def occupancy(self) -> float:
        """Used fraction of the slot array."""
        return len(self) / self.capacity

    def check_invariant(self) -> bool:
        """Every overlapping pair is position-ordered by priority."""
        occupied = [
            (pos, slot)
            for pos, slot in enumerate(self._slots)
            if slot is not None
        ]
        for i in range(len(occupied) - 1):
            for j in range(i + 1, len(occupied)):
                a, b = occupied[i][1], occupied[j][1]
                if _entries_overlap(a.entry, b.entry):
                    if a.priority > b.priority:
                        return False
        return True

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _window(self, entry: TernaryEntry, priority: int) -> Tuple[int, int]:
        """Feasible position range [lo, hi] for the new entry."""
        lo, hi = 0, self.capacity - 1
        for pos, slot in enumerate(self._slots):
            if slot is None or not _entries_overlap(slot.entry, entry):
                continue
            if slot.priority < priority:
                lo = max(lo, pos + 1)
            elif slot.priority > priority:
                hi = min(hi, pos - 1)
        return lo, hi

    def insert(self, entry: TernaryEntry, priority: int) -> None:
        """Insert with the consistency invariant; raises MemoryError when
        full."""
        if entry.width != self.width:
            raise ValueError(
                f"entry width {entry.width} != TCAM width {self.width}"
            )
        if len(self) >= self.capacity:
            raise MemoryError("TCAM full")
        self.stats.inserts += 1
        # Chain placement mutates slots as it goes; snapshot so a failed
        # chain rolls back cleanly before the recompaction fallback.
        snapshot = list(self._slots)
        moves_before = self.stats.moves
        if not self._place(entry, priority, budget=self.capacity):
            self._slots = snapshot
            self.stats.moves = moves_before
            self._recompact(extra=(entry, priority))

    def _place(
        self, entry: TernaryEntry, priority: int, budget: int
    ) -> bool:
        """Chain placement; returns False if the move budget runs out."""
        if budget <= 0:
            return False
        lo, hi = self._window(entry, priority)
        if lo <= hi:
            for pos in range(lo, hi + 1):
                if self._slots[pos] is None:
                    self._slots[pos] = _Slot(entry, priority)
                    return True
            # Window exists but is packed.  Entries inside it do not
            # overlap the new one (overlapping entries pin the window from
            # outside), so any of them can be evicted; take the hi end and
            # re-place the victim down the chain.
            victim = self._slots[hi]
            assert victim is not None
            self._slots[hi] = _Slot(entry, priority)
            self.stats.moves += 1
            return self._place(victim.entry, victim.priority, budget - 1)
        # Inconsistent (empty) window: a lower-priority overlapping entry
        # sits at hi + 1 (or a higher-priority one at lo - 1 when hi was
        # pinned by capacity).  Evict the blocker, retry, then re-place it.
        victim_pos = hi + 1 if hi + 1 < self.capacity else lo - 1
        victim = self._slots[victim_pos]
        if victim is None:
            return False  # defensive: blocker vanished mid-chain
        self._slots[victim_pos] = None
        self.stats.moves += 1
        if not self._place(entry, priority, budget - 1):
            return False  # caller rolls back via its snapshot
        return self._place(victim.entry, victim.priority, budget - 1)

    def _recompact(self, extra: Optional[Tuple[TernaryEntry, int]]) -> None:
        """Repack every entry in priority order (counted as one move per
        surviving entry)."""
        self.stats.recompactions += 1
        slots = [s for s in self._slots if s is not None]
        if extra is not None:
            slots.append(_Slot(extra[0], extra[1]))
        slots.sort(key=lambda s: s.priority)
        self.stats.moves += len(slots)
        self._slots = [None] * self.capacity
        for pos, slot in enumerate(slots):
            self._slots[pos] = slot

    def delete(self, priority: int) -> int:
        """Free every slot holding entries of this priority; returns how
        many were removed."""
        removed = 0
        for pos, slot in enumerate(self._slots):
            if slot is not None and slot.priority == priority:
                self._slots[pos] = None
                removed += 1
        if removed:
            self.stats.deletes += 1
        return removed

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[int]:
        """Priority of the first (lowest-position) matching entry."""
        for slot in self._slots:
            if slot is not None and slot.entry.matches(key):
                return slot.priority
        return None
