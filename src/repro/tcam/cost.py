"""TCAM space accounting — the currency of Tables 1-2 and Figure 1.

The paper reports "Space, Kb": the number of TCAM entries times the entry
width in bits, divided by 1024.  Widths snap to nothing by default; the
optional ``snap_to_standard`` models the common 72/144/288-bit TCAM row
formats mentioned in Section 4 (a reduced representation that crosses one
of those barriers halves the physical space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.classifier import Classifier
from .encoding import RangeEncoder, rule_entry_count

__all__ = ["SpaceReport", "classifier_entry_count", "classifier_space",
           "STANDARD_ROW_WIDTHS", "snapped_width"]

#: Common TCAM row formats (bits).
STANDARD_ROW_WIDTHS = (72, 144, 288, 576)


def snapped_width(width: int) -> int:
    """Smallest standard row width holding ``width`` bits (or ``width``
    itself beyond the largest standard format)."""
    for standard in STANDARD_ROW_WIDTHS:
        if width <= standard:
            return standard
    return width


@dataclass(frozen=True)
class SpaceReport:
    """Entry count and derived space figures for one classifier encoding."""

    entries: int
    width_bits: int
    snapped: bool = False

    @property
    def effective_width(self) -> int:
        """Row width after optional standard-format snapping."""
        return snapped_width(self.width_bits) if self.snapped else self.width_bits

    @property
    def total_bits(self) -> int:
        """Entries times effective width."""
        return self.entries * self.effective_width

    @property
    def kilobits(self) -> float:
        """The paper's "Space, Kb" figure."""
        return self.total_bits / 1024.0


def classifier_entry_count(
    classifier: Classifier,
    encoder: RangeEncoder,
    fields: Optional[Sequence[int]] = None,
    rule_indices: Optional[Sequence[int]] = None,
    include_catch_all: bool = False,
) -> int:
    """Total TCAM entries for (a subset of) a classifier under ``encoder``.

    ``fields`` restricts the encoded fields (Theorem 2: the reduced
    representation only stores the FSM subset).  ``rule_indices`` restricts
    the rules (e.g. the order-independent part only).
    """
    field_list = (
        list(fields) if fields is not None else list(range(classifier.num_fields))
    )
    indices = (
        list(rule_indices)
        if rule_indices is not None
        else list(range(len(classifier.body)))
    )
    total = 0
    for idx in indices:
        total += rule_entry_count(
            classifier.rules[idx], classifier.schema, encoder, field_list
        )
    if include_catch_all:
        total += rule_entry_count(
            classifier.catch_all, classifier.schema, encoder, field_list
        )
    return total


def classifier_space(
    classifier: Classifier,
    encoder: RangeEncoder,
    fields: Optional[Sequence[int]] = None,
    rule_indices: Optional[Sequence[int]] = None,
    snapped: bool = False,
) -> SpaceReport:
    """Space report (entries, width, Kb) for a classifier encoding."""
    field_list = (
        list(fields) if fields is not None else list(range(classifier.num_fields))
    )
    entries = classifier_entry_count(classifier, encoder, field_list, rule_indices)
    width = classifier.schema.subset_width(field_list)
    return SpaceReport(entries=entries, width_bits=width, snapped=snapped)
