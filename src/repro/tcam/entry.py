"""Ternary entries: the VALUE/MASK words a TCAM stores.

An entry is a ternary string over {0, 1, *}: a mask bit of 1 means the
corresponding value bit must match; a mask bit of 0 hides a "don't care"
position.  Entries support matching integer keys and composing across fields
by concatenation, which is how multi-field rules are programmed after range
expansion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

__all__ = ["TernaryEntry", "entry_from_pattern", "concat_entries"]


@dataclass(frozen=True)
class TernaryEntry:
    """A ternary word of ``width`` bits stored as (value, mask) integers.

    Bit ``width-1`` is the most significant.  ``value`` bits outside the
    mask are normalized to zero so equal entries compare equal.
    """

    value: int
    mask: int
    width: int

    def __post_init__(self) -> None:
        limit = 1 << self.width
        if not 0 <= self.mask < limit:
            raise ValueError(f"mask {self.mask:#x} does not fit in {self.width} bits")
        if not 0 <= self.value < limit:
            raise ValueError(f"value {self.value:#x} does not fit in {self.width} bits")
        object.__setattr__(self, "value", self.value & self.mask)

    def matches(self, key: int) -> bool:
        """True if ``key`` agrees with the entry on every cared-for bit."""
        return (key & self.mask) == self.value

    @property
    def num_wildcards(self) -> int:
        """Number of * positions."""
        return self.width - bin(self.mask).count("1")

    def pattern(self) -> str:
        """Render as a {0,1,*} string, MSB first."""
        chars: List[str] = []
        for bit in range(self.width - 1, -1, -1):
            if not (self.mask >> bit) & 1:
                chars.append("*")
            elif (self.value >> bit) & 1:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TernaryEntry({self.pattern()})"


def entry_from_pattern(pattern: str) -> TernaryEntry:
    """Parse a {0,1,*} string (MSB first) into a :class:`TernaryEntry`."""
    value = 0
    mask = 0
    for ch in pattern:
        value <<= 1
        mask <<= 1
        if ch == "1":
            value |= 1
            mask |= 1
        elif ch == "0":
            mask |= 1
        elif ch != "*":
            raise ValueError(f"invalid ternary character {ch!r} in {pattern!r}")
    return TernaryEntry(value, mask, len(pattern))


def concat_entries(entries: Iterable[TernaryEntry]) -> TernaryEntry:
    """Concatenate per-field entries into one wide entry (leftmost field
    becomes the most significant bits), mirroring how a multi-field rule is
    programmed into a single TCAM row."""
    value = 0
    mask = 0
    width = 0
    for entry in entries:
        value = (value << entry.width) | entry.value
        mask = (mask << entry.width) | entry.mask
        width += entry.width
    if width == 0:
        raise ValueError("cannot concatenate zero entries")
    return TernaryEntry(value, mask, width)
