"""Pluggable lookup backends for the per-group probe structures.

SAX-PAC reduces classification to one range lookup per order-independent
group, but *which* data structure should serve that lookup depends on the
group: its size, its field count, and — following "Self-Adjusting Packet
Classification" (arXiv 2109.15090) — the live traffic it absorbs.  This
package turns the previously hard-wired structure choice in
:func:`~repro.lookup.group_engine.build_group_index` into a registry of
:class:`LookupBackend` strategies:

``interval``
    Sorted-array binary search over pairwise-disjoint intervals
    (:class:`~repro.lookup.interval_map.DisjointIntervalMap`) — the
    classic single-field structure.
``segment``
    The two-field segment-tree index (plain or fractionally cascaded).
``linear``
    Vectorized scan over the group members on the group fields — best
    for tiny groups, and the only option past two fields.
``learned``
    A NuevoMatch-style learned range index (arXiv 2002.07584): a small
    monotone piecewise-linear model, trained at build time on the sorted
    interval bounds of one provably-disjoint group field, predicts a
    candidate slot; a guaranteed error window plus fallback to the
    wrapped exact structure keeps results decision-identical to the
    classic structures (see :mod:`.learned`).
``auto``
    Not a backend but a per-group policy: :func:`~.selector
    .select_backend` picks one of the above from group size, field
    count and (when a :class:`~repro.obs.heat.HeatProfiler` report is
    available) per-group heat.  Incremental rebuilds re-run the policy,
    so the choice tracks traffic drift.

A backend **builds** :class:`~repro.lookup.group_engine.GroupIndex`
instances; the built index serves batched lookups through
``probe_batch`` (the engine-facing ``lookup_batch``) and reports its
memory footprint and build cost through
:meth:`~repro.lookup.group_engine.GroupIndex.backend_report`.

The registry (:func:`register_backend`) is the extension seam for later
work — shared-memory resident structures and per-tenant backends plug in
without touching the engine.
"""

from .adapters import (
    IntervalBackend,
    LinearBackend,
    SegmentBackend,
    structural_backend_name,
)
from .learned import LearnedBackend, LearnedGroupIndex, PiecewiseLinearModel
from .registry import (
    AUTO_BACKEND,
    LookupBackend,
    backend_names,
    build_with_backend,
    get_backend,
    register_backend,
)
from .selector import select_backend

__all__ = [
    "AUTO_BACKEND",
    "IntervalBackend",
    "LearnedBackend",
    "LearnedGroupIndex",
    "LinearBackend",
    "LookupBackend",
    "PiecewiseLinearModel",
    "SegmentBackend",
    "backend_names",
    "build_with_backend",
    "get_backend",
    "register_backend",
    "select_backend",
    "structural_backend_name",
]
