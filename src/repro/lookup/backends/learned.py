"""The learned range-index backend (NuevoMatch-style, numpy-only).

"A Computational Approach to Packet Classification" (arXiv 2002.07584)
replaces classic range structures with RQ-RMI models: a learned function
predicts *where* in a sorted array a query lands, and a bounded
secondary search makes the answer exact.  Our order-independent groups
are precisely the setting where that works: a group is pairwise disjoint
on the combination of its fields, and very often on one field alone —
the member intervals on that field then sort into a strictly increasing
sequence, and "which member contains value v" becomes "predict the rank
of v", the textbook learned-index query.

:class:`PiecewiseLinearModel` is the model: a tiny monotone
piecewise-linear interpolation (a handful of breakpoints, evaluated with
one vectorized ``np.interp``) from key to expected slot.  Because both
the model and the true rank function are monotone, evaluating the error
at every member's interval endpoints bounds the error *everywhere a
contained query can land* — so a window of ``ceil(max error)`` slots
around the prediction provably contains the answer.

:class:`LearnedGroupIndex` wraps the model with the exactness ladder:

1. probe the predicted slot (and its guaranteed window) with a
   vectorized containment test;
2. if the window is guaranteed (small max error) a window miss *is* a
   true miss — no further work;
3. otherwise fall back to the wrapped exact structure — a binary search
   over the same sorted bounds, i.e. exactly what the ``interval``
   backend would have done — and count a **mispredict**.

Decisions are therefore byte-identical to the classic structures by
construction; the model only ever changes *where the time goes*, which
is what the mispredict counters and the per-backend benchmark ablation
measure.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ...analysis.mgr import Group
from ...core.classifier import Classifier
from ..group_engine import GroupIndex
from .registry import LookupBackend, register_backend

__all__ = ["LearnedBackend", "LearnedGroupIndex", "PiecewiseLinearModel"]

#: Default number of linear segments in the model.
MODEL_SEGMENTS = 8

#: Error windows up to this half-width keep the guaranteed vectorized
#: window probe; beyond it, window misses fall back to binary search.
MAX_GUARANTEED_WINDOW = 8


class PiecewiseLinearModel:
    """Monotone piecewise-linear map from sorted keys to slot positions.

    Trained on ``keys`` (strictly increasing int array, slot ``i`` holds
    ``keys[i]``): breakpoints sit at evenly spaced ranks, prediction is
    one ``np.interp`` — O(log segments) per query, independent of the
    group size.  ``max_error`` is the *proven* bound: the largest
    |prediction - true slot| over every interval endpoint, which (both
    functions being monotone) bounds the error at every query value that
    any member interval contains.
    """

    __slots__ = ("xs", "ys", "max_error")

    def __init__(
        self,
        keys: np.ndarray,
        highs: np.ndarray,
        segments: int = MODEL_SEGMENTS,
    ) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        n = keys.shape[0]
        if n == 0:
            raise ValueError("cannot train on an empty key set")
        anchors = np.unique(
            np.linspace(0, n - 1, min(segments + 1, n)).astype(np.int64)
        )
        xs, first = np.unique(keys[anchors], return_index=True)
        self.xs = xs
        self.ys = anchors[first].astype(np.float64)
        positions = np.arange(n, dtype=np.float64)
        # Contained queries extremize the (monotone) model over each
        # member's [low, high]; evaluating both endpoints bounds all.
        endpoint_error = np.maximum(
            np.abs(self.predict(keys) - positions),
            np.abs(self.predict(np.asarray(highs, dtype=np.float64))
                   - positions),
        )
        self.max_error = float(endpoint_error.max()) if n else 0.0

    def predict(self, values: np.ndarray) -> np.ndarray:
        """Predicted (fractional) slot for each value."""
        return np.interp(values, self.xs, self.ys)

    @property
    def num_breakpoints(self) -> int:
        return int(self.xs.shape[0])


def _disjoint_field(
    classifier: Classifier, group: Group
) -> Optional[int]:
    """A group field whose member intervals are pairwise disjoint, or
    None.  Order-independence guarantees disjointness on the field
    *combination*; single-field groups are disjoint by definition, and
    real multi-field groups very often have one separating field too."""
    lows, highs = classifier.bounds_arrays()
    members = np.asarray(group.rule_indices, dtype=np.int64)
    for f in group.fields:
        lo = lows[members, f]
        hi = highs[members, f]
        order = np.argsort(lo, kind="stable")
        if lo[order][1:].size == 0 or np.all(
            lo[order][1:] > hi[order][:-1]
        ):
            return f
    return None


class LearnedGroupIndex(GroupIndex):
    """Learned range index over one disjoint group field, with the
    guaranteed-window / exact-fallback ladder described in the module
    docstring."""

    def __init__(
        self,
        classifier: Classifier,
        group: Group,
        segments: int = MODEL_SEGMENTS,
    ) -> None:
        self.fields = group.fields
        self.rule_ids = np.asarray(group.rule_indices, dtype=np.int64)
        field = _disjoint_field(classifier, group)
        if field is None:
            raise ValueError(
                "learned backend needs a pairwise-disjoint group field"
            )
        self._field = field
        lows, highs = classifier.bounds_arrays()
        members = np.asarray(group.rule_indices, dtype=np.int64)
        order = np.argsort(lows[members, field], kind="stable")
        #: slot (sorted position) -> position in ``rule_ids``.
        self._slots = order.astype(np.int64)
        cols = list(self.fields)
        #: Per-sorted-slot bounds on *all* group fields, so the window
        #: containment test yields a full group-field match directly.
        self._glo = lows[members[order]][:, cols]
        self._ghi = highs[members[order]][:, cols]
        j = cols.index(field)
        self._key_lo = np.ascontiguousarray(self._glo[:, j])
        self._key_hi = np.ascontiguousarray(self._ghi[:, j])
        self.model = PiecewiseLinearModel(
            self._key_lo, self._key_hi, segments
        )
        self.window = int(np.ceil(self.model.max_error))
        #: True when a window miss proves a true miss (no fallback ever).
        self.guaranteed = self.window <= MAX_GUARANTEED_WINDOW
        if not self.guaranteed:
            self.window = 1
        self._offsets = np.arange(-self.window, self.window + 1)
        #: Cumulative counters (survive snapshots; see backend_stats).
        self.stats: Dict[str, int] = {
            "model_probes": 0,
            "center_hits": 0,
            "window_hits": 0,
            "fallbacks": 0,
            "mispredicts": 0,
        }
        #: Per-batch deltas drained by the engine into telemetry.
        self._pending: Dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------
    def _count(self, **events: int) -> None:
        stats = self.stats
        pending = self._pending
        for key, value in events.items():
            if value:
                stats[key] += value
                pending[key] = pending.get(key, 0) + value

    def drain_backend_events(self) -> Dict[str, int]:
        """Event deltas since the last drain (the telemetry feed)."""
        out, self._pending = self._pending, {}
        return out

    def backend_stats(self) -> Dict[str, object]:
        """Cumulative model statistics for reports and ``/snapshot``."""
        probes = self.stats["model_probes"]
        mispredicts = self.stats["mispredicts"]
        return {
            "model_probes": probes,
            "mispredicts": mispredicts,
            "mispredict_rate": mispredicts / probes if probes else 0.0,
            "fallbacks": self.stats["fallbacks"],
            "window": self.window,
            "guaranteed": self.guaranteed,
            "max_error": self.model.max_error,
            "learned_field": self._field,
        }

    def memory_items(self) -> int:
        """Stored scalars: per-slot bounds + model breakpoints."""
        return int(self._glo.size + self._ghi.size
                   + 2 * self.model.num_breakpoints)

    def _on_reindexed(self) -> None:
        """Tombstone views get their own counters: the serving engine's
        mispredict history must not leak into (or be mutated by) the
        rebuilt engine sharing the model arrays."""
        self.stats = dict(self.stats)
        self._pending = {}

    # -- lookup --------------------------------------------------------
    def _verify_slots(
        self, rows: np.ndarray, slots: np.ndarray, harr_rows: np.ndarray
    ) -> np.ndarray:
        """Full group-field containment for (row, slot) pairs."""
        lo = self._glo[slots]
        hi = self._ghi[slots]
        return ((lo <= harr_rows) & (harr_rows <= hi)).all(axis=1)

    def probe(self, header: Sequence[int]) -> Optional[int]:
        value = int(header[self._field])
        center = int(np.rint(
            self.model.predict(np.float64(value))
        ))
        n = self._key_lo.shape[0]
        center = min(max(center, 0), n - 1)
        slot = -1
        offset_used = 0
        for offset in range(-self.window, self.window + 1):
            pos = center + offset
            if 0 <= pos < n and (
                self._key_lo[pos] <= value <= self._key_hi[pos]
            ):
                slot = pos
                offset_used = offset
                break
        fallback = 0
        if slot < 0 and not self.guaranteed:
            pos = int(np.searchsorted(self._key_lo, value, side="right")) - 1
            fallback = 1
            if pos >= 0 and value <= self._key_hi[pos]:
                slot = pos
        self._count(
            model_probes=1,
            center_hits=1 if slot >= 0 and offset_used == 0 and not fallback
            else 0,
            window_hits=1 if slot >= 0 and offset_used != 0 else 0,
            fallbacks=fallback,
            mispredicts=1 if (slot >= 0 and offset_used != 0) or fallback
            else 0,
        )
        if slot < 0:
            return None
        values = np.asarray(
            [header[f] for f in self.fields], dtype=np.int64
        )
        if not ((self._glo[slot] <= values) & (values <= self._ghi[slot])
                ).all():
            return None
        return self._translate(int(self._slots[slot]))

    def probe_batch(
        self, headers: Sequence[Sequence[int]], harr: np.ndarray
    ) -> np.ndarray:
        n_slots = self._key_lo.shape[0]
        b = len(headers)
        out = np.full(b, -1, dtype=np.int64)
        if b == 0 or n_slots == 0:
            return out
        values = harr[:, self._field]
        pred = self.model.predict(values.astype(np.float64))
        center = np.clip(
            np.rint(pred).astype(np.int64), 0, n_slots - 1
        )
        # One (B, 2w+1) containment pass over the key field.
        positions = np.clip(center[:, None] + self._offsets, 0, n_slots - 1)
        inside = (self._key_lo[positions] <= values[:, None]) & (
            values[:, None] <= self._key_hi[positions]
        )
        found = inside.any(axis=1)
        # Disjoint key intervals: at most one window column can match.
        col = inside.argmax(axis=1)
        slot = positions[np.arange(b), col]
        center_hits = int(
            (found & (slot == center)).sum()
        )
        window_hits = int(found.sum()) - center_hits
        fallbacks = 0
        if not self.guaranteed:
            missing = np.nonzero(~found)[0]
            if missing.size:
                fallbacks = int(missing.size)
                pos = np.searchsorted(
                    self._key_lo, values[missing], side="right"
                ) - 1
                ok = pos >= 0
                pos_clip = np.where(ok, pos, 0)
                ok &= values[missing] <= self._key_hi[pos_clip]
                slot[missing[ok]] = pos_clip[ok]
                found[missing[ok]] = True
        self._count(
            model_probes=b,
            center_hits=center_hits,
            window_hits=window_hits,
            fallbacks=fallbacks,
            mispredicts=window_hits + fallbacks,
        )
        rows = np.nonzero(found)[0]
        if rows.size:
            group_cols = harr[rows][:, list(self.fields)]
            ok = self._verify_slots(rows, slot[rows], group_cols)
            hit_rows = rows[ok]
            result = self.rule_ids[self._slots[slot[hit_rows]]]
            out[hit_rows] = np.where(result >= 0, result, np.int64(-1))
        return out


class LearnedBackend(LookupBackend):
    """Registry adapter for :class:`LearnedGroupIndex`."""

    name = "learned"

    def supports(self, classifier: Classifier, group: Group) -> bool:
        return (
            group.size >= 1
            and _disjoint_field(classifier, group) is not None
        )

    def build(self, classifier, group, *, cascading=False):
        return LearnedGroupIndex(classifier, group)


register_backend(LearnedBackend())
