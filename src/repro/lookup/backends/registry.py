"""The backend registry and the build entry point.

A :class:`LookupBackend` is a *strategy for building* the per-group probe
structure: ``supports`` says whether it can serve a given group,
``build`` returns a ready :class:`~repro.lookup.group_engine.GroupIndex`
(whose ``probe_batch`` is the batched lookup and whose
``backend_report`` carries the memory/build-cost accounting).  Backends
register by name; :func:`build_with_backend` resolves a requested name —
or the ``auto`` policy — against a group, falling back to the group's
structural default whenever the requested backend cannot serve it, so a
forced ``--lookup-backend`` never produces a wrong or missing structure.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional

from ...analysis.mgr import Group
from ...core.classifier import Classifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..group_engine import GroupIndex

__all__ = [
    "AUTO_BACKEND",
    "LookupBackend",
    "backend_names",
    "build_with_backend",
    "get_backend",
    "register_backend",
]

#: The per-group selection policy; resolves to a registered backend via
#: :func:`~repro.lookup.backends.selector.select_backend`.
AUTO_BACKEND = "auto"


class LookupBackend:
    """Strategy interface for building a group's lookup structure.

    Subclasses set :attr:`name` and implement :meth:`supports` /
    :meth:`build`.  ``build`` must return a
    :class:`~repro.lookup.group_engine.GroupIndex` whose answers are
    decision-identical to a linear scan of the group members on the
    group fields — the engine's Theorem 2 false-positive check assumes
    exactly that contract.
    """

    #: Registry key; also stamped on built indexes as ``index.backend``.
    name: str = "abstract"

    def supports(self, classifier: Classifier, group: Group) -> bool:
        """Whether this backend can serve ``group`` exactly."""
        raise NotImplementedError

    def build(
        self,
        classifier: Classifier,
        group: Group,
        *,
        cascading: bool = False,
    ) -> "GroupIndex":
        """Construct the lookup structure for ``group``."""
        raise NotImplementedError


_REGISTRY: Dict[str, LookupBackend] = {}


def register_backend(backend: LookupBackend, replace: bool = False) -> None:
    """Register ``backend`` under ``backend.name``.

    Third-party structures (shared-memory residents, per-tenant views)
    plug in here; ``replace=True`` swaps an existing registration.
    """
    name = backend.name
    if not name or name == AUTO_BACKEND:
        raise ValueError(f"invalid backend name {name!r}")
    if name in _REGISTRY and not replace:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = backend


def get_backend(name: str) -> LookupBackend:
    """The registered backend called ``name`` (KeyError with the known
    names otherwise)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown lookup backend {name!r}; registered: "
            f"{', '.join(backend_names())}"
        ) from None


def backend_names(include_auto: bool = False) -> List[str]:
    """Registered backend names, sorted; optionally with ``auto``."""
    names = sorted(_REGISTRY)
    if include_auto:
        names.insert(0, AUTO_BACKEND)
    return names


def build_with_backend(
    classifier: Classifier,
    group: Group,
    backend: str = AUTO_BACKEND,
    *,
    cascading: bool = False,
    heat: Optional[dict] = None,
    position: Optional[int] = None,
) -> "GroupIndex":
    """Build ``group``'s lookup structure through the registry.

    ``backend`` is a registered name or ``auto``; ``heat`` is the
    ``groups`` mapping of a :meth:`~repro.obs.heat.HeatProfiler.report`
    and ``position`` the group's position in the engine (both feed the
    auto policy).  A named backend that does not support the group falls
    back to its structural default, so the call always succeeds with a
    correct structure.  The built index is stamped with its backend name,
    the build wall-clock and whether it was a fallback.
    """
    from .adapters import structural_backend_name
    from .selector import select_backend

    requested = backend
    if backend == AUTO_BACKEND:
        backend = select_backend(
            classifier, group, heat=heat, position=position
        )
    chosen = get_backend(backend)
    fallback = False
    if not chosen.supports(classifier, group):
        chosen = get_backend(structural_backend_name(group))
        fallback = True
    start = time.perf_counter()
    index = chosen.build(classifier, group, cascading=cascading)
    index.build_seconds = time.perf_counter() - start
    index.backend = chosen.name
    index.backend_requested = requested
    index.backend_fallback = fallback
    return index
