"""Heat-driven per-group backend selection (the ``auto`` policy).

"Self-Adjusting Packet Classification" (arXiv 2109.15090) shows the
winning structure depends on live traffic, not just static shape — so
``auto`` folds three signals into a per-group pick:

* **size** — tiny groups are fastest under the vectorized linear scan
  (no pointer chasing, no build cost); structures only pay off past
  :data:`LINEAR_CUTOVER` members;
* **field count** — one field admits the interval map, two the segment
  tree, more only the scan; the learned index additionally needs one
  provably-disjoint field (checked via the learned backend's
  ``supports``);
* **heat** — when a :class:`~repro.obs.heat.HeatProfiler` report is
  available (e.g. at incremental-rebuild time), a group that produced
  zero candidates over many probes is *cold*: every probe is a miss, a
  model cannot beat the classic structure there, and the pick demotes
  to the structural default.  Hot (or unprofiled) groups of at least
  :data:`LEARNED_MIN_SIZE` members get the learned index.

The policy is deterministic given (classifier, group, heat), so two
builds of the same state pick the same backends — which keeps engine
reports and the benchmark baselines reproducible.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ...analysis.mgr import Group
from ...core.classifier import Classifier
from .adapters import structural_backend_name
from .registry import get_backend

__all__ = [
    "LEARNED_MIN_SIZE",
    "LINEAR_CUTOVER",
    "group_heat_key",
    "select_backend",
]

#: Below this many members, the vectorized linear scan wins.
LINEAR_CUTOVER = 16

#: Minimum group size before training a learned model pays off.
LEARNED_MIN_SIZE = 64

#: A profiled group is "cold" past this many probes with no candidate.
COLD_PROBES = 1000


def group_heat_key(position: int, group: Group) -> str:
    """The :class:`~repro.obs.heat.HeatProfiler` key the engine records
    this group under (position + field subset)."""
    fields = ",".join(str(f) for f in group.fields)
    return f"g{position}[{fields}]"


def _is_cold(
    heat: Optional[Mapping[str, object]],
    position: Optional[int],
    group: Group,
) -> bool:
    """True when profiling shows the group absorbs no traffic."""
    if not heat or position is None:
        return False
    entry = heat.get(group_heat_key(position, group))
    if entry is None:
        return False
    if isinstance(entry, Mapping):
        probes = int(entry.get("probes", 0))
        candidates = int(entry.get("candidates", 0))
    else:  # a GroupHeat dataclass
        probes = int(getattr(entry, "probes", 0))
        candidates = int(getattr(entry, "candidates", 0))
    return probes >= COLD_PROBES and candidates == 0


def select_backend(
    classifier: Classifier,
    group: Group,
    *,
    heat: Optional[Mapping[str, object]] = None,
    position: Optional[int] = None,
) -> str:
    """Pick a backend name for ``group``.

    ``heat`` is the ``groups`` mapping of a heat report (keyed by
    :func:`group_heat_key`); ``position`` is the group's slot in the
    engine.  Both are optional — without them the pick is purely
    structural (size + field count).
    """
    if group.size < LINEAR_CUTOVER:
        return "linear"
    if group.size >= LEARNED_MIN_SIZE and not _is_cold(
        heat, position, group
    ):
        if get_backend("learned").supports(classifier, group):
            return "learned"
    return structural_backend_name(group)
