"""Adapters exposing the classic probe structures as lookup backends.

Each adapter wraps one of the pre-registry structures — the disjoint
interval map, the two-field segment tree (plain or cascaded) and the
vectorized linear scan — behind the :class:`~.registry.LookupBackend`
interface, preserving exactly the structures (and therefore the
decisions and complexities) the engine used before backends existed.
"""

from __future__ import annotations

from ...analysis.mgr import Group
from ...core.classifier import Classifier
from .registry import LookupBackend, register_backend

__all__ = [
    "IntervalBackend",
    "LinearBackend",
    "SegmentBackend",
    "structural_backend_name",
]


def structural_backend_name(group: Group) -> str:
    """The pre-registry structural default for a group's field count:
    interval map (1 field), segment tree (2), linear scan (more)."""
    if len(group.fields) == 1:
        return "interval"
    if len(group.fields) == 2:
        return "segment"
    return "linear"


class IntervalBackend(LookupBackend):
    """Binary search over pairwise-disjoint intervals — single-field
    groups only (O(log N) probes, linear memory)."""

    name = "interval"

    def supports(self, classifier: Classifier, group: Group) -> bool:
        return len(group.fields) == 1

    def build(self, classifier, group, *, cascading=False):
        from ..group_engine import _OneFieldIndex

        return _OneFieldIndex(classifier, group)


class SegmentBackend(LookupBackend):
    """Segment tree over field a with per-node disjoint maps on field b
    — two-field groups only (O(log^2 N), or O(log N) cascaded)."""

    name = "segment"

    def supports(self, classifier: Classifier, group: Group) -> bool:
        return len(group.fields) == 2

    def build(self, classifier, group, *, cascading=False):
        from ..group_engine import _TwoFieldGroupIndex

        return _TwoFieldGroupIndex(classifier, group, cascading)


class LinearBackend(LookupBackend):
    """Vectorized containment scan over the group members — any field
    count; O(N) per probe but with the smallest constants and zero build
    cost, which wins for tiny groups."""

    name = "linear"

    def supports(self, classifier: Classifier, group: Group) -> bool:
        return True

    def build(self, classifier, group, *, cascading=False):
        from ..group_engine import LinearGroupIndex

        return LinearGroupIndex(classifier, group)


register_backend(IntervalBackend())
register_backend(SegmentBackend())
register_backend(LinearBackend())
