"""Lookup over pairwise-disjoint intervals — the single-field engine.

A rule group that is order-independent on one field has pairwise-disjoint
intervals in that field, so a sorted array plus binary search gives
O(log N) lookup in linear memory.  This is the degenerate (and most common,
per Table 3) case of the paper's software representation.
"""

from __future__ import annotations

import bisect
from typing import Generic, Iterable, List, Optional, Tuple, TypeVar

from ..core.intervals import Interval

__all__ = ["DisjointIntervalMap"]

T = TypeVar("T")


class DisjointIntervalMap(Generic[T]):
    """Immutable map from pairwise-disjoint intervals to payloads.

    Construction is O(N log N); :meth:`lookup` is O(log N).  Overlapping
    input intervals raise ValueError — overlap would violate the
    order-independence contract of the caller.
    """

    def __init__(self, items: Iterable[Tuple[Interval, T]]) -> None:
        ordered = sorted(items, key=lambda item: item[0].low)
        self._lows: List[int] = []
        self._highs: List[int] = []
        self._payloads: List[T] = []
        previous_high = -1
        for interval, payload in ordered:
            if interval.low <= previous_high:
                raise ValueError(
                    f"intervals overlap: {interval} begins at or before "
                    f"{previous_high}"
                )
            self._lows.append(interval.low)
            self._highs.append(interval.high)
            self._payloads.append(payload)
            previous_high = interval.high

    def __len__(self) -> int:
        return len(self._lows)

    def lookup(self, value: int) -> Optional[T]:
        """Payload of the interval containing ``value``, or None."""
        i = bisect.bisect_right(self._lows, value) - 1
        if i >= 0 and value <= self._highs[i]:
            return self._payloads[i]
        return None

    def bounds(self) -> Tuple[List[int], List[int], List[T]]:
        """``(lows, highs, payloads)`` in ascending interval order — the
        raw sorted arrays, exposed for vectorized batch probes."""
        return self._lows, self._highs, self._payloads

    def intervals(self) -> List[Interval]:
        """The stored intervals in ascending order."""
        return [Interval(lo, hi) for lo, hi in zip(self._lows, self._highs)]

    def payloads(self) -> List[T]:
        """The stored payloads, aligned with :meth:`intervals`."""
        return list(self._payloads)
