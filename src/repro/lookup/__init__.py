"""Software lookup structures: interval maps, segment trees, group engine."""

from .cascading import CascadingTwoFieldIndex
from .decision_tree import DecisionTreeClassifier, TreeStats
from .tuple_space import TupleSpaceClassifier
from .group_engine import (
    GroupIndex,
    LinearGroupIndex,
    MultiGroupEngine,
    build_group_index,
)
from .interval_map import DisjointIntervalMap
from .segment_tree import FrozenSegmentTree, SegmentTree
from .two_field import TwoFieldIndex

__all__ = [
    "CascadingTwoFieldIndex",
    "DecisionTreeClassifier",
    "DisjointIntervalMap",
    "TreeStats",
    "TupleSpaceClassifier",
    "FrozenSegmentTree",
    "GroupIndex",
    "LinearGroupIndex",
    "MultiGroupEngine",
    "SegmentTree",
    "TwoFieldIndex",
    "build_group_index",
]
