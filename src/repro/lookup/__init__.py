"""Software lookup structures: interval maps, segment trees, group
engine, and the pluggable backend registry (:mod:`repro.lookup.backends`)."""

from .cascading import CascadingTwoFieldIndex
from .decision_tree import DecisionTreeClassifier, TreeStats
from .tuple_space import TupleSpaceClassifier
from .group_engine import (
    GroupIndex,
    LinearGroupIndex,
    MultiGroupEngine,
    build_group_index,
)
from .backends import (
    AUTO_BACKEND,
    LearnedGroupIndex,
    LookupBackend,
    backend_names,
    build_with_backend,
    get_backend,
    register_backend,
    select_backend,
)
from .interval_map import DisjointIntervalMap
from .segment_tree import FrozenSegmentTree, SegmentTree
from .two_field import TwoFieldIndex

__all__ = [
    "AUTO_BACKEND",
    "CascadingTwoFieldIndex",
    "DecisionTreeClassifier",
    "DisjointIntervalMap",
    "TreeStats",
    "TupleSpaceClassifier",
    "FrozenSegmentTree",
    "GroupIndex",
    "LearnedGroupIndex",
    "LinearGroupIndex",
    "LookupBackend",
    "MultiGroupEngine",
    "SegmentTree",
    "TwoFieldIndex",
    "backend_names",
    "build_group_index",
    "build_with_backend",
    "get_backend",
    "register_backend",
    "select_backend",
]
