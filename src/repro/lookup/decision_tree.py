"""HiCuts-style decision tree — the cutting-based software baseline.

The algorithmic family the paper's related work surveys ([11] HiCuts,
[32] HyperCuts, [39] EffiCuts) partitions the multi-dimensional rule space
with axis-parallel equal-width cuts until few enough rules remain per leaf
to scan linearly.  The well-known tradeoff — and the reason the paper takes
a different route — is *rule replication*: a rule spanning many children is
stored in all of them, so memory can blow up while lookup stays fast.

This implementation follows the HiCuts heuristics: pick the dimension with
the most distinct rule projections, cut into ``min(max_cuts, ~2*sqrt(n))``
equal slices, stop at ``binth`` rules per leaf or at ``max_depth``.  The
build reports replication statistics so benches can expose the tradeoff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.classifier import Classifier
from ..core.intervals import Interval

__all__ = ["DecisionTreeClassifier", "TreeStats"]


@dataclass
class TreeStats:
    """Build-time structure statistics."""

    nodes: int = 0
    leaves: int = 0
    max_depth: int = 0
    stored_rules: int = 0  # sum of leaf list lengths (replication included)

    def replication_factor(self, num_rules: int) -> float:
        """Stored rule references per original rule (memory blow-up)."""
        if num_rules == 0:
            return 1.0
        return self.stored_rules / num_rules


class _Node:
    __slots__ = ("dim", "low", "slice_width", "children", "rules")

    def __init__(self) -> None:
        self.dim: int = -1
        self.low: int = 0
        self.slice_width: int = 1
        self.children: Optional[List["_Node"]] = None
        self.rules: Optional[List[int]] = None  # leaf payload


class DecisionTreeClassifier:
    """First-match classification via HiCuts-style space cutting."""

    def __init__(
        self,
        classifier: Classifier,
        binth: int = 8,
        max_cuts: int = 16,
        max_depth: int = 24,
    ) -> None:
        if binth < 1:
            raise ValueError("binth must be >= 1")
        if max_cuts < 2:
            raise ValueError("max_cuts must be >= 2")
        self.classifier = classifier
        self.binth = binth
        self.max_cuts = max_cuts
        self.max_depth = max_depth
        self.stats = TreeStats()
        region = tuple(
            Interval(0, spec.max_value) for spec in classifier.schema
        )
        self._root = self._build(
            list(range(len(classifier.body))), region, 0
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _distinct_projections(
        self, rules: Sequence[int], region: Tuple[Interval, ...], dim: int
    ) -> int:
        body = self.classifier.body
        seen = set()
        for idx in rules:
            clipped = body[idx].intervals[dim].intersection(region[dim])
            if clipped is not None:
                seen.add((clipped.low, clipped.high))
        return len(seen)

    def _make_leaf(self, rules: List[int], depth: int) -> _Node:
        node = _Node()
        node.rules = sorted(rules)
        self.stats.nodes += 1
        self.stats.leaves += 1
        self.stats.stored_rules += len(rules)
        self.stats.max_depth = max(self.stats.max_depth, depth)
        return node

    def _build(
        self,
        rules: List[int],
        region: Tuple[Interval, ...],
        depth: int,
    ) -> _Node:
        if len(rules) <= self.binth or depth >= self.max_depth:
            return self._make_leaf(rules, depth)
        # HiCuts dimension choice: most distinct projections.
        num_fields = self.classifier.num_fields
        scores = [
            self._distinct_projections(rules, region, d)
            for d in range(num_fields)
        ]
        dim = max(range(num_fields), key=lambda d: scores[d])
        if scores[dim] <= 1:
            return self._make_leaf(rules, depth)  # cutting cannot separate
        span = region[dim].size
        cuts = min(self.max_cuts, max(2, int(2 * math.sqrt(len(rules)))))
        cuts = min(cuts, span)
        if cuts < 2:
            return self._make_leaf(rules, depth)
        slice_width = math.ceil(span / cuts)
        body = self.classifier.body
        node = _Node()
        node.dim = dim
        node.low = region[dim].low
        node.slice_width = slice_width
        node.children = []
        self.stats.nodes += 1
        self.stats.max_depth = max(self.stats.max_depth, depth)
        position = region[dim].low
        while position <= region[dim].high:
            child_interval = Interval(
                position, min(position + slice_width - 1, region[dim].high)
            )
            child_region = (
                region[:dim] + (child_interval,) + region[dim + 1 :]
            )
            child_rules = [
                idx
                for idx in rules
                if body[idx].intervals[dim].overlaps(child_interval)
            ]
            if child_rules == rules:
                # No separation in this slice: avoid infinite recursion by
                # leafing out (HiCuts' space-measure fallback).
                node.children.append(self._make_leaf(child_rules, depth + 1))
            else:
                node.children.append(
                    self._build(child_rules, child_region, depth + 1)
                )
            position += slice_width
        return node

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def match_index(self, header: Sequence[int]) -> Optional[int]:
        """Highest-priority matching body-rule index, or None."""
        node = self._root
        while node.rules is None:
            slot = (header[node.dim] - node.low) // node.slice_width
            assert node.children is not None
            if slot < 0 or slot >= len(node.children):
                return None  # out of the root region: impossible by schema
            node = node.children[slot]
        body = self.classifier.body
        for idx in node.rules:
            if body[idx].matches(header):
                return idx
        return None

    def match(self, header: Sequence[int]):
        """Classifier-compatible result (catch-all on miss)."""
        from ..core.classifier import MatchResult

        index = self.match_index(header)
        if index is None:
            index = len(self.classifier.rules) - 1
        return MatchResult(index, self.classifier.rules[index])
