"""Static segment tree over coordinate-compressed intervals.

The backbone of the two-field lookup structure: rules are stabbed into the
O(log N) canonical nodes covering their first-field interval, and a point
query visits exactly the root-to-leaf path of nodes whose span contains the
query value.  Memory is O(N log N) node-slots; with N rules each stored in
at most 2 log N nodes, the structure is linear in N up to the logarithmic
factor the paper's two-field scheme also carries.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from ..core.intervals import Interval

__all__ = ["SegmentTree"]

T = TypeVar("T")


class SegmentTree(Generic[T]):
    """Segment tree with payload lists at canonical nodes.

    Build once from the interval population (for coordinate compression),
    then :meth:`insert` each (interval, payload) and answer :meth:`stab`
    queries — iterating the payload lists of every node on the query path.
    """

    def __init__(self, intervals: Iterable[Interval]) -> None:
        # Elementary boundaries: every low and high+1 becomes a cut so each
        # inserted interval is an exact union of elementary segments.
        cuts = set()
        for interval in intervals:
            cuts.add(interval.low)
            cuts.add(interval.high + 1)
        if not cuts:
            cuts = {0, 1}
        self._bounds: List[int] = sorted(cuts)
        # Elementary segment i spans [bounds[i], bounds[i+1] - 1]; add
        # sentinel segments for values outside every interval.
        self._num_leaves = max(1, len(self._bounds) - 1)
        size = 1
        while size < self._num_leaves:
            size *= 2
        self._size = size
        self._nodes: List[Optional[List[Tuple[Interval, T]]]] = [None] * (2 * size)

    # ------------------------------------------------------------------
    # Coordinate helpers
    # ------------------------------------------------------------------
    def _leaf_of(self, value: int) -> Optional[int]:
        """Elementary segment index containing ``value``, or None if the
        value falls outside all segments."""
        import bisect

        i = bisect.bisect_right(self._bounds, value) - 1
        if i < 0 or i >= self._num_leaves:
            return None
        return i

    def _leaf_range(self, interval: Interval) -> Tuple[int, int]:
        """[first, last] elementary segment indices of an inserted interval
        (must align with the compression cuts)."""
        import bisect

        first = bisect.bisect_left(self._bounds, interval.low)
        last = bisect.bisect_left(self._bounds, interval.high + 1) - 1
        if (
            first >= len(self._bounds)
            or self._bounds[first] != interval.low
            or last + 1 >= len(self._bounds)
            or self._bounds[last + 1] != interval.high + 1
        ):
            raise ValueError(
                f"interval {interval} was not part of the compression set"
            )
        return first, last

    # ------------------------------------------------------------------
    # Insertion and query
    # ------------------------------------------------------------------
    def insert(self, interval: Interval, payload: T) -> int:
        """Store ``payload`` at the canonical nodes covering ``interval``.
        Returns the number of nodes used (at most ~2 log N)."""
        first, last = self._leaf_range(interval)
        used = 0
        lo = first + self._size
        hi = last + self._size
        while lo <= hi:
            if lo & 1:
                used += self._attach(lo, interval, payload)
                lo += 1
            if not hi & 1:
                used += self._attach(hi, interval, payload)
                hi -= 1
            lo //= 2
            hi //= 2
        return used

    def _attach(self, node: int, interval: Interval, payload: T) -> int:
        bucket = self._nodes[node]
        if bucket is None:
            bucket = []
            self._nodes[node] = bucket
        bucket.append((interval, payload))
        return 1

    def stab(self, value: int) -> Iterator[Tuple[Interval, T]]:
        """Yield every (interval, payload) whose interval contains
        ``value`` — all buckets on the root-to-leaf path."""
        leaf = self._leaf_of(value)
        if leaf is None:
            return
        node = leaf + self._size
        while node >= 1:
            bucket = self._nodes[node]
            if bucket:
                yield from bucket
            node //= 2

    def path_buckets(self, value: int) -> Iterator[List[Tuple[Interval, T]]]:
        """Yield the non-empty buckets on the query path (the two-field
        structure binary-searches each bucket instead of scanning it)."""
        leaf = self._leaf_of(value)
        if leaf is None:
            return
        node = leaf + self._size
        while node >= 1:
            bucket = self._nodes[node]
            if bucket:
                yield bucket
            node //= 2

    def freeze(self, transform) -> "FrozenSegmentTree":
        """Finish construction: map every non-empty bucket through
        ``transform`` and return an immutable query structure whose
        :meth:`FrozenSegmentTree.path` yields the transformed buckets."""
        frozen = {
            i: transform(bucket)
            for i, bucket in enumerate(self._nodes)
            if bucket
        }
        return FrozenSegmentTree(self._bounds, self._num_leaves, self._size, frozen)

    @property
    def num_slots(self) -> int:
        """Total stored (interval, payload) slots — the memory figure."""
        return sum(len(b) for b in self._nodes if b)


class FrozenSegmentTree:
    """Read-only segment tree whose node payloads were transformed by
    :meth:`SegmentTree.freeze` (e.g. into binary-searchable maps)."""

    def __init__(self, bounds, num_leaves, size, nodes) -> None:
        self._bounds = bounds
        self._num_leaves = num_leaves
        self._size = size
        self._nodes = nodes

    def path(self, value: int):
        """Yield the transformed buckets on the root-to-leaf path of
        ``value``."""
        import bisect

        i = bisect.bisect_right(self._bounds, value) - 1
        if i < 0 or i >= self._num_leaves:
            return
        node = i + self._size
        while node >= 1:
            bucket = self._nodes.get(node)
            if bucket is not None:
                yield bucket
            node //= 2
