"""Tuple Space Search (TSS) — the classic software baseline [35].

Srinivasan, Suri and Varghese's observation: rules using the same
combination of per-field prefix lengths ("a tuple") can share one exact-
match hash table — mask each field to its tuple's length and the rule
becomes a hash key.  Classification probes every tuple and keeps the
highest-priority hit; the tuple count, not the rule count, bounds lookup
cost.  The paper cites TSS as a prior reduction attempt without worst-case
guarantees ([35] in contribution (3)): adversarial classifiers need many
tuples, and every range field multiplies the entries.

Range fields are handled the standard way — expanded into prefixes, one
hash entry per prefix combination — so a TSS build exposes exactly the
range-expansion cost that motivates SAX-PAC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.classifier import Classifier
from ..core.intervals import split_into_prefixes

__all__ = ["TupleSpaceClassifier"]


class TupleSpaceClassifier:
    """First-match TSS over a classifier's body rules."""

    def __init__(
        self,
        classifier: Classifier,
        rule_indices: Optional[Sequence[int]] = None,
    ) -> None:
        self.classifier = classifier
        widths = classifier.schema.widths
        self._widths = widths
        # tuple (plen per field) -> { masked key -> best rule index }
        self._tables: Dict[Tuple[int, ...], Dict[Tuple[int, ...], int]] = {}
        self._entries = 0
        indices = (
            list(rule_indices)
            if rule_indices is not None
            else range(len(classifier.body))
        )
        for idx in indices:
            self._insert(idx)

    def _insert(self, idx: int) -> None:
        rule = self.classifier.rules[idx]
        per_field: List[List[Tuple[int, int]]] = [
            list(split_into_prefixes(iv, w))
            for iv, w in zip(rule.intervals, self._widths)
        ]

        def expand(field: int, plens: List[int], values: List[int]) -> None:
            if field == len(per_field):
                table = self._tables.setdefault(tuple(plens), {})
                key = tuple(values)
                current = table.get(key)
                if current is None or idx < current:
                    if current is None:
                        self._entries += 1
                    table[key] = idx
                return
            for value, plen in per_field[field]:
                plens.append(plen)
                values.append(value)
                expand(field + 1, plens, values)
                plens.pop()
                values.pop()

        expand(0, [], [])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        """Hash tables probed per lookup — TSS's cost driver."""
        return len(self._tables)

    @property
    def num_entries(self) -> int:
        """Stored hash entries (includes range-expansion replication)."""
        return self._entries

    def tuple_histogram(self) -> Dict[Tuple[int, ...], int]:
        """Entries per tuple; useful to see the range-expansion spread."""
        return {t: len(table) for t, table in self._tables.items()}

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def match_index(self, header: Sequence[int]) -> Optional[int]:
        """Highest-priority matching body-rule index, or None."""
        best: Optional[int] = None
        widths = self._widths
        for plens, table in self._tables.items():
            key = tuple(
                (value >> (width - plen)) if plen < width else value
                for value, width, plen in zip(header, widths, plens)
            )
            found = table.get(key)
            if found is not None and (best is None or found < best):
                best = found
        return best

    def match(self, header: Sequence[int]):
        """Classifier-compatible result (catch-all on miss)."""
        from ..core.classifier import MatchResult

        index = self.match_index(header)
        if index is None:
            index = len(self.classifier.rules) - 1
        return MatchResult(index, self.classifier.rules[index])
