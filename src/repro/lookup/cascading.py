"""Fractional cascading for the two-field lookup — O(log N) total.

The plain :class:`~repro.lookup.two_field.TwoFieldIndex` walks the O(log N)
segment-tree path and performs an independent O(log N) binary search at
every node — O(log^2 N) overall.  The paper's cited bound ([36]) is
O(log N); fractional cascading is the classical way to get there: search
the *root's* augmented catalog once, then follow constant-time bridge
pointers down the path instead of re-searching.

Construction (bottom-up over the segment-tree heap):

* every node v keeps its own catalog — the second-field interval lows of
  the rules stored at v (pairwise disjoint by order-independence);
* the augmented list ``A_v`` merges v's catalog keys with every second
  element of each child's augmented list, so |A_v| summed over the tree is
  at most a constant factor of the total catalog size (linear memory);
* each augmented element stores three bridges: its position in v's own
  catalog and its positions in the children's augmented lists.

Query(q_a, q_b): locate the leaf for ``q_a``; binary-search ``q_b`` once in
``A_root``; at each node on the root-to-leaf path, convert the augmented
position to a catalog position (O(1)), test the single candidate interval,
and hop to the child's augmented position via the bridge plus a bounded
local walk (the every-second-element sampling guarantees the bridge is off
by at most a couple of slots).
"""

from __future__ import annotations

import bisect
from typing import Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..core.intervals import Interval
from .segment_tree import SegmentTree

__all__ = ["CascadingTwoFieldIndex"]

T = TypeVar("T")


class _Node:
    """Per-heap-node catalog + augmented list + bridges."""

    __slots__ = (
        "lows", "highs", "payloads", "aug", "to_catalog", "to_left",
        "to_right",
    )

    def __init__(self) -> None:
        self.lows: List[int] = []
        self.highs: List[int] = []
        self.payloads: List[T] = []
        self.aug: List[int] = []
        self.to_catalog: List[int] = []
        self.to_left: List[int] = []
        self.to_right: List[int] = []


def _merge_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    out: List[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


class CascadingTwoFieldIndex(Generic[T]):
    """Drop-in alternative to TwoFieldIndex with cascaded second-field
    searches.  Same precondition: the rule set must be order-independent
    on the two dimensions."""

    def __init__(self, items: Iterable[Tuple[Interval, Interval, T]]) -> None:
        triples = list(items)
        tree: SegmentTree[Tuple[Interval, T]] = SegmentTree(
            a for a, _b, _p in triples
        )
        for a, b, payload in triples:
            tree.insert(a, (b, payload))
        self._bounds = tree._bounds
        self._num_leaves = tree._num_leaves
        self._size = tree._size
        self._count = len(triples)
        heap_len = 2 * self._size
        self._nodes: List[_Node] = [_Node() for _ in range(heap_len)]
        # Fill catalogs from the segment tree's buckets (sorted by b.low;
        # disjointness is what makes a single candidate per node valid).
        for index in range(1, heap_len):
            bucket = tree._nodes[index] if index < len(tree._nodes) else None
            if not bucket:
                continue
            node = self._nodes[index]
            for _a, (b, payload) in sorted(
                bucket, key=lambda item: item[1][0].low
            ):
                if node.lows and b.low <= node.highs[-1]:
                    raise ValueError(
                        "rule set is not order-independent on the two "
                        "chosen fields (overlap within a canonical node)"
                    )
                node.lows.append(b.low)
                node.highs.append(b.high)
                node.payloads.append(payload)
        # Build augmented lists bottom-up.
        for index in range(heap_len - 1, 0, -1):
            node = self._nodes[index]
            left_i, right_i = 2 * index, 2 * index + 1
            sampled: List[int] = []
            if left_i < heap_len:
                sampled = self._nodes[left_i].aug[::2]
            if right_i < heap_len:
                sampled = _merge_sorted(
                    sampled, self._nodes[right_i].aug[::2]
                )
            node.aug = _merge_sorted(node.lows, sampled)
            node.to_catalog = [
                bisect.bisect_left(node.lows, key) for key in node.aug
            ]
            if left_i < heap_len:
                left_aug = self._nodes[left_i].aug
                node.to_left = [
                    bisect.bisect_left(left_aug, key) for key in node.aug
                ]
            if right_i < heap_len:
                right_aug = self._nodes[right_i].aug
                node.to_right = [
                    bisect.bisect_left(right_aug, key) for key in node.aug
                ]

    def __len__(self) -> int:
        return self._count

    @property
    def memory_slots(self) -> int:
        """Augmented + catalog entries — linear in the stored rules."""
        return sum(len(n.aug) + len(n.lows) for n in self._nodes)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _leaf_of(self, value: int) -> Optional[int]:
        i = bisect.bisect_right(self._bounds, value) - 1
        if i < 0 or i >= self._num_leaves:
            return None
        return i

    def lookup(self, value_a: int, value_b: int) -> Optional[T]:
        """Payload of the unique matching triple, or None."""
        leaf = self._leaf_of(value_a)
        if leaf is None:
            return None
        # Root-to-leaf path in the heap.
        path: List[int] = []
        node_index = leaf + self._size
        while node_index >= 1:
            path.append(node_index)
            node_index //= 2
        path.reverse()
        # One real binary search, at the root; everything below is O(1).
        query = value_b + 1  # bisect_left with q+1 == bisect_right with q
        root = self._nodes[path[0]]
        pos = bisect.bisect_left(root.aug, query)
        for depth, index in enumerate(path):
            node = self._nodes[index]
            # Candidate catalog slot: last interval with low <= value_b.
            if node.lows:
                if pos < len(node.aug):
                    cpos = node.to_catalog[pos]
                else:
                    cpos = len(node.lows)
                # to_catalog maps the aug key, which is >= query-1; fix up
                # so cpos = bisect_left(lows, query).
                while cpos > 0 and node.lows[cpos - 1] >= query:
                    cpos -= 1
                while cpos < len(node.lows) and node.lows[cpos] < query:
                    cpos += 1
                ci = cpos - 1
                if ci >= 0 and node.highs[ci] >= value_b:
                    return node.payloads[ci]
            if depth + 1 == len(path):
                break
            child_index = path[depth + 1]
            bridges = node.to_left if child_index % 2 == 0 else node.to_right
            child_aug = self._nodes[child_index].aug
            if pos < len(node.aug):
                child_pos = bridges[pos]
            else:
                child_pos = len(child_aug)
            # Local fix-up: the sample keeps us within a couple of slots.
            while child_pos > 0 and child_aug[child_pos - 1] >= query:
                child_pos -= 1
            while child_pos < len(child_aug) and child_aug[child_pos] < query:
                child_pos += 1
            pos = child_pos
        return None
