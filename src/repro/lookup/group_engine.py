"""Multi-group software engine (Theorem 3).

Executes the lookup procedure of Figures 4-5: every group — order-
independent on at most l of the fields — is probed with the header's values
on *its own* field subset, returns at most one candidate rule, and the
candidate is checked on all remaining fields to rule out a false positive
(Theorem 2).  The highest-priority surviving candidate wins; the catch-all
backstops everything.

Group probes use a pluggable lookup backend per group
(:mod:`repro.lookup.backends`): binary search over disjoint intervals,
the segment-tree two-field index, a vectorized linear scan, or the
learned range index — picked explicitly or by the heat-driven ``auto``
policy (:func:`~repro.lookup.backends.select_backend`).  Every backend
is decision-identical; only the time/memory profile differs.

The ``shadow`` mechanism implements the Section 7.2 insertion trick
(Example 10): a freshly inserted rule that would need more fields/groups
can ride along as an extra false-positive check attached to the rules it
collides with, bounded by the line-rate budget C.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.mgr import Group
from ..core.classifier import Classifier, MatchResult
from ..core.intervals import Interval
from ..core.packet import headers_array
from ..runtime.telemetry import NULL_RECORDER
from .cascading import CascadingTwoFieldIndex
from .interval_map import DisjointIntervalMap
from .two_field import TwoFieldIndex

__all__ = ["GroupIndex", "LinearGroupIndex", "MultiGroupEngine", "build_group_index"]


class GroupIndex:
    """Interface: probe a group with a header, get at most one candidate
    body-rule index (pre false-positive check).

    The lookup structures store **slots** (positions within the group's
    member list); the per-index ``rule_ids`` array translates a slot to
    its classifier rule index.  That indirection is what makes incremental
    rebuilds cheap: a priority shift re-labels rules with a new
    ``rule_ids`` array via :meth:`reindexed` (sharing the interval maps /
    segment trees untouched), and a removal tombstones its slot with -1
    without rebuilding the structure — sound because group members are
    pairwise disjoint on the group fields, so a dead slot's region has no
    other candidate in this group.
    """

    fields: Tuple[int, ...]
    #: slot -> classifier rule index; -1 marks a tombstoned (removed) slot.
    rule_ids: np.ndarray
    #: Which registered lookup backend built this index (stamped by
    #: :func:`repro.lookup.backends.build_with_backend`).
    backend: str = "custom"
    #: What the caller asked for (``auto`` or a forced name).
    backend_requested: str = "custom"
    #: True when the requested backend could not serve this group and
    #: the structural default was used instead.
    backend_fallback: bool = False
    #: Wall-clock seconds spent constructing this index.
    build_seconds: float = 0.0

    def probe(self, header: Sequence[int]) -> Optional[int]:
        """Candidate rule index matching on the group fields, or None."""
        raise NotImplementedError

    def probe_batch(
        self, headers: Sequence[Sequence[int]], harr: np.ndarray
    ) -> np.ndarray:
        """Candidates for a whole batch: int64 array aligned with
        ``headers``, -1 where the group yields no candidate.  ``harr`` is
        the :func:`~repro.core.packet.headers_array` view of ``headers``;
        subclasses with vectorizable structures override this."""
        out = np.full(len(headers), -1, dtype=np.int64)
        probe = self.probe
        for j, header in enumerate(headers):
            candidate = probe(header)
            if candidate is not None:
                out[j] = candidate
        return out

    def reindexed(self, rule_ids: Sequence[int]) -> "GroupIndex":
        """Shallow copy sharing the lookup structure, with slots relabeled
        by ``rule_ids`` (length = slot count; -1 tombstones a slot).

        The clone carries its backend identity but gets *private* mutable
        backend state (via :meth:`_on_reindexed`) — counters and pending
        telemetry must not be shared between the serving engine and a
        tombstone view, or rebuilds would double-count (and a retired
        engine could mutate its successor's stats).
        """
        clone = copy.copy(self)
        clone.rule_ids = np.asarray(rule_ids, dtype=np.int64)
        if clone.rule_ids.shape != self.rule_ids.shape:
            raise ValueError(
                f"rule_ids must cover all {self.rule_ids.shape[0]} slots"
            )
        clone._on_reindexed()
        return clone

    def _on_reindexed(self) -> None:
        """Hook for subclasses holding mutable backend state: give the
        reindexed clone its own copies.  Default: nothing to carry."""

    def __len__(self) -> int:
        """Live (non-tombstoned) rules in the group."""
        return int((self.rule_ids >= 0).sum())

    # -- backend accounting (see repro.lookup.backends) ----------------
    def memory_items(self) -> int:
        """Stored scalars — the memory half of the backend report."""
        return int(self.rule_ids.size)

    def backend_stats(self) -> Dict[str, object]:
        """Backend-specific cumulative statistics (learned mispredict
        rates etc.); empty for stateless structures."""
        return {}

    def drain_backend_events(self) -> Dict[str, int]:
        """Event deltas since the last drain, for telemetry counters;
        empty for stateless structures."""
        return {}

    def backend_report(self) -> Dict[str, object]:
        """Memory + build-cost summary of this index (the report half of
        the :class:`~repro.lookup.backends.LookupBackend` protocol)."""
        report: Dict[str, object] = {
            "backend": self.backend,
            "requested": self.backend_requested,
            "fallback": self.backend_fallback,
            "fields": list(self.fields),
            "slots": int(self.rule_ids.size),
            "live": len(self),
            "memory_items": self.memory_items(),
            "build_seconds": self.build_seconds,
        }
        stats = self.backend_stats()
        if stats:
            report["stats"] = stats
        return report

    def _translate(self, slot: Optional[int]) -> Optional[int]:
        if slot is None:
            return None
        rid = int(self.rule_ids[slot])
        return rid if rid >= 0 else None


class _OneFieldIndex(GroupIndex):
    backend = "interval"

    def __init__(self, classifier: Classifier, group: Group) -> None:
        self.fields = group.fields
        self.rule_ids = np.asarray(group.rule_indices, dtype=np.int64)
        (f,) = group.fields
        self._field = f
        self._map: DisjointIntervalMap[int] = DisjointIntervalMap(
            (classifier.rules[idx].intervals[f], slot)
            for slot, idx in enumerate(group.rule_indices)
        )

    def probe(self, header: Sequence[int]) -> Optional[int]:
        return self._translate(self._map.lookup(header[self._field]))

    def memory_items(self) -> int:
        return 2 * len(self._map) + int(self.rule_ids.size)

    def probe_batch(
        self, headers: Sequence[Sequence[int]], harr: np.ndarray
    ) -> np.ndarray:
        """Vectorized binary search: one ``searchsorted`` for the whole
        batch instead of B bisects."""
        lows, highs, payloads = self._map.bounds()
        if not lows:
            return np.full(len(headers), -1, dtype=np.int64)
        values = harr[:, self._field]
        lows_arr = np.asarray(lows)
        pos = np.searchsorted(lows_arr, values, side="right") - 1
        inside = pos >= 0
        clamped = np.where(inside, pos, 0)
        inside &= values <= np.asarray(highs)[clamped]
        result = self.rule_ids[np.asarray(payloads, dtype=np.int64)[clamped]]
        return np.where(inside & (result >= 0), result, np.int64(-1))


class _TwoFieldGroupIndex(GroupIndex):
    backend = "segment"

    def __init__(
        self, classifier: Classifier, group: Group, cascading: bool = False
    ) -> None:
        self.fields = group.fields
        self.rule_ids = np.asarray(group.rule_indices, dtype=np.int64)
        a, b = group.fields
        self._a = a
        self._b = b
        structure = CascadingTwoFieldIndex if cascading else TwoFieldIndex
        self._index = structure(
            (
                classifier.rules[idx].intervals[a],
                classifier.rules[idx].intervals[b],
                slot,
            )
            for slot, idx in enumerate(group.rule_indices)
        )

    def probe(self, header: Sequence[int]) -> Optional[int]:
        return self._translate(self._index.lookup(header[self._a], header[self._b]))

    def memory_items(self) -> int:
        slots = self._index.memory_slots
        return int(slots) + int(self.rule_ids.size)

    def probe_batch(
        self, headers: Sequence[Sequence[int]], harr: np.ndarray
    ) -> np.ndarray:
        """Per-header tree walks with the dispatch hoisted out of the
        loop (the segment-tree path itself is not batch-vectorizable)."""
        out = np.full(len(headers), -1, dtype=np.int64)
        lookup = self._index.lookup
        rule_ids = self.rule_ids
        a, b = self._a, self._b
        for j, header in enumerate(headers):
            slot = lookup(header[a], header[b])
            if slot is not None:
                out[j] = rule_ids[slot]
        return out


class LinearGroupIndex(GroupIndex):
    """Fallback for groups keyed on more than two fields: scan members,
    matching only the group fields.  Order-independence on those fields
    still guarantees at most one hit."""

    backend = "linear"

    def __init__(self, classifier: Classifier, group: Group) -> None:
        self.fields = group.fields
        self.rule_ids = np.asarray(group.rule_indices, dtype=np.int64)
        self._members: List[Tuple[int, Tuple[Interval, ...]]] = [
            (
                slot,
                tuple(classifier.rules[idx].intervals[f] for f in group.fields),
            )
            for slot, idx in enumerate(group.rule_indices)
        ]
        self._bounds: Optional[Tuple[np.ndarray, ...]] = None

    def memory_items(self) -> int:
        return 2 * len(self._members) * len(self.fields) + int(
            self.rule_ids.size
        )

    def probe(self, header: Sequence[int]) -> Optional[int]:
        """Linear scan over members, matching only the group fields."""
        values = [header[f] for f in self.fields]
        for slot, intervals in self._members:
            if all(iv.contains(v) for iv, v in zip(intervals, values)):
                return self._translate(slot)
        return None

    def probe_batch(
        self, headers: Sequence[Sequence[int]], harr: np.ndarray
    ) -> np.ndarray:
        """Vectorized scan: one containment test over the (B, M, f) cube.
        Order-independence on the group fields means at most one member
        matches, so 'first match' needs no tie-breaking."""
        if not self._members:
            return np.full(len(headers), -1, dtype=np.int64)
        if self._bounds is None:
            slots = np.asarray([m for m, _ in self._members], dtype=np.int64)
            lo = np.asarray(
                [[iv.low for iv in ivs] for _, ivs in self._members]
            )
            hi = np.asarray(
                [[iv.high for iv in ivs] for _, ivs in self._members]
            )
            self._bounds = (slots, lo, hi)
        slots, lo, hi = self._bounds
        values = harr[:, list(self.fields)]
        cube = values[:, None, :]
        ok = ((lo[None, :, :] <= cube) & (cube <= hi[None, :, :])).all(axis=2)
        hit = ok.any(axis=1)
        result = self.rule_ids[slots[ok.argmax(axis=1)]]
        return np.where(hit & (result >= 0), result, np.int64(-1))


def build_group_index(
    classifier: Classifier,
    group: Group,
    cascading: bool = False,
    backend: str = "structural",
    heat: Optional[Dict[str, object]] = None,
    position: Optional[int] = None,
) -> GroupIndex:
    """Build a group's lookup structure through the backend registry.

    ``backend`` is a registered backend name, ``auto`` (the heat-driven
    selector) or ``structural`` — the historical field-count dispatch:
    interval map (1 field), segment tree (2, with ``cascading`` picking
    the fractionally-cascaded variant), linear scan otherwise.
    """
    from .backends import build_with_backend, structural_backend_name

    if backend == "structural":
        backend = structural_backend_name(group)
    return build_with_backend(
        classifier,
        group,
        backend,
        cascading=cascading,
        heat=heat,
        position=position,
    )


@dataclass
class EngineStats:
    """Operational counters for experiments."""

    lookups: int = 0
    probes: int = 0
    candidates: int = 0
    false_positives: int = 0
    shadow_checks: int = 0


class MultiGroupEngine:
    """The software half of SAX-PAC: parallel (simulated) group lookups,
    false-positive verification, priority merge.

    Matches only rules placed in its groups; returns None for headers whose
    best match lives elsewhere (the order-dependent part D or the
    catch-all) so that a hybrid wrapper can merge results.
    """

    def __init__(
        self,
        classifier: Classifier,
        groups: Iterable[Group],
        shadow: Optional[Dict[int, Tuple[int, ...]]] = None,
        cascading: bool = False,
        recorder=None,
        prebuilt: Optional[Sequence[GroupIndex]] = None,
        backend: str = "auto",
        heat: Optional[Dict[str, object]] = None,
    ) -> None:
        self.classifier = classifier
        #: Backend spec the engine was built with (``auto`` or a forced
        #: name) — rebuilds re-resolve it against fresh group shapes.
        self.backend_spec = backend
        if prebuilt is not None:
            # Incremental rebuilds hand over already-constructed (possibly
            # reindexed / tombstoned) group indexes; ``groups`` is ignored.
            self.groups = list(prebuilt)
        else:
            self.groups = [
                build_group_index(
                    classifier, g, cascading,
                    backend=backend, heat=heat, position=i,
                )
                for i, g in enumerate(groups)
            ]
        self.shadow: Dict[int, Tuple[int, ...]] = dict(shadow or {})
        self.stats = EngineStats()
        #: Telemetry sink (``groups.*`` counters, ``engine.group_probe``
        #: spans, per-group heat); the null recorder keeps it free.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: Stable per-group heat keys: position + field subset.
        self._group_keys = [
            f"g{i}[{','.join(str(f) for f in g.fields)}]"
            for i, g in enumerate(self.groups)
        ]

    @property
    def num_rules(self) -> int:
        """Total rules held across all group indexes."""
        return sum(len(g) for g in self.groups)

    def backend_summary(self) -> List[Dict[str, object]]:
        """Per-group backend reports (name, fallback, memory, build cost,
        backend-specific stats), in group order."""
        return [g.backend_report() for g in self.groups]

    @property
    def shadow_load(self) -> int:
        """Worst-case extra false-positive checks on any candidate — must
        stay within the line-rate budget C (Section 7.2)."""
        if not self.shadow:
            return 0
        return max(len(v) for v in self.shadow.values())

    def lookup(self, header: Sequence[int]) -> Optional[int]:
        """Best (lowest) matching body-rule index across all groups, after
        false-positive checks, or None if no group rule truly matches."""
        self.stats.lookups += 1
        rules = self.classifier.rules
        best: Optional[int] = None
        for group in self.groups:
            self.stats.probes += 1
            candidate = group.probe(header)
            if candidate is None:
                continue
            self.stats.candidates += 1
            if rules[candidate].matches(header):
                if best is None or candidate < best:
                    best = candidate
            else:
                self.stats.false_positives += 1
            for extra in self.shadow.get(candidate, ()):
                self.stats.shadow_checks += 1
                if rules[extra].matches(header) and (best is None or extra < best):
                    best = extra
        return best

    def lookup_batch(
        self,
        headers: Sequence[Sequence[int]],
        harr: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched :meth:`lookup`: best verified body-rule index per
        header (int64, -1 where no group rule matches).

        Probes each group index once for the whole batch, then verifies
        every candidate on all fields in one vectorized containment test
        against :meth:`Classifier.bounds_arrays`.  Stats are updated in
        aggregate; results are identical to per-header :meth:`lookup`.
        """
        n = len(headers)
        stats = self.stats
        stats.lookups += n
        if n == 0:
            return np.empty(0, dtype=np.int64)
        recorder = self.recorder
        instrumented = recorder.enabled
        heat = recorder.heat if instrumented else None
        if harr is None:
            harr = headers_array(headers, self.classifier.schema)
        lows, highs = self.classifier.bounds_arrays()
        best = np.full(n, -1, dtype=np.int64)
        shadow = self.shadow
        rules = self.classifier.rules
        for gi, group in enumerate(self.groups):
            stats.probes += n
            span = (
                recorder.span(
                    "engine.group_probe", group=self._group_keys[gi],
                    batch=n, backend=group.backend,
                )
                if instrumented
                else None
            )
            if span is not None:
                span.__enter__()
            cand = group.probe_batch(headers, harr)
            has = np.nonzero(cand >= 0)[0]
            candidates = fp_failures = verified_hits = 0
            if has.size:
                candidates = int(has.size)
                stats.candidates += candidates
                c = cand[has]
                h = harr[has]
                verified = ((lows[c] <= h) & (h <= highs[c])).all(axis=1)
                verified_hits = int(verified.sum())
                fp_failures = candidates - verified_hits
                stats.false_positives += fp_failures
                rows = has[verified]
                winners = c[verified]
                current = best[rows]
                better = (current < 0) | (winners < current)
                best[rows[better]] = winners[better]
            if span is not None:
                span.__exit__(None, None, None)
            if instrumented:
                recorder.incr("groups.probes", n)
                if candidates:
                    recorder.incr("groups.fp_checks", candidates)
                if fp_failures:
                    recorder.incr("groups.fp_failures", fp_failures)
                recorder.incr(f"lookup.backend.{group.backend}.probes", n)
                if candidates:
                    recorder.incr(
                        f"lookup.backend.{group.backend}.candidates",
                        candidates,
                    )
                events = group.drain_backend_events()
                if events:
                    for name, value in events.items():
                        recorder.incr(
                            f"lookup.backend.{group.backend}.{name}",
                            value,
                        )
                    probes = events.get("model_probes", 0)
                    if probes:
                        recorder.observe(
                            "lookup.learned.mispredict_rate",
                            events.get("mispredicts", 0) / probes,
                        )
                if heat is not None:
                    heat.record_group(
                        self._group_keys[gi],
                        probes=n,
                        candidates=candidates,
                        fp_failures=fp_failures,
                        hits=verified_hits,
                    )
            if shadow:
                # Rare path (fresh dynamic inserts riding as extra checks):
                # only headers whose candidate hosts shadows take the loop.
                for j in has:
                    extras = shadow.get(int(cand[j]))
                    if not extras:
                        continue
                    header = headers[j]
                    for extra in extras:
                        stats.shadow_checks += 1
                        if rules[extra].matches(header) and (
                            best[j] < 0 or extra < best[j]
                        ):
                            best[j] = extra
        return best

    def match(self, header: Sequence[int]) -> MatchResult:
        """Standalone semantics: group rules else the catch-all.  Only
        semantically complete when the engine holds *all* body rules (a
        fully order-independent classifier)."""
        index = self.lookup(header)
        if index is None:
            index = len(self.classifier.rules) - 1
        return MatchResult(index, self.classifier.rules[index])
